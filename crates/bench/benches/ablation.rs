//! Criterion bench comparing the design choices the `ablation` binary sweeps:
//! oracle vs. NEWSCAST peer sampling, and the effect of the `cr` random samples,
//! measured as wall-clock time to perfect convergence at a fixed network size.

use bss_core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bss_util::config::{BootstrapParams, NewscastParams};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_sampler_choice(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_sampler");
    group.sample_size(10);
    for (name, sampler) in [
        ("oracle", SamplerChoice::Oracle),
        (
            "newscast",
            SamplerChoice::Newscast(NewscastParams::paper_default()),
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new("sampler", name),
            &sampler,
            |bencher, &sampler| {
                bencher.iter(|| {
                    let config = ExperimentConfig::builder()
                        .network_size(512)
                        .seed(5)
                        .sampler(sampler)
                        .max_cycles(100)
                        .build()
                        .expect("valid configuration");
                    let outcome = Experiment::new(config).run();
                    black_box(outcome.convergence_cycle())
                });
            },
        );
    }
    group.finish();
}

fn bench_random_samples(criterion: &mut Criterion) {
    let mut group = criterion.benchmark_group("ablation_random_samples");
    group.sample_size(10);
    for cr in [0usize, 30] {
        group.bench_with_input(BenchmarkId::new("cr", cr), &cr, |bencher, &cr| {
            bencher.iter(|| {
                let config = ExperimentConfig::builder()
                    .network_size(512)
                    .seed(5)
                    .params(BootstrapParams {
                        random_samples: cr,
                        ..BootstrapParams::paper_default()
                    })
                    .max_cycles(200)
                    .build()
                    .expect("valid configuration");
                let outcome = Experiment::new(config).run();
                black_box(outcome.convergence_cycle())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampler_choice, bench_random_samples);
criterion_main!(benches);
