//! Criterion micro-benchmarks for the protocol's hot components: leaf-set updates,
//! prefix-table updates, the convergence oracle and the NEWSCAST exchange round.

use bss_core::convergence::ConvergenceOracle;
use bss_core::leafset::LeafSet;
use bss_core::prefix_table::PrefixTable;
use bss_sampling::newscast::NewscastProtocol;
use bss_sampling::sampler::PeerSampler;
use bss_sim::engine::cycle::CycleEngine;
use bss_sim::network::Network;
use bss_util::config::{BootstrapParams, NewscastParams};
use bss_util::descriptor::Descriptor;
use bss_util::geometry::TableGeometry;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_leafset_update(criterion: &mut Criterion) {
    let mut rng = SimRng::seed_from(1);
    let own = NodeId::new(rng.next_u64());
    let incoming: Vec<Descriptor<u32>> = (0..60u32)
        .map(|address| Descriptor::new(NodeId::new(rng.next_u64()), address, 0))
        .collect();
    criterion.bench_function("leafset_update_60_candidates", |bencher| {
        bencher.iter(|| {
            let mut leaf_set = LeafSet::new(own, 20);
            leaf_set.update(black_box(incoming.iter().copied()));
            black_box(leaf_set.len())
        });
    });
}

fn bench_prefix_table_update(criterion: &mut Criterion) {
    let mut rng = SimRng::seed_from(2);
    let own = NodeId::new(rng.next_u64());
    let geometry = TableGeometry::paper_default();
    let incoming: Vec<Descriptor<u32>> = (0..200u32)
        .map(|address| Descriptor::new(NodeId::new(rng.next_u64()), address, 0))
        .collect();
    criterion.bench_function("prefix_table_update_200_candidates", |bencher| {
        bencher.iter(|| {
            let mut table = PrefixTable::new(own, geometry);
            black_box(table.update(black_box(incoming.iter().copied())))
        });
    });
}

fn bench_convergence_oracle(criterion: &mut Criterion) {
    let mut rng = SimRng::seed_from(3);
    let params = BootstrapParams::paper_default();
    let ids: Vec<NodeId> = rng
        .distinct_u64(1 << 12)
        .into_iter()
        .map(NodeId::new)
        .collect();
    let oracle = ConvergenceOracle::new(ids.clone(), &params);
    criterion.bench_function("oracle_fillable_entries_4096_nodes", |bencher| {
        let mut cursor = 0usize;
        bencher.iter(|| {
            cursor = (cursor + 1) % ids.len();
            black_box(oracle.fillable_prefix_entries(ids[cursor]))
        });
    });
}

fn bench_newscast_cycle(criterion: &mut Criterion) {
    criterion.bench_function("newscast_cycle_1024_nodes", |bencher| {
        let mut rng = SimRng::seed_from(4);
        let network = Network::with_random_ids(1024, &mut rng);
        let mut engine = CycleEngine::new(network, rng);
        let mut newscast = NewscastProtocol::new(NewscastParams::paper_default());
        newscast.init_all(engine.context_mut());
        bencher.iter(|| {
            engine.run(&mut newscast, 1);
            black_box(newscast.exchanges())
        });
    });
}

criterion_group!(
    benches,
    bench_leafset_update,
    bench_prefix_table_update,
    bench_convergence_oracle,
    bench_newscast_cycle
);
criterion_main!(benches);
