//! Criterion bench for the message-cost claim of §4/§5: `CREATEMESSAGE` is cheap
//! and its output is bounded by `c` ring entries plus at most a prefix table's
//! worth of prefix-useful entries.

use bss_core::leafset::LeafSet;
use bss_core::message::create_message;
use bss_core::prefix_table::PrefixTable;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Descriptor;
use bss_util::geometry::TableGeometry;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

type State = (
    Descriptor<u32>,
    LeafSet<u32>,
    PrefixTable<u32>,
    Vec<Descriptor<u32>>,
);

fn populated_state(rng: &mut SimRng, params: &BootstrapParams) -> State {
    let own = Descriptor::new(NodeId::new(rng.next_u64()), 0u32, 0);
    let mut leaf_set = LeafSet::new(own.id(), params.leaf_set_size);
    let geometry = TableGeometry::new(params.bits_per_digit, params.entries_per_slot).unwrap();
    let mut table = PrefixTable::new(own.id(), geometry);
    let peers: Vec<Descriptor<u32>> = (1..=2000u32)
        .map(|address| Descriptor::new(NodeId::new(rng.next_u64()), address, 0))
        .collect();
    leaf_set.update(peers.iter().copied());
    table.update(peers.iter().copied());
    let samples: Vec<Descriptor<u32>> = peers[..params.random_samples].to_vec();
    (own, leaf_set, table, samples)
}

fn bench_create_message(criterion: &mut Criterion) {
    let params = BootstrapParams::paper_default();
    let mut rng = SimRng::seed_from(3);
    let (own, leaf_set, table, samples) = populated_state(&mut rng, &params);
    let peer = NodeId::new(rng.next_u64());

    let mut group = criterion.benchmark_group("createmessage_cost");
    group.bench_function("create_message_paper_params", |bencher| {
        bencher.iter(|| {
            black_box(create_message(
                own,
                &leaf_set,
                &table,
                &samples,
                black_box(peer),
                params.leaf_set_size,
            ))
        });
    });

    // Message size accounting (printed once per bench run): the paper's bound is
    // c + full-table capacity; in practice the prefix part is much smaller.
    let message = create_message(own, &leaf_set, &table, &samples, peer, params.leaf_set_size);
    println!(
        "create_message produced {} descriptors (bound {})",
        message.len(),
        params.leaf_set_size + table.geometry().capacity()
    );

    for cr in [0usize, 30, 120] {
        group.bench_with_input(
            BenchmarkId::new("by_random_samples", cr),
            &cr,
            |bencher, &cr| {
                let mut sample_rng = SimRng::seed_from(cr as u64 + 10);
                let samples: Vec<Descriptor<u32>> = (0..cr)
                    .map(|address| {
                        Descriptor::new(NodeId::new(sample_rng.next_u64()), address as u32, 0)
                    })
                    .collect();
                bencher.iter(|| {
                    black_box(create_message(
                        own,
                        &leaf_set,
                        &table,
                        &samples,
                        black_box(peer),
                        params.leaf_set_size,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_create_message);
criterion_main!(benches);
