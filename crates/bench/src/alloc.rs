//! A counting global allocator for honest per-run memory measurement.
//!
//! The scaling benchmark used to report `VmHWM` from `/proc/self/status` per
//! sweep cell — but `VmHWM` is *monotone over the process lifetime*, so every
//! cell after the largest run inherited the largest run's high-water mark and
//! the per-entry numbers were meaningless. This allocator counts live heap
//! bytes directly: [`reset_peak`] rearms the high-water mark at the current
//! footprint before a run, and [`peak_kib`] reads the honest per-run peak
//! afterwards, independent of what ran earlier in the sweep.
//!
//! Install it from a binary with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: bss_bench::alloc::CountingAllocator = bss_bench::alloc::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Live heap bytes right now.
static CURRENT: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of `CURRENT` since the last [`reset_peak`].
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live bytes and their peak.
///
/// Counter updates use relaxed atomics: the counters never synchronise other
/// memory, and the benchmark reads them between runs, when no allocation is
/// in flight. The accounting cost is two atomic ops per (de)allocation —
/// invisible next to the allocation itself.
pub struct CountingAllocator;

impl CountingAllocator {
    fn record_alloc(size: usize) {
        let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
        PEAK.fetch_max(now, Ordering::Relaxed);
    }

    fn record_dealloc(size: usize) {
        CURRENT.fetch_sub(size, Ordering::Relaxed);
    }
}

/// The allocator's raw pass-through to [`System`] plus counter bookkeeping —
/// the one `unsafe impl` in the crate, quarantined here. Safety: every method
/// forwards verbatim to [`System`], which upholds the `GlobalAlloc` contract;
/// the added code only touches two atomics.
#[allow(unsafe_code)]
mod implementation {
    use super::*;

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let pointer = System.alloc(layout);
            if !pointer.is_null() {
                CountingAllocator::record_alloc(layout.size());
            }
            pointer
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let pointer = System.alloc_zeroed(layout);
            if !pointer.is_null() {
                CountingAllocator::record_alloc(layout.size());
            }
            pointer
        }

        unsafe fn dealloc(&self, pointer: *mut u8, layout: Layout) {
            System.dealloc(pointer, layout);
            CountingAllocator::record_dealloc(layout.size());
        }

        unsafe fn realloc(&self, pointer: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let new_pointer = System.realloc(pointer, layout, new_size);
            if !new_pointer.is_null() {
                CountingAllocator::record_dealloc(layout.size());
                CountingAllocator::record_alloc(new_size);
            }
            new_pointer
        }
    }
}

/// Live heap bytes at this instant.
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Rearms the high-water mark at the current footprint. Call immediately
/// before the region to measure.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Peak live heap bytes since the last [`reset_peak`], in KiB (rounded up).
/// Reads zero when the binary did not install [`CountingAllocator`].
pub fn peak_kib() -> u64 {
    (PEAK.load(Ordering::Relaxed) as u64).div_ceil(1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test harness may not have the allocator installed (counters stay
    // zero), so only the installed case exercises real numbers; both cases
    // must at least hold the reset invariant.
    #[test]
    fn reset_rearms_peak_at_current() {
        reset_peak();
        let baseline = peak_kib();
        let ballast: Vec<u8> = vec![7; 4 * 1024 * 1024];
        std::hint::black_box(&ballast);
        drop(ballast);
        reset_peak();
        let after = peak_kib();
        // After a reset the peak restarts from the live footprint: the
        // 4 MiB ballast allocated and freed above must not linger in it.
        assert!(after <= baseline.max(current_bytes() as u64 / 1024 + 1));
    }
}
