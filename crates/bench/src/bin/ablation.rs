//! Ablations of the design choices called out in §4 of the paper and in DESIGN.md:
//!
//! * `cr` — the number of random samples mixed into every message ("these samples
//!   are free ... since the generic peer sampling layer is assumed to function
//!   independently").
//! * `c` — the leaf-set size, which is also the ring-targeted message budget.
//! * sampler quality — idealised oracle sampling vs. a real NEWSCAST instance.
//! * message loss — how convergence time scales with the drop probability
//!   (generalising Figure 4 beyond 20 %).
//!
//! Each sweep reports the mean convergence cycle (over a few seeds) for each
//! parameter value, at a fixed network size.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bss_util::config::{BootstrapParams, NewscastParams};

const HELP: &str = "\
ablation — design-choice sweeps (cr, c, sampler, loss)

USAGE:
    cargo run --release -p bss-bench --bin ablation [-- OPTIONS]

OPTIONS:
    --size <exp>     network size exponent (N = 2^exp)  [default: 11]
    --runs <n>       seeds per configuration            [default: 3]
    --cycles <n>     cycle budget per run               [default: 150]
";

fn mean_convergence(config: &ExperimentConfig, runs: usize, base_seed: u64) -> (f64, f64, usize) {
    let mut cycles = Vec::new();
    let mut message_size = 0.0;
    for run in 0..runs {
        let mut run_config = config.clone();
        run_config.seed = base_seed + run as u64;
        run_config.stop_when_perfect = true;
        run_config.validate().expect("valid ablation configuration");
        let outcome = Experiment::new(run_config).run();
        message_size += outcome.traffic().mean_message_size();
        if let Some(cycle) = outcome.convergence_cycle() {
            cycles.push(cycle);
        }
    }
    let converged = cycles.len();
    let mean = if cycles.is_empty() {
        f64::NAN
    } else {
        cycles.iter().sum::<u64>() as f64 / cycles.len() as f64
    };
    (mean, message_size / runs as f64, converged)
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[11],
        runs: 3,
        cycles: 150,
        seed: 1,
    });
    let exponent = common.size();
    let runs = common.runs;
    let seed = common.seed;
    let base = ExperimentConfig::builder()
        .network_size(1usize << exponent)
        .max_cycles(common.cycles)
        .engine(common.engine)
        .build()
        .expect("valid configuration");

    eprintln!("# Ablations at N=2^{exponent}, {runs} runs per configuration");

    println!("## Ablation A: random samples per message (cr)");
    println!("cr\tmean_convergence_cycle\tmean_message_size\tconverged_runs");
    for cr in [0usize, 5, 15, 30, 60] {
        let mut config = base.clone();
        config.params = BootstrapParams {
            random_samples: cr,
            ..BootstrapParams::paper_default()
        };
        let (mean, message, converged) = mean_convergence(&config, runs, seed);
        println!("{cr}\t{mean:.1}\t{message:.1}\t{converged}/{runs}");
    }
    println!();

    println!("## Ablation B: leaf set size (c)");
    println!("c\tmean_convergence_cycle\tmean_message_size\tconverged_runs");
    for c in [8usize, 16, 20, 32] {
        let mut config = base.clone();
        config.params = BootstrapParams {
            leaf_set_size: c,
            ..BootstrapParams::paper_default()
        };
        let (mean, message, converged) = mean_convergence(&config, runs, seed + 100);
        println!("{c}\t{mean:.1}\t{message:.1}\t{converged}/{runs}");
    }
    println!();

    println!("## Ablation C: peer sampling implementation");
    println!("sampler\tmean_convergence_cycle\tmean_message_size\tconverged_runs");
    for (name, sampler) in [
        ("oracle", SamplerChoice::Oracle),
        (
            "newscast",
            SamplerChoice::Newscast(NewscastParams::paper_default()),
        ),
    ] {
        let mut config = base.clone();
        config.sampler = sampler;
        let (mean, message, converged) = mean_convergence(&config, runs, seed + 200);
        println!("{name}\t{mean:.1}\t{message:.1}\t{converged}/{runs}");
    }
    println!();

    println!("## Ablation D: message drop probability");
    println!("drop\tmean_convergence_cycle\tmean_message_size\tconverged_runs");
    for drop in [0.0f64, 0.1, 0.2, 0.4] {
        let mut config = base.clone();
        config.scenario.set_whole_run_loss(drop);
        let (mean, message, converged) = mean_convergence(&config, runs, seed + 300);
        println!("{drop}\t{mean:.1}\t{message:.1}\t{converged}/{runs}");
    }
}
