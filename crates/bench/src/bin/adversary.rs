//! The adversary sweep: attacker fraction × behaviour × countermeasure matrix,
//! run on both engines over a real NEWSCAST sampler.
//!
//! For every cell the binary writes the full serializable `RunReport` as JSON
//! (`<out-dir>/<behavior>_f<pct>_<defense>_<engine>.json`), prints a one-line
//! summary per run, and appends every measured cycle of the attack metrics to
//! a long-format timeline TSV
//! (`<out-dir>/adversary_timeline.tsv`: behaviour, fraction, defense, engine,
//! cycle, eclipse fraction, poisoned fraction, in-degree Gini/max) — the data
//! behind the time-to-eclipse numbers in the roadmap.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig, RunReport, SamplerChoice};
use bss_core::scenario::{AdversaryBehavior, Engine, Phase, ScenarioEvent};
use bss_util::config::{BootstrapParams, NewscastParams};
use std::fmt::Write as _;

const HELP: &str = "\
adversary — Byzantine sweep: fraction x behaviour x countermeasures x engines

USAGE:
    cargo run --release -p bss-bench --bin adversary [-- OPTIONS]

OPTIONS:
    --size <exp>       network size exponent (N = 2^exp)       [default: 8]
    --cycles <n>       cycle budget per run                    [default: 60]
    --fractions <list> attacker fractions in percent           [default: 10,20]
    --out-dir <dir>    directory for JSONs and the timeline    [default: adversary-reports]
";

/// The attack window every sweep cell uses: the overlay converges first, then
/// the conversion fires and stays active for 25 cycles.
const ATTACK: Phase = Phase { start: 5, end: 30 };

const VERIFIER_KEY: u64 = 0xad5e_ca7e;
const QUOTA: usize = 2;

/// One countermeasure configuration of the sweep.
#[derive(Clone, Copy)]
struct Defense {
    name: &'static str,
    verifier: Option<u64>,
    quota: Option<usize>,
}

const DEFENSES: [Defense; 4] = [
    Defense {
        name: "none",
        verifier: None,
        quota: None,
    },
    Defense {
        name: "verifier",
        verifier: Some(VERIFIER_KEY),
        quota: None,
    },
    Defense {
        name: "quota",
        verifier: None,
        quota: Some(QUOTA),
    },
    Defense {
        name: "both",
        verifier: Some(VERIFIER_KEY),
        quota: Some(QUOTA),
    },
];

fn behaviors() -> [AdversaryBehavior; 3] {
    [
        AdversaryBehavior::ForgeDescriptors,
        AdversaryBehavior::IdSpray { target: 0 },
        AdversaryBehavior::HubAttack,
    ]
}

fn config(
    network_size: usize,
    seed: u64,
    cycles: u64,
    engine: Engine,
    fraction: f64,
    behavior: AdversaryBehavior,
    defense: Defense,
) -> ExperimentConfig {
    ExperimentConfig::builder()
        .network_size(network_size)
        .seed(seed)
        .max_cycles(cycles)
        .stop_when_perfect(false)
        .engine(engine)
        .params(BootstrapParams {
            descriptor_verifier: defense.verifier,
            ..BootstrapParams::paper_default()
        })
        .sampler(SamplerChoice::Newscast(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            view_diversity_quota: defense.quota,
            ..NewscastParams::paper_default()
        }))
        .event(ScenarioEvent::ByzantineConvert {
            phase: ATTACK,
            fraction,
            behavior,
        })
        .build()
        .expect("valid adversary sweep configuration")
}

/// Appends this run's measured cycles to the long-format timeline.
fn append_timeline(
    timeline: &mut String,
    behavior: &str,
    percent: u32,
    defense: &str,
    engine: &str,
    report: &RunReport,
) {
    for (position, &(cycle, eclipse)) in report.eclipse_series().points().iter().enumerate() {
        let poisoned = report.poisoned_series().points()[position].1;
        let gini = report
            .in_degree_gini_series()
            .points()
            .get(position)
            .map_or(0.0, |&(_, v)| v);
        let max = report
            .in_degree_max_series()
            .points()
            .get(position)
            .map_or(0.0, |&(_, v)| v);
        let _ = writeln!(
            timeline,
            "{behavior}\t{percent}\t{defense}\t{engine}\t{cycle}\t{eclipse:.6}\t{poisoned:.6}\
             \t{gini:.6}\t{max:.1}"
        );
    }
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[8],
        runs: 1,
        cycles: 60,
        seed: 1,
    });
    let exponent = common.size();
    let network_size = 1usize << exponent;
    let fractions = args.u32_list_or("fractions", &[10, 20]);
    let out_dir = args
        .get("out-dir")
        .unwrap_or("adversary-reports")
        .to_owned();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let engines: [(&'static str, Engine); 2] = [
        ("cycle", Engine::with_threads(common.threads)),
        (
            "event",
            Engine::Event {
                latency: args.latency_model(),
            },
        ),
    ];

    eprintln!(
        "# Adversary sweep: N=2^{exponent}, {} cycles budget, attack {ATTACK}",
        common.cycles
    );
    println!(
        "behavior\tfraction_pct\tdefense\tengine\teclipsed\ttime_to_eclipse\tpeak_eclipse\
         \tpeak_poisoned\tconvergence_cycle"
    );
    let mut timeline = String::from(
        "behavior\tfraction_pct\tdefense\tengine\tcycle\teclipse_fraction\tpoisoned_fraction\
         \tin_degree_gini\tin_degree_max\n",
    );
    for behavior in behaviors() {
        for &percent in &fractions {
            for defense in DEFENSES {
                for (engine_name, engine) in engines {
                    let report = Experiment::new(config(
                        network_size,
                        common.seed,
                        common.cycles,
                        engine,
                        f64::from(percent) / 100.0,
                        behavior,
                        defense,
                    ))
                    .run();
                    let peak = |series: &bss_util::stats::Series| {
                        series
                            .points()
                            .iter()
                            .map(|&(_, v)| v)
                            .fold(0.0f64, f64::max)
                    };
                    println!(
                        "{}\t{percent}\t{}\t{engine_name}\t{}\t{}\t{:.3}\t{:.3}\t{}",
                        behavior.label(),
                        defense.name,
                        report.eclipsed(),
                        report
                            .time_to_eclipse()
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "-".to_owned()),
                        peak(report.eclipse_series()),
                        peak(report.poisoned_series()),
                        report
                            .convergence_cycle()
                            .map(|c| c.to_string())
                            .unwrap_or_else(|| "-".to_owned()),
                    );
                    append_timeline(
                        &mut timeline,
                        behavior.label(),
                        percent,
                        defense.name,
                        engine_name,
                        &report,
                    );
                    let path = format!(
                        "{out_dir}/{}_f{percent}_{}_{engine_name}.json",
                        behavior.label(),
                        defense.name
                    );
                    std::fs::write(&path, report.to_json()).expect("write RunReport JSON");
                    if !common.quiet {
                        eprintln!("#   wrote {path}");
                    }
                }
            }
        }
    }
    let timeline_path = format!("{out_dir}/adversary_timeline.tsv");
    std::fs::write(&timeline_path, timeline).expect("write timeline TSV");
    eprintln!("# wrote {timeline_path}");
}
