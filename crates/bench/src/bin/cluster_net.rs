//! Wire-scale bench: loopback UDP clusters across sizes and cluster modes.
//!
//! This is the net-side twin of the `scaling` bench. For every cell of
//! sizes x {thread, driver} it spawns a real loopback cluster, monitors it to
//! convergence, and writes the full [`NetReport`] as JSON
//! (`<out-dir>/cluster_<mode>_<N>.json`) plus one shared TSV timeline
//! (`<out-dir>/timeline.tsv`) with every convergence sample of every run —
//! the same artifact shapes CI uploads for the simulator benches.
//!
//! The headline cell is the single-loop driver at 512 nodes: one thread, one
//! socket poll loop, hundreds of protocol instances — the report records node
//! count, wall-clock to convergence, and datagrams/s so regressions in the
//! driver show up as numbers, not vibes.
//!
//! Environments without loopback UDP (heavily sandboxed CI) are detected at
//! the first failed bind and the whole bench skips with exit code 0, like the
//! socket tests. A cluster that fails to converge exits non-zero.

use bss_bench::cli::Args;
use bss_net::cluster::{Cluster, ClusterConfig, ClusterMode};
use bss_net::report::NetReport;
use bss_util::config::BootstrapParams;
use std::fmt::Write as _;
use std::time::Duration;

const HELP: &str = "\
cluster_net — loopback UDP clusters across sizes and cluster modes

USAGE:
    cargo run --release -p bss-bench --bin cluster_net [-- OPTIONS]

OPTIONS:
    --driver-sizes <list>  driver-mode size exponents (N = 2^exp) [default: 6,8,9]
    --thread-sizes <list>  thread-mode size exponents             [default: 6,7]
    --seed <n>             cluster seed                           [default: 7]
    --timeout-secs <n>     per-run convergence deadline           [default: 120]
    --out-dir <dir>        directory for NetReport JSONs + TSV    [default: net-reports]
    --smoke                fast CI variant (driver 2^6, thread 2^5)
";

/// The tables every cell runs with: the paper's small-network parameters plus
/// a wire cycle short enough to converge in seconds on loopback.
fn bench_params() -> BootstrapParams {
    BootstrapParams {
        leaf_set_size: 6,
        random_samples: 8,
        cycle_millis: 40,
        ..BootstrapParams::paper_default()
    }
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }

    let smoke = args.get("smoke").is_some();
    let (driver_default, thread_default): (&[u32], &[u32]) = if smoke {
        (&[6], &[5])
    } else {
        (&[6, 8, 9], &[6, 7])
    };
    let driver_sizes = args.u32_list_or("driver-sizes", driver_default);
    let thread_sizes = args.u32_list_or("thread-sizes", thread_default);
    let seed: u64 = args.parsed_or("seed", 7);
    let timeout = Duration::from_secs(args.parsed_or("timeout-secs", 120));
    let out_dir = args.get("out-dir").unwrap_or("net-reports").to_owned();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let cells = thread_sizes
        .iter()
        .map(|&exp| (ClusterMode::ThreadPerPeer, 1usize << exp))
        .chain(
            driver_sizes
                .iter()
                .map(|&exp| (ClusterMode::Driver, 1usize << exp)),
        )
        .collect::<Vec<_>>();

    let mut timeline = String::from("mode\tnodes\tmillis\tmissing_leaf\tmissing_prefix\tdead\n");
    let mut all_converged = true;

    for (mode, size) in cells {
        let cluster = match Cluster::spawn(ClusterConfig {
            size,
            params: bench_params(),
            contacts_per_peer: 4,
            seed,
            mode,
        }) {
            Ok(cluster) => cluster,
            Err(error) => {
                // No loopback UDP here (sandboxed CI): skip the whole bench,
                // successfully, like the socket tests do.
                eprintln!("skipping cluster_net: cannot bind loopback sockets: {error}");
                return;
            }
        };
        let report = cluster.monitor(Duration::from_millis(50), timeout);
        cluster.shutdown();

        let path = format!("{out_dir}/cluster_{}_{}.json", report.mode, report.nodes);
        std::fs::write(&path, report.to_json()).expect("write NetReport JSON");
        append_timeline(&mut timeline, &report);
        all_converged &= report.converged;

        println!(
            "mode {:>6}  N {:>4}  converged {:>5}  wall {:>6} ms  {:>9.1} datagrams/s  -> {path}",
            report.mode,
            report.nodes,
            report.converged,
            report.convergence_millis.unwrap_or(report.elapsed_millis),
            report.datagrams_per_second(),
        );
    }

    let tsv_path = format!("{out_dir}/timeline.tsv");
    std::fs::write(&tsv_path, timeline).expect("write timeline TSV");
    println!("timeline -> {tsv_path}");

    if !all_converged {
        eprintln!("cluster_net: at least one cluster failed to converge before the deadline");
        std::process::exit(1);
    }
}

/// Appends one TSV row per convergence sample; the three series are sampled at
/// the same instants, so they zip into aligned rows.
fn append_timeline(timeline: &mut String, report: &NetReport) {
    for (index, &(millis, leaf)) in report.leaf_series.iter().enumerate() {
        let prefix = report.prefix_series.get(index).map_or(f64::NAN, |p| p.1);
        let dead = report.dead_series.get(index).map_or(f64::NAN, |p| p.1);
        let _ = writeln!(
            timeline,
            "{}\t{}\t{}\t{:.6e}\t{:.6e}\t{:.6e}",
            report.mode, report.nodes, millis, leaf, prefix, dead
        );
    }
}
