//! Reproduces Figure 3 of the paper: convergence of the bootstrapping service in
//! the absence of failures.
//!
//! Top panel: proportion of missing leaf-set entries vs. cycles.
//! Bottom panel: proportion of missing prefix-table entries vs. cycles.
//! One curve per network size, several independent runs per size.
//!
//! The paper uses N ∈ {2^14, 2^16, 2^18} with 50/10/4 runs; the default here is a
//! laptop-sized subset (2^10..2^14). Pass `--sizes 14,16,18 --runs 4` for the full
//! setting (2^18 needs several gigabytes of memory and tens of minutes). Like
//! every experiment binary, `--engine event` runs the same figure on the
//! discrete-event engine instead of the cycle engine.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_bench::figures::{run_figure, FigureConfig};
use bss_bench::report::{panel_table, summary_table};
use bss_core::experiment::ExperimentConfig;

const HELP: &str = "\
fig3 — Figure 3: bootstrap convergence without failures

USAGE:
    cargo run --release -p bss-bench --bin fig3 [-- OPTIONS]

OPTIONS:
    --sizes <list>   comma-separated size exponents     [default: 10,12,14]
    --runs <n>       independent runs per size          [default: 3]
    --cycles <n>     cycle budget per run               [default: 60]
";

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[10, 12, 14],
        runs: 3,
        cycles: 60,
        seed: 1,
    });

    let config = FigureConfig {
        size_exponents: common.sizes.clone(),
        runs_per_size: common.runs,
        base: ExperimentConfig::builder()
            .max_cycles(common.cycles)
            .engine(common.engine)
            .build()
            .expect("valid configuration"),
        base_seed: common.seed,
    };
    eprintln!("# Figure 3 reproduction: no failures, paper parameters (b=4 k=3 c=20 cr=30)");
    let result = run_figure(&config, |exponent, run| {
        if !common.quiet {
            eprintln!("#   finished N=2^{exponent} run {run}");
        }
    });

    println!("## Figure 3 (top): proportion of missing leaf set entries");
    print!("{}", panel_table(&result, false));
    println!();
    println!("## Figure 3 (bottom): proportion of missing prefix table entries");
    print!("{}", panel_table(&result, true));
    println!();
    println!("## Summary");
    print!("{}", summary_table(&result));
}
