//! Reproduces Figure 3 of the paper: convergence of the bootstrapping service in
//! the absence of failures.
//!
//! Top panel: proportion of missing leaf-set entries vs. cycles.
//! Bottom panel: proportion of missing prefix-table entries vs. cycles.
//! One curve per network size, several independent runs per size.
//!
//! The paper uses N ∈ {2^14, 2^16, 2^18} with 50/10/4 runs; the default here is a
//! laptop-sized subset (2^10..2^14). Pass `--sizes 14,16,18 --runs 4` for the full
//! setting (2^18 needs several gigabytes of memory and tens of minutes).

use bss_bench::cli::Args;
use bss_bench::figures::{run_figure, FigureConfig};
use bss_bench::report::{panel_table, summary_table};
use bss_core::experiment::ExperimentConfig;

const HELP: &str = "\
fig3 — Figure 3: bootstrap convergence without failures

USAGE:
    cargo run --release -p bss-bench --bin fig3 [-- OPTIONS]

OPTIONS:
    --sizes <list>   comma-separated size exponents     [default: 10,12,14]
    --runs <n>       independent runs per size          [default: 3]
    --cycles <n>     cycle budget per run               [default: 60]
    --seed <n>       base random seed                   [default: 1]
    --quiet          suppress progress output
";

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let sizes = args.u32_list_or("sizes", &[10, 12, 14]);
    let runs = args.parsed_or("runs", 3usize);
    let cycles = args.parsed_or("cycles", 60u64);
    let seed = args.parsed_or("seed", 1u64);
    let quiet = args.get("quiet").is_some();

    let config = FigureConfig {
        size_exponents: sizes,
        runs_per_size: runs,
        base: ExperimentConfig::builder()
            .max_cycles(cycles)
            .build()
            .expect("valid configuration"),
        base_seed: seed,
    };
    eprintln!("# Figure 3 reproduction: no failures, paper parameters (b=4 k=3 c=20 cr=30)");
    let result = run_figure(&config, |exponent, run| {
        if !quiet {
            eprintln!("#   finished N=2^{exponent} run {run}");
        }
    });

    println!("## Figure 3 (top): proportion of missing leaf set entries");
    print!("{}", panel_table(&result, false));
    println!();
    println!("## Figure 3 (bottom): proportion of missing prefix table entries");
    print!("{}", panel_table(&result, true));
    println!();
    println!("## Summary");
    print!("{}", summary_table(&result));
}
