//! Reproduces Figure 4 of the paper: convergence of the bootstrapping service with
//! 20 % of all messages dropped uniformly at random.
//!
//! Because the protocol works in request/answer pairs, a dropped request also
//! suppresses the answer; the paper computes the resulting effective message loss
//! as 28 %. The expected result is the same convergence shape as Figure 3, only
//! proportionally slower. The `--drop` knob desugars into a whole-run loss window
//! on the scenario timeline; `--engine event` runs the same figure event-driven.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_bench::figures::{run_figure, FigureConfig};
use bss_bench::report::{panel_table, summary_table};
use bss_core::experiment::ExperimentConfig;

const HELP: &str = "\
fig4 — Figure 4: bootstrap convergence with 20% message loss

USAGE:
    cargo run --release -p bss-bench --bin fig4 [-- OPTIONS]

OPTIONS:
    --sizes <list>   comma-separated size exponents     [default: 10,12,14]
    --runs <n>       independent runs per size          [default: 3]
    --cycles <n>     cycle budget per run               [default: 100]
    --drop <p>       per-message drop probability       [default: 0.2]
";

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[10, 12, 14],
        runs: 3,
        cycles: 100,
        seed: 1,
    });
    let drop = args.parsed_or("drop", 0.2f64);

    let config = FigureConfig {
        size_exponents: common.sizes.clone(),
        runs_per_size: common.runs,
        base: ExperimentConfig::builder()
            .max_cycles(common.cycles)
            .drop_probability(drop)
            .engine(common.engine)
            .build()
            .expect("valid configuration"),
        base_seed: common.seed,
    };
    eprintln!(
        "# Figure 4 reproduction: {:.0}% uniform message drop",
        drop * 100.0
    );
    let result = run_figure(&config, |exponent, run| {
        if !common.quiet {
            eprintln!("#   finished N=2^{exponent} run {run}");
        }
    });

    println!(
        "## Figure 4 (top): proportion of missing leaf set entries ({:.0}% drop)",
        drop * 100.0
    );
    print!("{}", panel_table(&result, false));
    println!();
    println!(
        "## Figure 4 (bottom): proportion of missing prefix table entries ({:.0}% drop)",
        drop * 100.0
    );
    print!("{}", panel_table(&result, true));
    println!();
    println!("## Summary");
    print!("{}", summary_table(&result));
}
