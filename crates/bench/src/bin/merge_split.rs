//! Reproduces the architectural scenarios of §1–2: networks that split into
//! independent partitions and later merge back into one.
//!
//! Two halves of a network bootstrap while a partition blocks all traffic between
//! them (the "split" phase: each half converges to perfect tables *for its own
//! membership*). At a configurable cycle the partition heals (the "merge" phase)
//! and the run continues until the merged network's tables are perfect for the
//! full membership. The output reports the missing-entry proportions over time,
//! measured against the full-membership oracle, so the split phase plateaus at the
//! fraction of entries that live on the other side, and the merge phase shows the
//! rapid re-convergence the architecture promises.

use bss_bench::cli::Args;
use bss_bench::report::series_table;
use bss_core::protocol::BootstrapProtocol;
use bss_sampling::sampler::OracleSampler;
use bss_sim::engine::cycle::CycleEngine;
use bss_sim::network::Network;
use bss_sim::transport::PartitionTransport;
use bss_util::config::BootstrapParams;
use bss_util::rng::SimRng;
use bss_util::stats::Series;
use std::ops::ControlFlow;

const HELP: &str = "\
merge_split — bootstrap two partitions independently, then merge them

USAGE:
    cargo run --release -p bss-bench --bin merge_split [-- OPTIONS]

OPTIONS:
    --size <exp>     network size exponent (N = 2^exp)  [default: 12]
    --merge-at <n>   cycle at which the partition heals [default: 25]
    --cycles <n>     total cycle budget                 [default: 80]
    --seed <n>       random seed                        [default: 1]
";

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}");
        return;
    }
    let exponent = args.parsed_or("size", 12u32);
    let merge_at = args.parsed_or("merge-at", 25u64);
    let cycles = args.parsed_or("cycles", 80u64);
    let seed = args.parsed_or("seed", 1u64);
    let size = 1usize << exponent;
    assert!(
        merge_at < cycles,
        "--merge-at must be smaller than --cycles"
    );

    eprintln!("# Merge/split scenario: N=2^{exponent}, partition heals at cycle {merge_at}");

    // Even indices form partition 0, odd indices partition 1, so both halves span
    // the whole identifier space — the interesting case for merging prefix tables.
    let mut rng = SimRng::seed_from(seed);
    let network = Network::with_random_ids(size, &mut rng);
    let groups: Vec<u32> = (0..size as u32).map(|index| index % 2).collect();
    let mut engine = CycleEngine::new(network, rng)
        .with_transport(Box::new(PartitionTransport::new(groups.clone())));

    let params = BootstrapParams::paper_default();
    let mut protocol = BootstrapProtocol::new(params, OracleSampler::new());
    protocol.init_all(engine.context_mut());
    let full_oracle = protocol.oracle_for(engine.context());

    let mut leaf = Series::new("missing_leafset");
    let mut prefix = Series::new("missing_prefix");

    // Phase 1: partitioned. Each half converges internally; against the
    // full-membership oracle roughly half of every node's neighbours stay missing.
    engine.run_with_observer(&mut protocol, merge_at, |protocol, ctx, cycle| {
        let measured = protocol.measure(&full_oracle, ctx);
        leaf.push(cycle, measured.leaf_proportion());
        prefix.push(cycle, measured.prefix_proportion());
        ControlFlow::Continue(())
    });
    eprintln!(
        "#   end of split phase: {:.3e} of full-membership leaf entries missing",
        leaf.final_value().unwrap_or(f64::NAN)
    );

    // Phase 2: the partition heals and the two halves merge.
    let mut healed = PartitionTransport::new(groups);
    healed.set_active(false);
    engine.context_mut().transport = Box::new(healed);
    let mut merge_convergence = None;
    engine.run_with_observer(&mut protocol, cycles - merge_at, |protocol, ctx, cycle| {
        let absolute = merge_at + cycle;
        let measured = protocol.measure(&full_oracle, ctx);
        leaf.push(absolute, measured.leaf_proportion());
        prefix.push(absolute, measured.prefix_proportion());
        if measured.is_perfect() {
            merge_convergence = Some(absolute);
            return ControlFlow::Break(());
        }
        ControlFlow::Continue(())
    });

    println!("## Missing entries vs cycles (partition heals at cycle {merge_at})");
    print!(
        "{}",
        series_table(&[("leaf_set".into(), leaf), ("prefix_table".into(), prefix)])
    );
    println!();
    match merge_convergence {
        Some(cycle) => println!(
            "## Merged network reached perfect tables at cycle {cycle} ({} cycles after the merge)",
            cycle - merge_at + 1
        ),
        None => println!("## Merged network did not reach perfect tables within the budget"),
    }
}
