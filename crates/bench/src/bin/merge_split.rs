//! Reproduces the architectural scenarios of §1–2: networks that split into
//! independent partitions and later merge back into one.
//!
//! Two halves of a network bootstrap while a partition blocks all traffic between
//! them (the "split" phase: each half converges internally). At a configurable
//! cycle the partition heals (the "merge" phase) and the run continues until the
//! merged network's tables are perfect for the full membership. The whole
//! experiment is one scenario timeline — a single `Partition` event whose window
//! end is the merge — driven through the same engine-agnostic entry point as
//! every other binary, so `--engine event` runs the same scenario event-driven.
//!
//! The output reports the missing-entry proportions over time, measured against
//! the full-membership oracle: the split phase plateaus at the fraction of
//! entries that live on the other side, and the merge phase shows the rapid
//! re-convergence the architecture promises.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_bench::report::series_table;
use bss_core::experiment::{Experiment, ExperimentConfig};
use bss_core::scenario::{PartitionSpec, Phase, ScenarioEvent};

const HELP: &str = "\
merge_split — bootstrap two partitions independently, then merge them

USAGE:
    cargo run --release -p bss-bench --bin merge_split [-- OPTIONS]

OPTIONS:
    --size <exp>     network size exponent (N = 2^exp)  [default: 12]
    --merge-at <n>   cycle at which the partition heals [default: 25]
    --cycles <n>     total cycle budget                 [default: 80]
";

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[12],
        runs: 1,
        cycles: 80,
        seed: 1,
    });
    let exponent = common.size();
    let merge_at = args.parsed_or("merge-at", 25u64);
    let cycles = common.cycles;
    assert!(
        merge_at < cycles,
        "--merge-at must be smaller than --cycles"
    );

    eprintln!("# Merge/split scenario: N=2^{exponent}, partition heals at cycle {merge_at}");

    // Even indices form partition 0, odd indices partition 1, so both halves span
    // the whole identifier space — the interesting case for merging prefix tables.
    // The perfection stop waits for the heal (a pending scenario transition), so
    // the run ends at the first full-membership perfection after the merge.
    let config = ExperimentConfig::builder()
        .network_size(1usize << exponent)
        .seed(common.seed)
        .max_cycles(cycles)
        .event(ScenarioEvent::Partition {
            phase: Phase::new(0, merge_at),
            groups: PartitionSpec::IndexParity,
        })
        .engine(common.engine)
        .build()
        .expect("valid configuration");
    let report = Experiment::new(config).run();

    eprintln!(
        "#   end of split phase: {:.3e} of full-membership leaf entries missing",
        report
            .leaf_series()
            .value_at(merge_at.saturating_sub(1))
            .unwrap_or(f64::NAN)
    );

    println!("## Missing entries vs cycles (partition heals at cycle {merge_at})");
    print!(
        "{}",
        series_table(&[
            ("leaf_set".into(), report.leaf_series().clone()),
            ("prefix_table".into(), report.prefix_series().clone()),
        ])
    );
    println!();
    match report.convergence_cycle() {
        Some(cycle) => println!(
            "## Merged network reached perfect tables at cycle {cycle} ({} cycles after the merge)",
            cycle.saturating_sub(merge_at) + 1
        ),
        None => println!("## Merged network did not reach perfect tables within the budget"),
    }
}
