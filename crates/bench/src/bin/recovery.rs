//! The catastrophe-then-recover experiment: demonstrates that descriptor
//! aging plus a `ReBootstrap` order turns a post-catastrophe overlay from
//! "gossips the dead forever" into "purges every stale descriptor and
//! re-converges" — the recovery claim the paper's architecture rests on
//! (§1–2: bootstrapping is what you re-run after a catastrophic failure).
//!
//! For each engine (cycle and event) the binary runs the same timeline twice —
//! detector-free and with aging + re-bootstrap — prints the per-cycle
//! dead-descriptor fraction side by side, and writes the full `RunReport`
//! JSONs (`<out-dir>/recovery_<mode>_<engine>.json`). With
//! `--require-recovery` it exits non-zero unless every aged run reached zero
//! dead descriptors and perfect tables again; CI runs it as a recovery gate.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_bench::report::series_table;
use bss_core::experiment::{Experiment, ExperimentConfig, RunReport};
use bss_core::scenario::{Engine, ScenarioEvent};

const HELP: &str = "\
recovery — catastrophe-then-recover timeline: aging + ReBootstrap vs detector-free

USAGE:
    cargo run --release -p bss-bench --bin recovery [-- OPTIONS]

OPTIONS:
    --size <exp>         network size exponent (N = 2^exp)     [default: 10]
    --cycles <n>         cycle budget per run                   [default: 60]
    --at <cycle>         catastrophe cycle                      [default: 15]
    --fraction <f>       fraction of nodes that dies            [default: 0.5]
    --max-age <n>        descriptor aging bound in cycles       [default: 10]
    --out-dir <dir>      directory for RunReport JSONs          [default: scenario-reports]
    --require-recovery   exit non-zero unless every aged run recovered
";

/// The shape of one catastrophe-then-recover timeline: when and how hard the
/// failure strikes, and (for the aged mode) the detector bound plus the
/// follow-up re-bootstrap order.
#[derive(Clone, Copy)]
struct Timeline {
    at_cycle: u64,
    fraction: f64,
    max_age: Option<u64>,
    rebootstrap: bool,
}

fn run_one(
    network_size: usize,
    seed: u64,
    cycles: u64,
    engine: Engine,
    timeline: Timeline,
) -> RunReport {
    let mut builder = ExperimentConfig::builder();
    builder
        .network_size(network_size)
        .seed(seed)
        .max_cycles(cycles)
        .stop_when_perfect(false)
        .engine(engine)
        .descriptor_max_age(timeline.max_age)
        .event(ScenarioEvent::CatastrophicFailure {
            at_cycle: timeline.at_cycle,
            fraction: timeline.fraction,
        });
    if timeline.rebootstrap {
        builder.event(ScenarioEvent::ReBootstrap {
            at_cycle: timeline.at_cycle + 2,
            fraction: 1.0,
        });
    }
    let config = builder.build().expect("valid recovery configuration");
    Experiment::new(config).run()
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[10],
        runs: 1,
        cycles: 60,
        seed: 7,
    });
    let exponent = common.size();
    let network_size = 1usize << exponent;
    let at_cycle: u64 = args.parsed_or("at", 15);
    let fraction: f64 = args.parsed_or("fraction", 0.5);
    let max_age: u64 = args.parsed_or("max-age", 10);
    let out_dir = args.get("out-dir").unwrap_or("scenario-reports").to_owned();
    let require_recovery = args.get("require-recovery").is_some();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let engines: [(&'static str, Engine); 2] = [
        ("cycle", Engine::with_threads(common.threads)),
        (
            "event",
            Engine::Event {
                latency: args.latency_model(),
            },
        ),
    ];

    eprintln!(
        "# Recovery experiment: N=2^{exponent}, {:.0}% catastrophe at cycle {at_cycle}, \
         max_age={max_age}, {} cycles budget",
        fraction * 100.0,
        common.cycles
    );
    let mut dead_columns = Vec::new();
    let mut summary = String::from(
        "mode\tengine\tdegraded_cycle\trecovered_cycle\tcycles_to_recover\t\
         final_dead_fraction\tfinal_leaf_missing\n",
    );
    let mut all_recovered = true;
    for (engine_name, engine) in engines {
        for (mode, aged) in [("detector_free", false), ("aging_rebootstrap", true)] {
            let report = run_one(
                network_size,
                common.seed,
                common.cycles,
                engine,
                Timeline {
                    at_cycle,
                    fraction,
                    max_age: aged.then_some(max_age),
                    rebootstrap: aged,
                },
            );
            let path = format!("{out_dir}/recovery_{mode}_{engine_name}.json");
            std::fs::write(&path, report.to_json()).expect("write RunReport JSON");
            if !common.quiet {
                eprintln!("#   {mode} on {engine_name}: {report} -> {path}");
            }
            let optional = |value: Option<u64>| {
                value.map_or_else(|| "-".to_owned(), |cycle| cycle.to_string())
            };
            summary.push_str(&format!(
                "{mode}\t{engine_name}\t{}\t{}\t{}\t{:.3e}\t{:.3e}\n",
                optional(report.degraded_cycle()),
                optional(report.recovered_cycle()),
                optional(report.cycles_to_recover()),
                report.dead_series().final_value().unwrap_or(f64::NAN),
                report.leaf_series().final_value().unwrap_or(f64::NAN),
            ));
            dead_columns.push((
                format!("{mode}/{engine_name}"),
                report.dead_series().clone(),
            ));
            if aged {
                let recovered = report.recovered_cycle().is_some()
                    && report.dead_series().final_value() == Some(0.0)
                    && report.final_state().is_perfect();
                all_recovered &= recovered;
            }
        }
    }

    println!("## Dead-descriptor fraction vs cycles, per mode and engine");
    print!("{}", series_table(&dead_columns));
    println!();
    println!("## Summary");
    print!("{summary}");

    if require_recovery && !all_recovered {
        eprintln!("# FAIL: an aged run did not reach zero dead descriptors + perfect tables");
        std::process::exit(1);
    }
}
