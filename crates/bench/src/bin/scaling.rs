//! Scaling sweep of the simulation hot path: wall-clock throughput across
//! network sizes, samplers and loss rates.
//!
//! Unlike the figure binaries (which reproduce the paper's *convergence* curves),
//! this binary measures the *simulator itself*: cycles per second, messages per
//! second, honest per-run peak heap, per-phase wall time and cycles-to-perfect
//! for every cell of the sweep `sizes × {oracle, newscast} × loss {0, 0.2}`.
//! The results are written as JSON (`BENCH_scaling.json` by default) so
//! successive PRs have a perf trajectory to beat; see the "Performance" section
//! of the README.
//!
//! Memory accounting: per-entry `peak_alloc_kib` comes from the counting
//! global allocator ([`bss_bench::alloc`]) and is rearmed before every run, so
//! each cell reports *its own* peak live heap. (The previous `peak_rss_kib`
//! per-entry field read `VmHWM`, which is monotone over the process lifetime —
//! every cell after the largest inherited its high-water mark. `VmHWM` is
//! still reported, once, at the top level, as the whole-process figure it is.)
//!
//! The `fig3_10k` reference entry — a 10 000-node, 60-cycle, oracle-sampled run
//! with the perfection stop disabled — is the fixed datapoint used to compare
//! engine versions.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bss_core::scenario::Engine;
use bss_sim::PhaseProfile;
use bss_util::config::NewscastParams;
use std::fmt::Write as _;
use std::time::Instant;

#[global_allocator]
static ALLOC: bss_bench::alloc::CountingAllocator = bss_bench::alloc::CountingAllocator;

const HELP: &str = "\
scaling — hot-path scaling sweep (cycles/sec, peak heap, cycles-to-perfect)

USAGE:
    cargo run --release -p bss-bench --bin scaling [-- OPTIONS]

OPTIONS:
    --sizes <list>       comma-separated size exponents  [default: 8,9,10,11,12,13,14,15]
    --cycles <n>         cycle budget per run            [default: 60]
    --measure-every <n>  observer cadence in cycles      [default: 1]
    --samplers <list>    comma-separated subset of oracle,newscast [default: both]
    --losses <list>      comma-separated drop probabilities [default: 0,0.2]
    --out <path>         output JSON path                [default: BENCH_scaling.json]
    --smoke              tiny sweep (exponents 8,9; finishes in seconds)
    --skip-reference     skip the fixed 10k-node oracle reference run

Thread counts change wall-clock only: every run's simulation output is
bit-for-bit identical at any --threads value (the engine pre-draws all
randomness sequentially and commits results in planning order), which CI
verifies by diffing the JSON of a --threads 1 and a --threads 2 smoke run.
When --threads > 1 the fixed 10k reference also runs at 1 thread so the
JSON carries the speedup pair.
";

/// One measured cell of the sweep.
struct Measurement {
    label: String,
    network_size: usize,
    sampler: &'static str,
    drop_probability: f64,
    threads: usize,
    available_parallelism: usize,
    cycles_executed: u64,
    convergence_cycle: Option<u64>,
    elapsed_seconds: f64,
    cycles_per_second: f64,
    node_cycles_per_second: f64,
    messages_per_second: f64,
    peak_alloc_kib: u64,
    phase_profile: Option<PhaseProfile>,
}

/// Peak resident set size of this process in KiB (`VmHWM` from
/// `/proc/self/status`). Monotone over the process lifetime — reported once at
/// the top level as a whole-process figure, never per entry.
fn process_peak_rss_kib() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    return rest
                        .trim()
                        .trim_end_matches(" kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                }
            }
        }
    }
    0
}

/// The parallelism the host actually offers (1 when undetectable).
fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

fn run_cell(config: &ExperimentConfig, label: String, sampler_name: &'static str) -> Measurement {
    let mut config = config.clone();
    config.profile = true;
    bss_bench::alloc::reset_peak();
    let start = Instant::now();
    let outcome = Experiment::new(config.clone()).run();
    let elapsed = start.elapsed().as_secs_f64();
    let peak_alloc_kib = bss_bench::alloc::peak_kib();
    let cycles = outcome.cycles_executed();
    let traffic = outcome.traffic();
    let messages = traffic.requests_sent + traffic.answers_sent;
    Measurement {
        label,
        network_size: config.network_size,
        sampler: sampler_name,
        drop_probability: config.drop_probability(),
        threads: config.threads(),
        available_parallelism: available_parallelism(),
        cycles_executed: cycles,
        convergence_cycle: outcome.convergence_cycle(),
        elapsed_seconds: elapsed,
        cycles_per_second: cycles as f64 / elapsed.max(1e-9),
        node_cycles_per_second: (cycles as f64 * config.network_size as f64) / elapsed.max(1e-9),
        messages_per_second: messages as f64 / elapsed.max(1e-9),
        peak_alloc_kib,
        phase_profile: outcome.phase_profile().copied(),
    }
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n  \"benchmark\": \"scaling\",\n  \"unit_notes\": ");
    out.push_str(
        "\"cycles_per_second = simulated cycles / wall second; \
         node_cycles_per_second = network_size * cycles_per_second; \
         messages_per_second = transport messages offered / wall second; \
         peak_alloc_kib = per-run peak live heap from the counting allocator \
         (rearmed before each run); process_peak_rss_kib = whole-process VmHWM, \
         monotone over the sweep; phase_profile = engine wall seconds per phase\",\n",
    );
    let _ = writeln!(
        out,
        "  \"process_peak_rss_kib\": {},",
        process_peak_rss_kib()
    );
    out.push_str("  \"entries\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let convergence = match m.convergence_cycle {
            Some(cycle) => cycle.to_string(),
            None => "null".to_owned(),
        };
        let phases = match m.phase_profile.as_ref() {
            Some(p) => format!(
                "{{\"plan_seconds\": {:.4}, \"execute_seconds\": {:.4}, \
                 \"commit_seconds\": {:.4}, \"measure_seconds\": {:.4}, \
                 \"profiled_cycles\": {}}}",
                p.plan.as_secs_f64(),
                p.execute.as_secs_f64(),
                p.commit.as_secs_f64(),
                p.measure.as_secs_f64(),
                p.cycles
            ),
            None => "null".to_owned(),
        };
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"network_size\": {}, \"sampler\": \"{}\", \
             \"drop_probability\": {}, \"threads\": {}, \"available_parallelism\": {}, \
             \"cycles_executed\": {}, \"convergence_cycle\": {}, \
             \"elapsed_seconds\": {:.4}, \"cycles_per_second\": {:.2}, \
             \"node_cycles_per_second\": {:.0}, \"messages_per_second\": {:.0}, \
             \"peak_alloc_kib\": {}, \"phase_profile\": {}}}",
            m.label,
            m.network_size,
            m.sampler,
            m.drop_probability,
            m.threads,
            m.available_parallelism,
            m.cycles_executed,
            convergence,
            m.elapsed_seconds,
            m.cycles_per_second,
            m.node_cycles_per_second,
            m.messages_per_second,
            m.peak_alloc_kib,
            phases
        );
        out.push_str(if i + 1 < measurements.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let smoke = args.get("smoke").is_some();
    let default_sizes: &[u32] = if smoke {
        &[8, 9]
    } else {
        &[8, 9, 10, 11, 12, 13, 14, 15]
    };
    let common = args.common(CommonDefaults {
        sizes: default_sizes,
        runs: 1,
        cycles: 60,
        seed: 1,
    });
    let sizes = common.sizes.clone();
    let cycles = common.cycles;
    let seed = common.seed;
    let measure_every = args.parsed_or("measure-every", 1u64);
    let threads = common.threads;
    let out_path = common
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_scaling.json".to_owned());
    let quiet = common.quiet;
    let skip_reference = args.get("skip-reference").is_some();
    let available = available_parallelism();
    if threads > available {
        eprintln!(
            "# warning: --threads {threads} exceeds available parallelism ({available}); \
             extra workers only add scheduling overhead"
        );
    }
    // Honour --engine: event-engine sweeps keep the selected engine verbatim
    // (thread counts are meaningless there); cycle-family sweeps map each
    // cell's thread count onto Cycle / ParallelCycle.
    let event_engine = matches!(common.engine, Engine::Event { .. });
    let engine_for = |cell_threads: usize| -> Engine {
        if event_engine {
            common.engine
        } else {
            Engine::with_threads(cell_threads)
        }
    };

    let mut measurements = Vec::new();

    // The fixed engine-version reference point: 10k nodes, 60 full cycles,
    // oracle sampling, no loss. Disabling the perfection stop makes the
    // wall-clock comparable across engine versions regardless of convergence.
    if !skip_reference && !smoke {
        // Always measure the fixed reference at one thread (the engine-version
        // trajectory datapoint); when a thread pool is requested, measure it
        // again with the pool so the JSON carries the speedup pair. On the
        // event engine the pair is meaningless, so only one reference runs.
        let mut reference_threads = vec![1usize];
        if threads > 1 && !event_engine {
            reference_threads.push(threads);
        }
        for reference_thread_count in reference_threads {
            if !quiet {
                eprintln!(
                    "# reference: N=10000, 60 cycles, oracle, loss 0, {reference_thread_count} thread(s)"
                );
            }
            let config = ExperimentConfig::builder()
                .network_size(10_000)
                .seed(seed)
                .max_cycles(60)
                .measure_every(measure_every)
                .stop_when_perfect(false)
                .engine(engine_for(reference_thread_count))
                .build()
                .expect("valid reference configuration");
            let label = if reference_thread_count == 1 {
                "fig3_10k".to_owned()
            } else {
                format!("fig3_10k_t{reference_thread_count}")
            };
            let reference = run_cell(&config, label, "oracle");
            if !quiet {
                eprintln!(
                    "#   {:.2}s ({:.1} cycles/s, peak heap {} KiB)",
                    reference.elapsed_seconds,
                    reference.cycles_per_second,
                    reference.peak_alloc_kib
                );
            }
            measurements.push(reference);
        }
    }

    // `--samplers` / `--losses` restrict the sweep grid — the million-node
    // runs use them to measure the oracle hot path alone.
    let samplers: Vec<(&'static str, SamplerChoice)> = match args.get("samplers") {
        None => vec![
            ("oracle", SamplerChoice::Oracle),
            (
                "newscast",
                SamplerChoice::Newscast(NewscastParams::paper_default()),
            ),
        ],
        Some(list) => list
            .split(',')
            .map(|name| match name.trim() {
                "oracle" => ("oracle", SamplerChoice::Oracle),
                "newscast" => (
                    "newscast",
                    SamplerChoice::Newscast(NewscastParams::paper_default()),
                ),
                other => panic!("unknown sampler {other:?} (expected oracle or newscast)"),
            })
            .collect(),
    };
    let losses: Vec<f64> = match args.get("losses") {
        None => vec![0.0, 0.2],
        Some(list) => list
            .split(',')
            .map(|loss| {
                loss.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("invalid loss {loss:?}"))
            })
            .collect(),
    };

    for &exponent in &sizes {
        let network_size = 1usize << exponent;
        for (sampler_name, sampler) in samplers.iter().copied() {
            for loss in losses.iter().copied() {
                if !quiet {
                    eprintln!("# N=2^{exponent} sampler={sampler_name} loss={loss}");
                }
                let config = ExperimentConfig::builder()
                    .network_size(network_size)
                    .seed(seed + u64::from(exponent))
                    .sampler(sampler)
                    .drop_probability(loss)
                    .max_cycles(cycles)
                    .measure_every(measure_every)
                    .engine(engine_for(threads))
                    .build()
                    .expect("valid sweep configuration");
                let label = format!("2^{exponent}_{sampler_name}_loss{loss}");
                let m = run_cell(&config, label, sampler_name);
                if !quiet {
                    eprintln!(
                        "#   {:.2}s ({:.1} cycles/s, peak heap {} KiB, converged at {:?})",
                        m.elapsed_seconds,
                        m.cycles_per_second,
                        m.peak_alloc_kib,
                        m.convergence_cycle
                    );
                }
                measurements.push(m);
            }
        }
    }

    let json = render_json(&measurements);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    eprintln!("# wrote {out_path}");
    print!("{json}");
}
