//! The scenario smoke suite: one timeline per scenario-event kind, each run on
//! both the cycle engine and the discrete-event engine, through the same
//! engine-agnostic entry point as every other experiment.
//!
//! For every cell the binary writes the full serializable `RunReport` as JSON
//! (`<out-dir>/<kind>_<engine>.json`) — CI runs this as a dedicated job and
//! uploads the reports as artifacts — and prints a one-line summary per run.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bss_core::scenario::{
    AdversaryBehavior, Engine, KeyDist, PartitionSpec, Phase, Scenario, ScenarioEvent,
};
use bss_util::config::{BootstrapParams, NewscastParams};

const HELP: &str = "\
scenarios — scenario smoke suite: every event kind x both engines

USAGE:
    cargo run --release -p bss-bench --bin scenarios [-- OPTIONS]

OPTIONS:
    --size <exp>     network size exponent (N = 2^exp)  [default: 8]
    --cycles <n>     cycle budget per run               [default: 40]
    --out-dir <dir>  directory for RunReport JSONs      [default: scenario-reports]
";

/// One cell of the smoke suite: a named timeline plus the per-run knobs it
/// needs (descriptor aging for the recovery cell; the NEWSCAST sampler and the
/// countermeasures for the adversarial cells).
struct SmokeCell {
    kind: &'static str,
    scenario: Scenario,
    /// Descriptor aging bound (`None` = the paper's detector-free protocol;
    /// only the recovery timeline needs the failure detector).
    max_age: Option<u64>,
    /// Run over a real NEWSCAST sampler instead of the oracle, with this
    /// per-origin view diversity quota (adversarial cells only).
    newscast_quota: Option<Option<usize>>,
    /// Seeded descriptor-verification key (the defended adversarial cell).
    verifier: Option<u64>,
}

impl SmokeCell {
    fn honest(kind: &'static str, scenario: Scenario, max_age: Option<u64>) -> Self {
        SmokeCell {
            kind,
            scenario,
            max_age,
            newscast_quota: None,
            verifier: None,
        }
    }
}

/// One timeline per scenario-event kind, sized relative to the network.
fn smoke_timelines(network_size: usize) -> Vec<SmokeCell> {
    // The adversarial cells: a fifth of the network converts to id-spraying
    // node 0. Undefended the victim is eclipsed; with the verifier and the
    // view diversity quota on, it must not be (CI gates on `eclipsed`).
    let eclipse = |kind, quota, verifier| SmokeCell {
        kind,
        scenario: Scenario::calm().with(ScenarioEvent::ByzantineConvert {
            phase: Phase::new(5, 20),
            fraction: 0.2,
            behavior: AdversaryBehavior::IdSpray { target: 0 },
        }),
        max_age: None,
        newscast_quota: Some(quota),
        verifier,
    };
    vec![
        SmokeCell::honest("calm", Scenario::calm(), None),
        SmokeCell::honest(
            "loss_window",
            Scenario::calm().with(ScenarioEvent::LossWindow {
                phase: Phase::new(5, 15),
                probability: 0.4,
            }),
            None,
        ),
        SmokeCell::honest(
            "churn_burst",
            Scenario::calm().with(ScenarioEvent::ChurnBurst {
                phase: Phase::new(5, 15),
                rate: 0.05,
            }),
            None,
        ),
        SmokeCell::honest(
            "catastrophic_failure",
            Scenario::calm().with(ScenarioEvent::CatastrophicFailure {
                at_cycle: 10,
                fraction: 0.5,
            }),
            None,
        ),
        SmokeCell::honest(
            "massive_join",
            Scenario::calm().with(ScenarioEvent::MassiveJoin {
                at_cycle: 10,
                count: network_size,
            }),
            None,
        ),
        SmokeCell::honest(
            "partition_merge",
            Scenario::calm().with(ScenarioEvent::Partition {
                phase: Phase::new(0, 10),
                groups: PartitionSpec::IndexParity,
            }),
            None,
        ),
        // The recovery timeline: a catastrophe followed by a full re-bootstrap
        // of the survivors, with descriptor aging enabled so the stale
        // descriptors of the dead actually age out and the overlay
        // re-converges (the paper's recovery claim, end to end).
        SmokeCell::honest(
            "catastrophe_recover",
            Scenario::calm()
                .with(ScenarioEvent::CatastrophicFailure {
                    at_cycle: 10,
                    fraction: 0.5,
                })
                .with(ScenarioEvent::ReBootstrap {
                    at_cycle: 12,
                    fraction: 1.0,
                }),
            Some(8),
        ),
        eclipse("eclipse_undefended", None, None),
        eclipse("eclipse_defended", Some(2), Some(0xde7e_c7ed)),
        // Live lookup traffic served straight through a churn burst: the
        // success series must dip while the tables are stale and recover once
        // the failure detector ages the dead out (CI gates the final window).
        SmokeCell::honest(
            "traffic_churn",
            Scenario::calm()
                .with(ScenarioEvent::TrafficPhase {
                    phase: Phase::new(0, 40),
                    lookups_per_cycle: 200,
                    key_dist: KeyDist::Uniform,
                })
                .with(ScenarioEvent::ChurnBurst {
                    phase: Phase::new(10, 18),
                    rate: 0.02,
                }),
            Some(8),
        ),
    ]
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[8],
        runs: 1,
        cycles: 40,
        seed: 1,
    });
    let exponent = common.size();
    let network_size = 1usize << exponent;
    let out_dir = args.get("out-dir").unwrap_or("scenario-reports").to_owned();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let engines: [(&'static str, Engine); 2] = [
        ("cycle", Engine::with_threads(common.threads)),
        (
            "event",
            Engine::Event {
                latency: args.latency_model(),
            },
        ),
    ];

    eprintln!(
        "# Scenario smoke suite: N=2^{exponent}, {} cycles budget",
        common.cycles
    );
    println!(
        "scenario\tengine\tcycles_executed\tconvergence_cycle\tfinal_leaf_missing\tevents_fired\
         \teclipsed\ttime_to_eclipse"
    );
    for cell in smoke_timelines(network_size) {
        let kind = cell.kind;
        for (engine_name, engine) in engines {
            let mut builder = ExperimentConfig::builder();
            builder
                .network_size(network_size)
                .seed(common.seed)
                .max_cycles(common.cycles)
                .scenario(cell.scenario.clone())
                .engine(engine)
                .descriptor_max_age(cell.max_age);
            if let Some(quota) = cell.newscast_quota {
                builder.sampler(SamplerChoice::Newscast(NewscastParams {
                    view_size: 20,
                    period_millis: 1000,
                    view_diversity_quota: quota,
                    ..NewscastParams::paper_default()
                }));
            }
            if let Some(key) = cell.verifier {
                builder.params(BootstrapParams {
                    descriptor_verifier: Some(key),
                    ..BootstrapParams::paper_default()
                });
            }
            let config = builder.build().expect("valid smoke configuration");
            let report = Experiment::new(config).run();
            let path = format!("{out_dir}/{kind}_{engine_name}.json");
            std::fs::write(&path, report.to_json()).expect("write RunReport JSON");
            println!(
                "{kind}\t{engine_name}\t{}\t{}\t{:.3e}\t{}\t{}\t{}",
                report.cycles_executed(),
                report
                    .convergence_cycle()
                    .map(|cycle| cycle.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
                report.final_state().leaf_proportion(),
                report.events_fired().len(),
                report.eclipsed(),
                report
                    .time_to_eclipse()
                    .map(|cycle| cycle.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
            );
            if !common.quiet {
                eprintln!("#   wrote {path}");
            }
        }
    }
}
