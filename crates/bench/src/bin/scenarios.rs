//! The scenario smoke suite: one timeline per scenario-event kind, each run on
//! both the cycle engine and the discrete-event engine, through the same
//! engine-agnostic entry point as every other experiment.
//!
//! For every cell the binary writes the full serializable `RunReport` as JSON
//! (`<out-dir>/<kind>_<engine>.json`) — CI runs this as a dedicated job and
//! uploads the reports as artifacts — and prints a one-line summary per run.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig};
use bss_core::scenario::{Engine, PartitionSpec, Phase, Scenario, ScenarioEvent};

const HELP: &str = "\
scenarios — scenario smoke suite: every event kind x both engines

USAGE:
    cargo run --release -p bss-bench --bin scenarios [-- OPTIONS]

OPTIONS:
    --size <exp>     network size exponent (N = 2^exp)  [default: 8]
    --cycles <n>     cycle budget per run               [default: 40]
    --out-dir <dir>  directory for RunReport JSONs      [default: scenario-reports]
";

/// One timeline per scenario-event kind, sized relative to the network. The
/// third element is the descriptor aging bound the run is configured with
/// (`None` = the paper's detector-free protocol; only the recovery timeline
/// needs the failure detector).
fn smoke_timelines(network_size: usize) -> Vec<(&'static str, Scenario, Option<u64>)> {
    vec![
        ("calm", Scenario::calm(), None),
        (
            "loss_window",
            Scenario::calm().with(ScenarioEvent::LossWindow {
                phase: Phase::new(5, 15),
                probability: 0.4,
            }),
            None,
        ),
        (
            "churn_burst",
            Scenario::calm().with(ScenarioEvent::ChurnBurst {
                phase: Phase::new(5, 15),
                rate: 0.05,
            }),
            None,
        ),
        (
            "catastrophic_failure",
            Scenario::calm().with(ScenarioEvent::CatastrophicFailure {
                at_cycle: 10,
                fraction: 0.5,
            }),
            None,
        ),
        (
            "massive_join",
            Scenario::calm().with(ScenarioEvent::MassiveJoin {
                at_cycle: 10,
                count: network_size,
            }),
            None,
        ),
        (
            "partition_merge",
            Scenario::calm().with(ScenarioEvent::Partition {
                phase: Phase::new(0, 10),
                groups: PartitionSpec::IndexParity,
            }),
            None,
        ),
        // The recovery timeline: a catastrophe followed by a full re-bootstrap
        // of the survivors, with descriptor aging enabled so the stale
        // descriptors of the dead actually age out and the overlay
        // re-converges (the paper's recovery claim, end to end).
        (
            "catastrophe_recover",
            Scenario::calm()
                .with(ScenarioEvent::CatastrophicFailure {
                    at_cycle: 10,
                    fraction: 0.5,
                })
                .with(ScenarioEvent::ReBootstrap {
                    at_cycle: 12,
                    fraction: 1.0,
                }),
            Some(8),
        ),
    ]
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let common = args.common(CommonDefaults {
        sizes: &[8],
        runs: 1,
        cycles: 40,
        seed: 1,
    });
    let exponent = common.size();
    let network_size = 1usize << exponent;
    let out_dir = args.get("out-dir").unwrap_or("scenario-reports").to_owned();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let engines: [(&'static str, Engine); 2] = [
        ("cycle", Engine::with_threads(common.threads)),
        (
            "event",
            Engine::Event {
                latency: args.latency_model(),
            },
        ),
    ];

    eprintln!(
        "# Scenario smoke suite: N=2^{exponent}, {} cycles budget",
        common.cycles
    );
    println!(
        "scenario\tengine\tcycles_executed\tconvergence_cycle\tfinal_leaf_missing\tevents_fired"
    );
    for (kind, scenario, max_age) in smoke_timelines(network_size) {
        for (engine_name, engine) in engines {
            let config = ExperimentConfig::builder()
                .network_size(network_size)
                .seed(common.seed)
                .max_cycles(common.cycles)
                .scenario(scenario.clone())
                .engine(engine)
                .descriptor_max_age(max_age)
                .build()
                .expect("valid smoke configuration");
            let report = Experiment::new(config).run();
            let path = format!("{out_dir}/{kind}_{engine_name}.json");
            std::fs::write(&path, report.to_json()).expect("write RunReport JSON");
            println!(
                "{kind}\t{engine_name}\t{}\t{}\t{:.3e}\t{}",
                report.cycles_executed(),
                report
                    .convergence_cycle()
                    .map(|cycle| cycle.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
                report.final_state().leaf_proportion(),
                report.events_fired().len(),
            );
            if !common.quiet {
                eprintln!("#   wrote {path}");
            }
        }
    }
}
