//! The live-traffic sweep: N × router × scenario × engine, each cell serving
//! a sustained lookup workload against the overlay *while* it converges,
//! churns or is attacked.
//!
//! For every cell the binary writes the full serializable `RunReport` as JSON
//! (`<out-dir>/<scenario>_<router>_<engine>.json` — sweeps with several sizes
//! prefix `n<size>_`), prints a one-line summary per run, and appends every
//! measured cycle of the traffic series to a long-format timeline TSV
//! (`<out-dir>/traffic_timeline.tsv`: scenario, router, engine, N, cycle,
//! success rate, hop mean/max, latency p50/p95/p99) — the data behind the
//! "Serve real traffic" numbers in the roadmap.
//!
//! With `--link wan[:placement]` the sweep runs over a WAN topology and also
//! writes `<out-dir>/traffic_regions.tsv`, the same timeline split by client
//! region, so the latency percentiles show their geography.

use bss_bench::cli::{Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig, SamplerChoice};
use bss_core::scenario::{AdversaryBehavior, Engine, KeyDist, LatencyModel, Phase, ScenarioEvent};
use bss_core::RouterKind;
use bss_traffic::{
    append_region_timeline, append_timeline, region_timeline_header, timeline_header,
    TrafficSummary, TrafficWorkload,
};
use bss_util::config::{BootstrapParams, NewscastParams};

const HELP: &str = "\
traffic — live lookup workload sweep: N x router x scenario x engines

USAGE:
    cargo run --release -p bss-bench --bin traffic [-- OPTIONS]

OPTIONS:
    --sizes <list>   network size exponents (N = 2^exp)      [default: 8]
    --cycles <n>     cycle budget per run                    [default: 60]
    --rate <n>       lookups issued per active cycle         [default: 100]
    --link <spec>    per-link latency override: constant:<ms>, uniform:<min>,<max>,
                     wan:plane|clustered[:<regions>]|dumbbell (adds the
                     per-client-region timeline traffic_regions.tsv)
    --out-dir <dir>  directory for JSONs and the timeline    [default: traffic-reports]
    --smoke          tiny CI sweep (N=2^7, 40 cycles, rate 50)
";

const VERIFIER_KEY: u64 = 0x7faf_f1c5;
const QUOTA: usize = 2;

/// One service scenario of the sweep: a timeline to serve traffic through,
/// plus the knobs its repair story needs.
struct TrafficCell {
    name: &'static str,
    /// Extra events layered under the traffic phase.
    events: Vec<ScenarioEvent>,
    key_dist: KeyDist,
    /// Descriptor aging (the churn cell needs the failure detector to
    /// recover).
    max_age: Option<u64>,
    /// Run over NEWSCAST with countermeasures (the defended adversary cell).
    defended: bool,
    /// Run over NEWSCAST without countermeasures (the undefended one).
    newscast: bool,
}

fn cells(cycles: u64) -> Vec<TrafficCell> {
    let churn = ScenarioEvent::ChurnBurst {
        phase: Phase::new(cycles / 4, cycles * 2 / 5),
        rate: 0.02,
    };
    let attack = ScenarioEvent::ByzantineConvert {
        phase: Phase::new(5, cycles * 3 / 4),
        fraction: 0.2,
        behavior: AdversaryBehavior::IdSpray { target: 0 },
    };
    vec![
        TrafficCell {
            name: "calm",
            events: Vec::new(),
            key_dist: KeyDist::Uniform,
            max_age: None,
            defended: false,
            newscast: false,
        },
        TrafficCell {
            name: "churn",
            events: vec![churn],
            key_dist: KeyDist::Uniform,
            max_age: Some(8),
            defended: false,
            newscast: false,
        },
        // The adversarial cells skew the keys towards the victim's region
        // (Zipf rank 0 is node 0, the id-spray target), so the lookups
        // actually exercise the poisoned tables. Aging is on: expiry is what
        // arms the attack — honest descriptors crowded out by forgeries stop
        // being refreshed and fall out of the tables, so undefended lookups
        // start dying on forged contacts instead of limping along on stale
        // honest entries.
        TrafficCell {
            name: "adversary",
            events: vec![attack.clone()],
            key_dist: KeyDist::Zipf { exponent: 1.1 },
            max_age: Some(8),
            defended: false,
            newscast: true,
        },
        TrafficCell {
            name: "adversary_defended",
            events: vec![attack],
            key_dist: KeyDist::Zipf { exponent: 1.1 },
            max_age: Some(8),
            defended: true,
            newscast: true,
        },
    ]
}

#[allow(clippy::too_many_arguments)]
fn config(
    cell: &TrafficCell,
    network_size: usize,
    seed: u64,
    cycles: u64,
    rate: u32,
    router: RouterKind,
    engine: Engine,
    link: Option<LatencyModel>,
) -> ExperimentConfig {
    let mut builder = ExperimentConfig::builder();
    builder
        .network_size(network_size)
        .seed(seed)
        .max_cycles(cycles)
        .stop_when_perfect(false)
        .engine(engine);
    if let Some(model) = link {
        builder.link_model(model);
    }
    TrafficWorkload::new(Phase::new(0, cycles))
        .lookups_per_cycle(rate)
        .key_dist(cell.key_dist)
        .router(router)
        .install(&mut builder);
    for event in &cell.events {
        builder.event(event.clone());
    }
    if cell.newscast {
        builder.sampler(SamplerChoice::Newscast(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            view_diversity_quota: cell.defended.then_some(QUOTA),
            ..NewscastParams::paper_default()
        }));
    }
    if cell.defended {
        builder.params(BootstrapParams {
            descriptor_verifier: Some(VERIFIER_KEY),
            ..BootstrapParams::paper_default()
        });
    }
    // After `params`, which replaces the parameter set wholesale.
    builder.descriptor_max_age(cell.max_age);
    builder.build().expect("valid traffic sweep configuration")
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let smoke = args.get("smoke").is_some();
    let common = args.common(CommonDefaults {
        sizes: if smoke { &[7] } else { &[8] },
        runs: 1,
        cycles: if smoke { 40 } else { 60 },
        seed: 1,
    });
    let rate = args.parsed_or("rate", if smoke { 50u32 } else { 100u32 });
    let link = args.link_model_arg();
    let out_dir = args.get("out-dir").unwrap_or("traffic-reports").to_owned();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let engines: [(&'static str, Engine); 2] = [
        ("cycle", Engine::with_threads(common.threads)),
        (
            "event",
            Engine::Event {
                latency: args.latency_model(),
            },
        ),
    ];

    eprintln!(
        "# Traffic sweep: sizes {:?} (exponents), {} cycles budget, {rate} lookups/cycle",
        common.sizes, common.cycles
    );
    println!(
        "scenario\trouter\tengine\tn\tissued\tdelivered\tsuccess_rate\tmean_hops\tmax_hops\
         \tworst_window\tfinal_window"
    );
    let mut timeline = String::from(timeline_header());
    let mut regions = String::from(region_timeline_header());
    for &exponent in &common.sizes {
        let network_size = 1usize << exponent;
        for cell in cells(common.cycles) {
            for router in RouterKind::ALL {
                for (engine_name, engine) in engines {
                    let report = Experiment::new(config(
                        &cell,
                        network_size,
                        common.seed,
                        common.cycles,
                        rate,
                        router,
                        engine,
                        link,
                    ))
                    .run();
                    let summary =
                        TrafficSummary::from_report(&report).expect("traffic was scheduled");
                    println!(
                        "{}\t{router}\t{engine_name}\t{network_size}\t{}\t{}\t{:.4}\t{:.2}\t{}\
                         \t{:.4}\t{:.4}",
                        cell.name,
                        summary.issued,
                        summary.delivered,
                        summary.success_rate,
                        summary.mean_hops,
                        summary.max_hops,
                        summary.worst_window_success.unwrap_or(0.0),
                        summary.final_window_success.unwrap_or(0.0),
                    );
                    append_timeline(
                        &mut timeline,
                        cell.name,
                        router,
                        engine_name,
                        network_size,
                        &report,
                    );
                    append_region_timeline(
                        &mut regions,
                        cell.name,
                        router,
                        engine_name,
                        network_size,
                        &report,
                    );
                    let prefix = if common.sizes.len() > 1 {
                        format!("n{network_size}_")
                    } else {
                        String::new()
                    };
                    let path = format!(
                        "{out_dir}/{prefix}{}_{router}_{engine_name}.json",
                        cell.name
                    );
                    std::fs::write(&path, report.to_json()).expect("write RunReport JSON");
                    if !common.quiet {
                        eprintln!("#   wrote {path}");
                    }
                }
            }
        }
    }
    let timeline_path = format!("{out_dir}/traffic_timeline.tsv");
    std::fs::write(&timeline_path, timeline).expect("write timeline TSV");
    eprintln!("# wrote {timeline_path}");
    if regions.len() > region_timeline_header().len() {
        let regions_path = format!("{out_dir}/traffic_regions.tsv");
        std::fs::write(&regions_path, regions).expect("write region timeline TSV");
        eprintln!("# wrote {regions_path}");
    }
}
