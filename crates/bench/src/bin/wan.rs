//! The WAN-realism sweep: placement × link model × engine, measuring how much
//! topology skews the convergence story and whether the bootstrapped overlay
//! is proximity-aware for free.
//!
//! Each cell bootstraps a network under one per-link latency model — the two
//! legacy global models (`constant`, `uniform` matched to the WAN's latency
//! bounds) and the distance-dependent `wan` model over the three canonical
//! placements (uniform plane, clustered regions, two-DC dumbbell) — while a
//! lookup workload runs over the converging overlay. Two extra cells replay
//! regional scenario events over the clustered placement: a full
//! `RegionalOutage` of region 1 and a `SlowLinks` window multiplying region
//! 1's latencies.
//!
//! Outputs, all deterministic (bit-for-bit identical at any `--threads`):
//!
//! * a summary TSV on stdout — one row per cell × engine with convergence
//!   cycle, final missing proportions, leaf-set proximity vs. the
//!   random-pairs baseline, and the traffic latency percentiles;
//! * `<out-dir>/wan_timeline.tsv` — the per-cycle convergence + service
//!   timeline (the canonical golden under `ci/golden/wan_small.tsv`);
//! * `<out-dir>/wan_regions.tsv` — the traffic timeline split by client
//!   region (see `bss_traffic::append_region_timeline`);
//! * `<out-dir>/<cell>_<engine>.json` — the full `RunReport` per cell, the
//!   artifact the CI jq gate inspects for the outage dip and recovery.

use bss_bench::cli::{wan_placement, Args, CommonDefaults, COMMON_OPTIONS_HELP};
use bss_core::experiment::{Experiment, ExperimentConfig, RunReport};
use bss_core::scenario::{Engine, LatencyModel, Phase, ScenarioEvent, WanParams};
use bss_core::RouterKind;
use bss_traffic::{append_region_timeline, region_timeline_header, TrafficWorkload};
use std::fmt::Write as _;

const HELP: &str = "\
wan — WAN-realism sweep: placement x link model x engine

USAGE:
    cargo run --release -p bss-bench --bin wan [-- OPTIONS]

OPTIONS:
    --sizes <list>   network size exponents (N = 2^exp)      [default: 8]
    --cycles <n>     cycle budget per run                    [default: 60]
    --rate <n>       lookups issued per active cycle         [default: 50]
    --out-dir <dir>  directory for JSONs and timelines       [default: wan-reports]
    --smoke          tiny CI sweep (N=2^7, 40 cycles)
";

/// The affected region of the regional-event cells (and the one the CI gate
/// watches).
const EVENT_REGION: u32 = 1;

/// One cell of the sweep: a link model plus any regional events riding on it.
struct WanCell {
    name: &'static str,
    link: LatencyModel,
    events: Vec<ScenarioEvent>,
}

/// The sweep: legacy baselines, the three placements, and the two regional
/// scenario events over the clustered placement.
fn cells(cycles: u64) -> Vec<WanCell> {
    let params = WanParams::default();
    let clustered = LatencyModel::Wan {
        placement: wan_placement("clustered", 4),
        params,
    };
    // The uniform baseline spans the clustered WAN's latency bounds, so the
    // cycle-vs-WAN comparison isolates *structure* (distance-dependence) from
    // *magnitude*.
    let (min_millis, max_millis) = clustered.bounds();
    let event_window = Phase::new(cycles / 4, cycles / 2);
    vec![
        WanCell {
            name: "constant",
            link: LatencyModel::Constant { millis: 1 },
            events: Vec::new(),
        },
        WanCell {
            name: "uniform",
            link: LatencyModel::Uniform {
                min_millis,
                max_millis,
            },
            events: Vec::new(),
        },
        WanCell {
            name: "wan_plane",
            link: LatencyModel::Wan {
                placement: wan_placement("plane", 4),
                params,
            },
            events: Vec::new(),
        },
        WanCell {
            name: "wan_clustered",
            link: clustered,
            events: Vec::new(),
        },
        WanCell {
            name: "wan_dumbbell",
            link: LatencyModel::Wan {
                placement: wan_placement("dumbbell", 4),
                params,
            },
            events: Vec::new(),
        },
        WanCell {
            name: "wan_outage",
            link: clustered,
            events: vec![ScenarioEvent::RegionalOutage {
                phase: event_window,
                region: EVENT_REGION,
                loss: 1.0,
            }],
        },
        WanCell {
            name: "wan_slow",
            link: clustered,
            events: vec![ScenarioEvent::SlowLinks {
                phase: event_window,
                region: Some(EVENT_REGION),
                factor: 4.0,
            }],
        },
    ]
}

fn config(
    cell: &WanCell,
    network_size: usize,
    seed: u64,
    cycles: u64,
    rate: u32,
    engine: Engine,
) -> ExperimentConfig {
    let mut builder = ExperimentConfig::builder();
    builder
        .network_size(network_size)
        .seed(seed)
        .max_cycles(cycles)
        .stop_when_perfect(false)
        .engine(engine)
        .link_model(cell.link);
    TrafficWorkload::new(Phase::new(0, cycles))
        .lookups_per_cycle(rate)
        .install(&mut builder);
    for event in &cell.events {
        builder.event(event.clone());
    }
    builder.build().expect("valid wan sweep configuration")
}

/// Appends one run's per-cycle rows to the convergence + service timeline.
fn append_wan_timeline(
    timeline: &mut String,
    cell: &str,
    engine: &str,
    network_size: usize,
    report: &RunReport,
) {
    let lookups = report.lookups();
    for (position, &(cycle, leaf_missing)) in report.leaf_series().points().iter().enumerate() {
        let value_at = |series: Option<&bss_util::stats::Series>| {
            series
                .and_then(|series| series.points().get(position))
                .map_or(0.0, |&(_, v)| v)
        };
        let _ = writeln!(
            timeline,
            "{cell}\t{engine}\t{network_size}\t{cycle}\t{leaf_missing:.6}\t{:.6}\t{:.6}\t{:.1}\
             \t{:.1}",
            value_at(Some(report.prefix_series())),
            value_at(lookups.map(|l| l.success_series())),
            value_at(lookups.map(|l| l.latency_p50_series())),
            value_at(lookups.map(|l| l.latency_p99_series())),
        );
    }
}

fn main() {
    let args = Args::from_env();
    if args.wants_help() {
        print!("{HELP}{COMMON_OPTIONS_HELP}");
        return;
    }
    let smoke = args.get("smoke").is_some();
    let common = args.common(CommonDefaults {
        sizes: if smoke { &[7] } else { &[8] },
        runs: 1,
        cycles: if smoke { 40 } else { 60 },
        seed: 1,
    });
    let rate = args.parsed_or("rate", 50u32);
    let out_dir = args.get("out-dir").unwrap_or("wan-reports").to_owned();
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let engines: [(&'static str, Engine); 2] = [
        ("cycle", Engine::with_threads(common.threads)),
        (
            "event",
            Engine::Event {
                latency: args.latency_model(),
            },
        ),
    ];

    eprintln!(
        "# WAN sweep: sizes {:?} (exponents), {} cycles budget, {rate} lookups/cycle",
        common.sizes, common.cycles
    );
    println!(
        "cell\tlink\tengine\tn\tconverged_cycle\tfinal_leaf_missing\tfinal_prefix_missing\
         \tleaf_link_distance\trandom_link_distance\tproximity_ratio\tlookup_success\
         \tlookup_p50\tlookup_p99"
    );
    let mut timeline = String::from(
        "cell\tengine\tn\tcycle\tleaf_missing\tprefix_missing\tlookup_success\tlookup_p50\
         \tlookup_p99\n",
    );
    let mut regions = String::from(region_timeline_header());
    for &exponent in &common.sizes {
        let network_size = 1usize << exponent;
        for cell in cells(common.cycles) {
            for (engine_name, engine) in engines {
                let report = Experiment::new(config(
                    &cell,
                    network_size,
                    common.seed,
                    common.cycles,
                    rate,
                    engine,
                ))
                .run();
                let final_state = report.final_state();
                let lookups = report.lookups().expect("traffic was scheduled");
                let last = |series: &bss_util::stats::Series| {
                    series.points().last().map_or(0.0, |&(_, v)| v)
                };
                let (leaf_distance, random_distance, ratio) =
                    report.proximity().map_or((0.0, 0.0, 0.0), |proximity| {
                        (
                            proximity.mean_leaf_distance,
                            proximity.mean_random_distance,
                            proximity.ratio(),
                        )
                    });
                println!(
                    "{}\t{}\t{engine_name}\t{network_size}\t{}\t{:.6}\t{:.6}\t{leaf_distance:.2}\
                     \t{random_distance:.2}\t{ratio:.4}\t{:.4}\t{:.1}\t{:.1}",
                    cell.name,
                    cell.link.label(),
                    report.convergence_cycle().map_or(-1, |cycle| cycle as i64),
                    final_state.leaf_proportion(),
                    final_state.prefix_proportion(),
                    lookups.success_rate(),
                    last(lookups.latency_p50_series()),
                    last(lookups.latency_p99_series()),
                );
                append_wan_timeline(&mut timeline, cell.name, engine_name, network_size, &report);
                append_region_timeline(
                    &mut regions,
                    cell.name,
                    RouterKind::Pastry,
                    engine_name,
                    network_size,
                    &report,
                );
                let prefix = if common.sizes.len() > 1 {
                    format!("n{network_size}_")
                } else {
                    String::new()
                };
                let path = format!("{out_dir}/{prefix}{}_{engine_name}.json", cell.name);
                std::fs::write(&path, report.to_json()).expect("write RunReport JSON");
                if !common.quiet {
                    eprintln!("#   wrote {path}");
                }
            }
        }
    }
    let timeline_path = format!("{out_dir}/wan_timeline.tsv");
    std::fs::write(&timeline_path, timeline).expect("write timeline TSV");
    eprintln!("# wrote {timeline_path}");
    let regions_path = format!("{out_dir}/wan_regions.tsv");
    std::fs::write(&regions_path, regions).expect("write region timeline TSV");
    eprintln!("# wrote {regions_path}");
}
