//! A minimal command-line argument parser for the experiment binaries.
//!
//! The binaries only need `--flag value` pairs and `--help`; pulling in a full
//! argument-parsing dependency for that would violate the project's
//! minimal-dependency policy, so this module implements exactly what is needed.
//!
//! Beyond the raw [`Args`] map, [`CommonArgs`] factors out the option set every
//! experiment binary shares — sizes, run counts, cycle budgets, seed, engine
//! selection (threads / event latency), output path and verbosity — so the six
//! binaries no longer copy-paste their argument plumbing.

use bss_core::scenario::{Engine, LatencyModel, PlacementSpec, WanParams};
use std::collections::BTreeMap;

/// The canonical WAN placements the bench binaries sweep, by name — shared so
/// `--link wan:<placement>` and the `wan` bin's sweep agree on the geometry
/// (a 1000×1000 plane, four 60-unit-spread clusters on it, or two DCs 1000
/// units apart).
///
/// # Panics
///
/// Panics on an unknown placement name.
pub fn wan_placement(name: &str, regions: u32) -> PlacementSpec {
    match name {
        "plane" => PlacementSpec::UniformPlane {
            width: 1000.0,
            height: 1000.0,
        },
        "clustered" => PlacementSpec::Clustered {
            regions,
            width: 1000.0,
            height: 1000.0,
            spread: 60.0,
        },
        "dumbbell" => PlacementSpec::Dumbbell {
            separation: 1000.0,
            spread: 60.0,
        },
        other => panic!("unknown WAN placement {other:?}: expected plane, clustered or dumbbell"),
    }
}

/// Parsed `--key value` arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
    help: bool,
}

impl Args {
    /// Parses the process arguments (everything after the binary name).
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = BTreeMap::new();
        let mut help = false;
        let mut iterator = args.into_iter().peekable();
        while let Some(argument) = iterator.next() {
            if argument == "--help" || argument == "-h" {
                help = true;
                continue;
            }
            if let Some(key) = argument.strip_prefix("--") {
                if let Some((key, value)) = key.split_once('=') {
                    values.insert(key.to_owned(), value.to_owned());
                } else if let Some(value) = iterator.peek() {
                    if value.starts_with("--") {
                        values.insert(key.to_owned(), String::from("true"));
                    } else {
                        values.insert(key.to_owned(), iterator.next().expect("peeked"));
                    }
                } else {
                    values.insert(key.to_owned(), String::from("true"));
                }
            }
        }
        Args { values, help }
    }

    /// Whether `--help` was requested.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed value of `--key`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value cannot be parsed.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                panic!("--{key} expects a value like the default, got {raw:?}")
            }),
        }
    }

    /// A comma-separated list of `u32` exponents (e.g. `--sizes 10,12,14`), or
    /// `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics when an element cannot be parsed.
    pub fn u32_list_or(&self, key: &str, default: &[u32]) -> Vec<u32> {
        match self.get(key) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .filter(|piece| !piece.is_empty())
                .map(|piece| {
                    piece.trim().parse().unwrap_or_else(|_| {
                        panic!("--{key} expects comma-separated integers, got {piece:?}")
                    })
                })
                .collect(),
        }
    }
}

/// Per-binary defaults for the shared option set.
#[derive(Debug, Clone, Copy)]
pub struct CommonDefaults {
    /// Default `--sizes` (network-size exponents).
    pub sizes: &'static [u32],
    /// Default `--runs`.
    pub runs: usize,
    /// Default `--cycles`.
    pub cycles: u64,
    /// Default `--seed`.
    pub seed: u64,
}

impl Default for CommonDefaults {
    fn default() -> Self {
        CommonDefaults {
            sizes: &[12],
            runs: 3,
            cycles: 60,
            seed: 1,
        }
    }
}

/// The options shared by every experiment binary, parsed once by
/// [`Args::common`]:
///
/// * `--sizes a,b,c` / `--size n` — network-size exponents (the singular form
///   overrides the list with one entry, for the single-size binaries);
/// * `--runs`, `--cycles`, `--seed` — sweep shape;
/// * `--threads n` — worker threads (selects the parallel cycle engine);
/// * `--engine cycle|event` and `--latency min[,max]` — engine selection;
/// * `--out path` — output artifact path;
/// * `--quiet` — suppress progress output.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Network-size exponents to sweep (`N = 2^exponent`).
    pub sizes: Vec<u32>,
    /// Independent runs per configuration.
    pub runs: usize,
    /// Cycle budget per run.
    pub cycles: u64,
    /// Base random seed.
    pub seed: u64,
    /// Worker thread count (1 = sequential).
    pub threads: usize,
    /// The engine selection derived from `--engine`, `--threads`, `--latency`.
    pub engine: Engine,
    /// Output path for the binary's artifact, when given.
    pub out: Option<String>,
    /// Whether progress output is suppressed.
    pub quiet: bool,
}

impl CommonArgs {
    /// The first (often only) size exponent.
    pub fn size(&self) -> u32 {
        self.sizes.first().copied().unwrap_or(12)
    }
}

/// The usage text describing the shared options, appended to every binary's
/// `--help` output.
pub const COMMON_OPTIONS_HELP: &str = "\
SHARED OPTIONS:
    --seed <n>       base random seed
    --threads <n>    worker threads (parallel cycle engine; output is
                     bit-for-bit identical at any value)
    --engine <name>  cycle (default) or event (discrete-event engine with
                     per-link latency and timer-driven nodes)
    --latency <spec> event-engine latency in ms: one value for constant,
                     min,max for uniform                  [default: 1]
    --quiet          suppress progress output
";

impl Args {
    /// Parses the shared option set with the given per-binary defaults.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when a value cannot be parsed (same
    /// policy as [`Args::parsed_or`]).
    pub fn common(&self, defaults: CommonDefaults) -> CommonArgs {
        let sizes = match self.get("size") {
            Some(raw) => vec![raw
                .parse()
                .unwrap_or_else(|_| panic!("--size expects an exponent, got {raw:?}"))],
            None => self.u32_list_or("sizes", defaults.sizes),
        };
        let threads = self.parsed_or("threads", 1usize).max(1);
        let engine = match self.get("engine").unwrap_or("cycle") {
            "cycle" => Engine::with_threads(threads),
            "event" => Engine::Event {
                latency: self.latency_model(),
            },
            other => panic!("--engine expects cycle or event, got {other:?}"),
        };
        CommonArgs {
            sizes,
            runs: self.parsed_or("runs", defaults.runs),
            cycles: self.parsed_or("cycles", defaults.cycles),
            seed: self.parsed_or("seed", defaults.seed),
            threads,
            engine,
            out: self.get("out").map(str::to_owned),
            quiet: self.get("quiet").is_some(),
        }
    }

    /// Parses `--link` into a per-link latency model override, or `None` when
    /// absent (the engine's own latency model applies). Accepted specs:
    /// `constant:<ms>`, `uniform:<min>,<max>`, and `wan:<placement>` where
    /// placement is `plane`, `clustered[:<regions>]` (default 4) or
    /// `dumbbell` (see [`wan_placement`]).
    ///
    /// # Panics
    ///
    /// Panics with a readable message on a malformed spec.
    pub fn link_model_arg(&self) -> Option<LatencyModel> {
        let raw = self.get("link")?;
        let (kind, rest) = raw.split_once(':').unwrap_or((raw, ""));
        let model = match kind {
            "constant" => LatencyModel::Constant {
                millis: rest
                    .parse()
                    .unwrap_or_else(|_| panic!("--link constant:<ms>, got {raw:?}")),
            },
            "uniform" => {
                let (min, max) = rest
                    .split_once(',')
                    .unwrap_or_else(|| panic!("--link uniform:<min>,<max>, got {raw:?}"));
                LatencyModel::Uniform {
                    min_millis: min
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--link uniform:<min>,<max>, got {raw:?}")),
                    max_millis: max
                        .trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--link uniform:<min>,<max>, got {raw:?}")),
                }
            }
            "wan" => {
                let (placement, regions) = match rest.split_once(':') {
                    Some((placement, count)) => (
                        placement,
                        count.parse().unwrap_or_else(|_| {
                            panic!("--link wan:clustered:<regions>, got {raw:?}")
                        }),
                    ),
                    None => (if rest.is_empty() { "clustered" } else { rest }, 4),
                };
                LatencyModel::Wan {
                    placement: wan_placement(placement, regions),
                    params: WanParams::default(),
                }
            }
            other => panic!("--link expects constant, uniform or wan specs, got {other:?}"),
        };
        Some(model)
    }

    /// Parses `--latency` into a [`LatencyModel`]: a single value is a
    /// constant latency, `min,max` is uniform.
    pub fn latency_model(&self) -> LatencyModel {
        match self.get("latency") {
            None => LatencyModel::Constant { millis: 1 },
            Some(raw) => {
                let parts: Vec<u64> = raw
                    .split(',')
                    .filter(|piece| !piece.is_empty())
                    .map(|piece| {
                        piece.trim().parse().unwrap_or_else(|_| {
                            panic!("--latency expects ms values like 5 or 5,50, got {raw:?}")
                        })
                    })
                    .collect();
                match parts.as_slice() {
                    [millis] => LatencyModel::Constant { millis: *millis },
                    [min, max] => LatencyModel::Uniform {
                        min_millis: *min,
                        max_millis: *max,
                    },
                    _ => panic!("--latency expects one or two ms values, got {raw:?}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs_and_flags() {
        let parsed = args(&["--runs", "5", "--sizes", "10,12", "--verbose", "--seed=9"]);
        assert_eq!(parsed.parsed_or("runs", 0usize), 5);
        assert_eq!(parsed.u32_list_or("sizes", &[14]), vec![10, 12]);
        assert_eq!(parsed.get("verbose"), Some("true"));
        assert_eq!(parsed.parsed_or("seed", 0u64), 9);
        assert_eq!(parsed.parsed_or("missing", 7u64), 7);
        assert!(!parsed.wants_help());
    }

    #[test]
    fn help_flag_is_detected() {
        assert!(args(&["--help"]).wants_help());
        assert!(args(&["-h"]).wants_help());
        assert!(!args(&[]).wants_help());
    }

    #[test]
    fn trailing_flag_without_value_defaults_to_true() {
        let parsed = args(&["--fast"]);
        assert_eq!(parsed.get("fast"), Some("true"));
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn unparseable_values_panic_with_context() {
        let parsed = args(&["--runs", "many"]);
        let _ = parsed.parsed_or("runs", 0usize);
    }

    #[test]
    fn default_size_list_is_used_when_absent() {
        let parsed = args(&[]);
        assert_eq!(parsed.u32_list_or("sizes", &[10, 11]), vec![10, 11]);
    }

    #[test]
    fn common_args_apply_defaults_and_overrides() {
        let defaults = CommonDefaults {
            sizes: &[10, 12],
            runs: 3,
            cycles: 60,
            seed: 1,
        };
        let parsed = args(&[]).common(defaults);
        assert_eq!(parsed.sizes, vec![10, 12]);
        assert_eq!(parsed.runs, 3);
        assert_eq!(parsed.cycles, 60);
        assert_eq!(parsed.seed, 1);
        assert_eq!(parsed.threads, 1);
        assert_eq!(parsed.engine, Engine::Cycle);
        assert!(parsed.out.is_none());
        assert!(!parsed.quiet);
        assert_eq!(parsed.size(), 10);

        let parsed = args(&[
            "--sizes",
            "8,9",
            "--runs",
            "5",
            "--cycles",
            "40",
            "--seed",
            "7",
            "--threads",
            "4",
            "--out",
            "x.json",
            "--quiet",
        ])
        .common(defaults);
        assert_eq!(parsed.sizes, vec![8, 9]);
        assert_eq!(parsed.runs, 5);
        assert_eq!(parsed.engine, Engine::ParallelCycle { threads: 4 });
        assert_eq!(parsed.out.as_deref(), Some("x.json"));
        assert!(parsed.quiet);
    }

    #[test]
    fn singular_size_overrides_the_list() {
        let parsed = args(&["--size", "11"]).common(CommonDefaults::default());
        assert_eq!(parsed.sizes, vec![11]);
        assert_eq!(parsed.size(), 11);
    }

    #[test]
    fn engine_and_latency_flags_select_the_event_engine() {
        let parsed = args(&["--engine", "event"]).common(CommonDefaults::default());
        assert_eq!(
            parsed.engine,
            Engine::Event {
                latency: LatencyModel::Constant { millis: 1 }
            }
        );
        let parsed =
            args(&["--engine", "event", "--latency", "5,50"]).common(CommonDefaults::default());
        assert_eq!(
            parsed.engine,
            Engine::Event {
                latency: LatencyModel::Uniform {
                    min_millis: 5,
                    max_millis: 50
                }
            }
        );
        let parsed = args(&["--engine", "event", "--latency", "20"]);
        assert_eq!(
            parsed.latency_model(),
            LatencyModel::Constant { millis: 20 }
        );
    }

    #[test]
    #[should_panic(expected = "cycle or event")]
    fn unknown_engine_names_panic() {
        let _ = args(&["--engine", "quantum"]).common(CommonDefaults::default());
    }

    #[test]
    fn link_specs_parse_into_latency_models() {
        assert_eq!(args(&[]).link_model_arg(), None);
        assert_eq!(
            args(&["--link", "constant:7"]).link_model_arg(),
            Some(LatencyModel::Constant { millis: 7 })
        );
        assert_eq!(
            args(&["--link", "uniform:2,40"]).link_model_arg(),
            Some(LatencyModel::Uniform {
                min_millis: 2,
                max_millis: 40
            })
        );
        let wan = args(&["--link", "wan:clustered:6"])
            .link_model_arg()
            .unwrap();
        assert_eq!(wan.placement_spec(), Some(wan_placement("clustered", 6)));
        // Bare `wan` defaults to the four-region clustered placement.
        assert_eq!(
            args(&["--link", "wan"]).link_model_arg(),
            Some(LatencyModel::Wan {
                placement: wan_placement("clustered", 4),
                params: WanParams::default(),
            })
        );
        for name in ["plane", "dumbbell"] {
            assert!(wan_placement(name, 4).validate().is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "constant, uniform or wan")]
    fn unknown_link_specs_panic() {
        let _ = args(&["--link", "telepathy"]).link_model_arg();
    }
}
