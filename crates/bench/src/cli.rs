//! A minimal command-line argument parser for the experiment binaries.
//!
//! The binaries only need `--flag value` pairs and `--help`; pulling in a full
//! argument-parsing dependency for that would violate the project's
//! minimal-dependency policy, so this module implements exactly what is needed.

use std::collections::BTreeMap;

/// Parsed `--key value` arguments.
#[derive(Debug, Default, Clone)]
pub struct Args {
    values: BTreeMap<String, String>,
    help: bool,
}

impl Args {
    /// Parses the process arguments (everything after the binary name).
    pub fn from_env() -> Self {
        Self::parse_args(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn parse_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut values = BTreeMap::new();
        let mut help = false;
        let mut iterator = args.into_iter().peekable();
        while let Some(argument) = iterator.next() {
            if argument == "--help" || argument == "-h" {
                help = true;
                continue;
            }
            if let Some(key) = argument.strip_prefix("--") {
                if let Some((key, value)) = key.split_once('=') {
                    values.insert(key.to_owned(), value.to_owned());
                } else if let Some(value) = iterator.peek() {
                    if value.starts_with("--") {
                        values.insert(key.to_owned(), String::from("true"));
                    } else {
                        values.insert(key.to_owned(), iterator.next().expect("peeked"));
                    }
                } else {
                    values.insert(key.to_owned(), String::from("true"));
                }
            }
        }
        Args { values, help }
    }

    /// Whether `--help` was requested.
    pub fn wants_help(&self) -> bool {
        self.help
    }

    /// The raw value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// A parsed value of `--key`, or `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics with a readable message when the value cannot be parsed.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                panic!("--{key} expects a value like the default, got {raw:?}")
            }),
        }
    }

    /// A comma-separated list of `u32` exponents (e.g. `--sizes 10,12,14`), or
    /// `default` when absent.
    ///
    /// # Panics
    ///
    /// Panics when an element cannot be parsed.
    pub fn u32_list_or(&self, key: &str, default: &[u32]) -> Vec<u32> {
        match self.get(key) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .filter(|piece| !piece.is_empty())
                .map(|piece| {
                    piece.trim().parse().unwrap_or_else(|_| {
                        panic!("--{key} expects comma-separated integers, got {piece:?}")
                    })
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::parse_args(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_key_value_pairs_and_flags() {
        let parsed = args(&["--runs", "5", "--sizes", "10,12", "--verbose", "--seed=9"]);
        assert_eq!(parsed.parsed_or("runs", 0usize), 5);
        assert_eq!(parsed.u32_list_or("sizes", &[14]), vec![10, 12]);
        assert_eq!(parsed.get("verbose"), Some("true"));
        assert_eq!(parsed.parsed_or("seed", 0u64), 9);
        assert_eq!(parsed.parsed_or("missing", 7u64), 7);
        assert!(!parsed.wants_help());
    }

    #[test]
    fn help_flag_is_detected() {
        assert!(args(&["--help"]).wants_help());
        assert!(args(&["-h"]).wants_help());
        assert!(!args(&[]).wants_help());
    }

    #[test]
    fn trailing_flag_without_value_defaults_to_true() {
        let parsed = args(&["--fast"]);
        assert_eq!(parsed.get("fast"), Some("true"));
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn unparseable_values_panic_with_context() {
        let parsed = args(&["--runs", "many"]);
        let _ = parsed.parsed_or("runs", 0usize);
    }

    #[test]
    fn default_size_list_is_used_when_absent() {
        let parsed = args(&[]);
        assert_eq!(parsed.u32_list_or("sizes", &[10, 11]), vec![10, 11]);
    }
}
