//! Drivers for the paper's figure sweeps.
//!
//! A figure in the paper is a family of curves: one per network size, each the
//! per-cycle proportion of missing entries, with several independent repetitions
//! per size (50/10/4 runs for 2^14/2^16/2^18). [`run_figure`] executes that sweep
//! for an arbitrary base configuration and returns, per size, the individual runs
//! and their mean curve, which the binaries print as tab-separated series.

use bss_core::experiment::{Experiment, ExperimentConfig};
use bss_util::stats::{Series, SeriesBundle};
use std::time::Instant;

/// Description of one figure sweep.
#[derive(Debug, Clone)]
pub struct FigureConfig {
    /// Exponents of the network sizes to run (`12` means `N = 2^12`).
    pub size_exponents: Vec<u32>,
    /// Number of independent repetitions per size.
    pub runs_per_size: usize,
    /// Base experiment configuration; network size and seed are overridden per run.
    pub base: ExperimentConfig,
    /// Base seed; run `r` of size exponent `e` uses `base_seed + 1000 * e + r`.
    pub base_seed: u64,
}

/// The recorded curves for one network size.
#[derive(Debug, Clone)]
pub struct SizeSeries {
    /// The size exponent (network size is `2^exponent`).
    pub exponent: u32,
    /// Per-run missing-leaf-set-proportion series.
    pub leaf_runs: SeriesBundle,
    /// Per-run missing-prefix-table-proportion series.
    pub prefix_runs: SeriesBundle,
    /// Convergence cycle of each run that converged.
    pub convergence_cycles: Vec<u64>,
    /// Mean message size (descriptors per message) over all runs.
    pub mean_message_size: f64,
    /// Wall-clock seconds spent simulating this size.
    pub elapsed_seconds: f64,
}

/// The complete result of a figure sweep.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// One entry per requested size, in input order.
    pub sizes: Vec<SizeSeries>,
}

/// Runs the sweep described by `config`, calling `progress` after every completed
/// run (useful for long sweeps).
pub fn run_figure(config: &FigureConfig, mut progress: impl FnMut(u32, usize)) -> FigureResult {
    let mut sizes = Vec::with_capacity(config.size_exponents.len());
    for &exponent in &config.size_exponents {
        let started = Instant::now();
        let mut leaf_runs = SeriesBundle::new();
        let mut prefix_runs = SeriesBundle::new();
        let mut convergence_cycles = Vec::new();
        let mut message_size_sum = 0.0;
        for run in 0..config.runs_per_size {
            // The base carries everything — scenario timeline, engine
            // selection, protocol parameters — and the sweep only overrides
            // the network size and the per-run seed.
            let experiment_config = {
                let mut experiment_config = config.base.clone();
                experiment_config.network_size = 1usize << exponent;
                experiment_config.seed = config.base_seed + 1000 * u64::from(exponent) + run as u64;
                experiment_config
                    .validate()
                    .expect("figure sweep configuration is valid");
                experiment_config
            };
            let outcome = Experiment::new(experiment_config).run();
            if let Some(cycle) = outcome.convergence_cycle() {
                convergence_cycles.push(cycle);
            }
            message_size_sum += outcome.traffic().mean_message_size();
            leaf_runs.push(outcome.leaf_series().clone());
            prefix_runs.push(outcome.prefix_series().clone());
            progress(exponent, run);
        }
        sizes.push(SizeSeries {
            exponent,
            leaf_runs,
            prefix_runs,
            convergence_cycles,
            mean_message_size: message_size_sum / config.runs_per_size.max(1) as f64,
            elapsed_seconds: started.elapsed().as_secs_f64(),
        });
    }
    FigureResult { sizes }
}

impl SizeSeries {
    /// Mean convergence cycle over the runs that converged, if any did.
    pub fn mean_convergence_cycle(&self) -> Option<f64> {
        if self.convergence_cycles.is_empty() {
            None
        } else {
            Some(
                self.convergence_cycles.iter().sum::<u64>() as f64
                    / self.convergence_cycles.len() as f64,
            )
        }
    }

    /// Mean leaf-set curve across runs.
    pub fn mean_leaf_curve(&self) -> Series {
        self.leaf_runs.mean_per_cycle()
    }

    /// Mean prefix-table curve across runs.
    pub fn mean_prefix_curve(&self) -> Series {
        self.prefix_runs.mean_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_every_size_and_repetition() {
        let config = FigureConfig {
            size_exponents: vec![6, 7],
            runs_per_size: 2,
            base: ExperimentConfig::builder().max_cycles(60).build().unwrap(),
            base_seed: 5,
        };
        let mut calls = 0;
        let result = run_figure(&config, |_, _| calls += 1);
        assert_eq!(calls, 4);
        assert_eq!(result.sizes.len(), 2);
        for (position, size) in result.sizes.iter().enumerate() {
            assert_eq!(size.exponent, config.size_exponents[position]);
            assert_eq!(size.leaf_runs.len(), 2);
            assert_eq!(size.prefix_runs.len(), 2);
            assert_eq!(size.convergence_cycles.len(), 2, "all runs converge");
            assert!(size.mean_convergence_cycle().unwrap() > 0.0);
            assert!(size.mean_message_size > 0.0);
            assert!(size.elapsed_seconds >= 0.0);
            assert!(!size.mean_leaf_curve().is_empty());
            assert!(!size.mean_prefix_curve().is_empty());
            assert_eq!(size.mean_leaf_curve().final_value(), Some(0.0));
        }
    }

    #[test]
    fn larger_networks_take_more_cycles_but_only_logarithmically_more() {
        let config = FigureConfig {
            size_exponents: vec![6, 8],
            runs_per_size: 2,
            base: ExperimentConfig::builder().max_cycles(80).build().unwrap(),
            base_seed: 11,
        };
        let result = run_figure(&config, |_, _| {});
        let small = result.sizes[0].mean_convergence_cycle().unwrap();
        let large = result.sizes[1].mean_convergence_cycle().unwrap();
        assert!(
            large >= small,
            "a 4x larger network should not converge faster on average ({small} vs {large})"
        );
        assert!(
            large <= small + 12.0,
            "convergence should grow by an additive constant, not multiplicatively ({small} vs {large})"
        );
    }
}
