//! # bss-bench — the experiment and benchmark harness
//!
//! One binary per figure or claim of the paper's evaluation (§5), plus Criterion
//! micro/macro benchmarks:
//!
//! | Binary        | Reproduces |
//! |---------------|------------|
//! | `fig3`        | Figure 3: missing leaf-set and prefix-table entries vs. cycles, no failures, N ∈ {2^14, 2^16, 2^18} |
//! | `fig4`        | Figure 4: the same two panels with 20 % uniform message loss |
//! | `churn`       | §5's churn claim: table quality under continuous replacement churn |
//! | `merge_split` | §1–2 scenarios: two partitions bootstrapping independently, then merging |
//! | `ablation`    | Design-choice ablations: `cr`, `c`, sampler quality, prefix-table feedback |
//!
//! Every binary accepts `--help`, prints tab-separated series identical in shape to
//! the paper's plots, and defaults to laptop-sized networks (the paper's full
//! 2^14–2^18 sizes are available through `--sizes`).
//!
//! The library part of the crate holds what the binaries share: a tiny
//! dependency-free command-line parser ([`cli`]), figure-sweep drivers
//! ([`figures`]), tab-separated report formatting ([`report`]) and a counting
//! global allocator for honest per-run memory measurement ([`alloc`]).

// `deny` instead of `forbid`: the counting allocator wraps `System` behind
// one audited `unsafe impl` (see `alloc`); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod cli;
pub mod figures;
pub mod report;

pub use figures::{FigureConfig, FigureResult, SizeSeries};
