//! Tab-separated report formatting shared by the experiment binaries.
//!
//! The output mirrors the paper's figures: one row per cycle, one column per
//! network size, values being the proportion of missing entries (leaf set or
//! prefix table). The format loads directly into gnuplot, matplotlib or a
//! spreadsheet.

use crate::figures::FigureResult;
use bss_util::stats::Series;
use std::fmt::Write as _;

/// Renders one panel (leaf set or prefix table) of a figure as a tab-separated
/// table: `cycle <TAB> N=2^a <TAB> N=2^b ...`. Converged runs hold their final
/// value (zero) once their curve ends, matching how the paper draws curves that
/// simply stop at perfection.
pub fn panel_table(result: &FigureResult, prefix_panel: bool) -> String {
    let curves: Vec<(u32, Series)> = result
        .sizes
        .iter()
        .map(|size| {
            let curve = if prefix_panel {
                size.mean_prefix_curve()
            } else {
                size.mean_leaf_curve()
            };
            (size.exponent, curve)
        })
        .collect();
    let max_cycle = curves
        .iter()
        .filter_map(|(_, curve)| curve.final_cycle())
        .max()
        .unwrap_or(0);

    let mut output = String::new();
    output.push_str("cycle");
    for (exponent, _) in &curves {
        let _ = write!(output, "\tN=2^{exponent}");
    }
    output.push('\n');
    for cycle in 0..=max_cycle {
        let _ = write!(output, "{cycle}");
        for (_, curve) in &curves {
            let value = curve
                .value_at(cycle)
                .or_else(|| {
                    curve
                        .final_cycle()
                        .filter(|&final_cycle| final_cycle < cycle)
                        .and_then(|_| curve.final_value())
                })
                .unwrap_or(f64::NAN);
            let _ = write!(output, "\t{value:.3e}");
        }
        output.push('\n');
    }
    output
}

/// Renders the per-size summary table: convergence cycles, message sizes, wall
/// clock.
pub fn summary_table(result: &FigureResult) -> String {
    let mut output =
        String::from("size\truns\tmean_convergence_cycle\tmean_message_size\telapsed_seconds\n");
    for size in &result.sizes {
        let _ = writeln!(
            output,
            "2^{}\t{}\t{}\t{:.1}\t{:.2}",
            size.exponent,
            size.leaf_runs.len(),
            size.mean_convergence_cycle()
                .map(|cycle| format!("{cycle:.1}"))
                .unwrap_or_else(|| "not converged".to_owned()),
            size.mean_message_size,
            size.elapsed_seconds
        );
    }
    output
}

/// Renders a generic named-series table (used by the churn and ablation sweeps):
/// `cycle <TAB> <name-1> <TAB> <name-2> ...`.
pub fn series_table(columns: &[(String, Series)]) -> String {
    let max_cycle = columns
        .iter()
        .filter_map(|(_, series)| series.final_cycle())
        .max()
        .unwrap_or(0);
    let mut output = String::from("cycle");
    for (name, _) in columns {
        let _ = write!(output, "\t{name}");
    }
    output.push('\n');
    for cycle in 0..=max_cycle {
        let _ = write!(output, "{cycle}");
        for (_, series) in columns {
            let value = series
                .value_at(cycle)
                .or_else(|| {
                    series
                        .final_cycle()
                        .filter(|&final_cycle| final_cycle < cycle)
                        .and_then(|_| series.final_value())
                })
                .unwrap_or(f64::NAN);
            let _ = write!(output, "\t{value:.3e}");
        }
        output.push('\n');
    }
    output
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{run_figure, FigureConfig};
    use bss_core::experiment::ExperimentConfig;

    fn tiny_result() -> FigureResult {
        run_figure(
            &FigureConfig {
                size_exponents: vec![5, 6],
                runs_per_size: 1,
                base: ExperimentConfig::builder().max_cycles(50).build().unwrap(),
                base_seed: 3,
            },
            |_, _| {},
        )
    }

    #[test]
    fn panel_tables_have_one_column_per_size_and_cover_all_cycles() {
        let result = tiny_result();
        for prefix_panel in [false, true] {
            let table = panel_table(&result, prefix_panel);
            let mut lines = table.lines();
            let header = lines.next().unwrap();
            assert_eq!(header, "cycle\tN=2^5\tN=2^6");
            let rows: Vec<&str> = lines.collect();
            assert!(!rows.is_empty());
            for row in &rows {
                assert_eq!(row.split('\t').count(), 3);
            }
            // The last row of every column is zero (converged).
            let last = rows.last().unwrap();
            for value in last.split('\t').skip(1) {
                assert_eq!(value.parse::<f64>().unwrap(), 0.0);
            }
        }
    }

    #[test]
    fn summary_table_lists_every_size() {
        let result = tiny_result();
        let summary = summary_table(&result);
        assert!(summary.contains("2^5"));
        assert!(summary.contains("2^6"));
        assert!(summary.lines().count() == 3);
    }

    #[test]
    fn series_table_renders_named_columns() {
        let mut a = Series::new("a");
        a.push(0, 1.0);
        a.push(1, 0.5);
        let mut b = Series::new("b");
        b.push(0, 0.25);
        let table = series_table(&[("churn=1%".into(), a), ("churn=5%".into(), b)]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines[0], "cycle\tchurn=1%\tchurn=5%");
        assert_eq!(lines.len(), 3);
        // Column b holds its final value at cycle 1.
        assert!(lines[2].starts_with('1'));
        assert!(lines[2].contains("2.500e-1"));
    }
}
