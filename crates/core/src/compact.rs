//! Packed per-node storage: the memory layer behind million-node runs.
//!
//! A fat [`BootstrapNode`] stores every descriptor as 24 bytes (identifier,
//! address, timestamp) and owns a 4-byte-per-slot offset table, which puts a
//! converged node at several kilobytes — the memory wall that used to cap the
//! scaling benchmark. [`CompactNode`] stores the same information as 8-byte
//! [`PackedDescriptor`]s (a `u32` registry index plus a `u32` timestamp) and
//! `u16` offsets; the 64-bit identifiers are recovered on demand from one
//! shared index→identifier arena maintained by the protocol (the registry
//! never reuses or reorders indices, so `ids[index]` is immutable once
//! written).
//!
//! The pack/unpack round-trip is lossless for every state the simulation can
//! reach. Honest descriptors are always built through the network registry, so
//! their identifier is a pure function of the index and costs nothing to
//! store; timestamps are cycle numbers, far below `u32::MAX`. The one state a
//! registry lookup cannot reproduce is a *forged* descriptor absorbed from a
//! Byzantine peer, whose advertised identifier deliberately disagrees with the
//! registry entry for its address — those survive the round-trip through a
//! sparse per-table alias list that is empty on honest runs. The hot path
//! therefore rehydrates a node into a scratch [`BootstrapNode`], runs the
//! unchanged fat algorithms, and packs the result back — byte-identical
//! behaviour at a third of the memory.

use crate::node::BootstrapNode;
use bss_sim::network::NodeIndex;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::{Descriptor, PackedDescriptor};
use bss_util::id::NodeId;

/// Packs a simulation descriptor down to its registry index and timestamp.
/// The identifier is deliberately dropped: for every registry-minted
/// descriptor it is recoverable from the shared arena. Advertised identifiers
/// that disagree with the registry (forged descriptors) are preserved
/// separately by [`CompactNode`]'s alias lists.
#[inline]
pub fn pack_descriptor(descriptor: &Descriptor<NodeIndex>) -> PackedDescriptor {
    PackedDescriptor::new(descriptor.address().raw(), descriptor.timestamp())
}

/// Rehydrates a packed descriptor using the shared index→identifier arena.
#[inline]
pub fn unpack_descriptor(packed: PackedDescriptor, ids: &[NodeId]) -> Descriptor<NodeIndex> {
    Descriptor::new(
        ids[packed.address() as usize],
        NodeIndex::new(packed.address()),
        packed.timestamp(),
    )
}

/// An advertised identifier that disagrees with the registry entry for its
/// address: the entry's position within its table plus the identifier the
/// descriptor actually carried. Honest tables have none of these.
type Alias = (u16, NodeId);

/// Packs a run of fat entries, recording an alias for every descriptor whose
/// advertised identifier is not the registry identifier of its address.
fn pack_entries(
    entries: &[Descriptor<NodeIndex>],
    ids: &[NodeId],
    packed: &mut Vec<PackedDescriptor>,
    aliases: &mut Vec<Alias>,
) {
    packed.clear();
    aliases.clear();
    for (position, descriptor) in entries.iter().enumerate() {
        packed.push(pack_descriptor(descriptor));
        if ids[descriptor.address().as_usize()] != descriptor.id() {
            aliases.push((position as u16, descriptor.id()));
        }
    }
}

/// Rehydrates a run of packed entries, substituting the advertised identifier
/// wherever an alias was recorded. Aliases are stored in ascending position
/// order, so a single cursor keeps the honest fast path alias-free.
fn unpack_entries<'a>(
    entries: &'a [PackedDescriptor],
    aliases: &'a [Alias],
    ids: &'a [NodeId],
) -> impl Iterator<Item = Descriptor<NodeIndex>> + 'a {
    let mut pending = aliases.iter().copied().peekable();
    entries.iter().enumerate().map(move |(position, &p)| {
        let descriptor = unpack_descriptor(p, ids);
        match pending.peek() {
            Some(&(alias_position, advertised)) if usize::from(alias_position) == position => {
                pending.next();
                Descriptor::new(advertised, descriptor.address(), descriptor.timestamp())
            }
            _ => descriptor,
        }
    })
}

/// One node's bootstrap state in packed form: the exact content of a
/// [`BootstrapNode`] minus everything recoverable from shared context (the
/// parameters, the geometry, and the identifiers behind each index).
#[derive(Debug, Clone, Default)]
pub struct CompactNode {
    /// The own descriptor's timestamp (its index is the slot, its identifier
    /// lives in the shared arena).
    own_timestamp: u32,
    /// Number of successors at the front of `leaf`.
    leaf_split: u16,
    exchanges_initiated: u64,
    descriptors_received: u64,
    /// Leaf-set entries: successors first, then predecessors.
    leaf: Vec<PackedDescriptor>,
    /// Prefix-table arena in slot order.
    prefix_store: Vec<PackedDescriptor>,
    /// Per-slot start offsets into `prefix_store` (`rows * columns + 1` of
    /// them; a full table stays far below `u16::MAX` entries).
    prefix_offsets: Vec<u16>,
    /// Leaf entries whose advertised identifier disagrees with the registry
    /// (forged descriptors absorbed from an adversary), in ascending position
    /// order. Empty on honest runs, so honest storage stays eight bytes per
    /// entry and honest rehydration never consults it.
    leaf_aliases: Vec<Alias>,
    /// The prefix-table counterpart of `leaf_aliases`.
    prefix_aliases: Vec<Alias>,
}

impl CompactNode {
    /// Packs a fat node state. `ids` is the shared index→identifier arena,
    /// consulted to detect advertised identifiers the registry cannot
    /// reproduce.
    pub fn pack(state: &BootstrapNode<NodeIndex>, ids: &[NodeId]) -> CompactNode {
        let mut packed = CompactNode::default();
        packed.repack_from(state, ids);
        packed
    }

    /// Packs a fat node state into `self`, reusing the existing allocations
    /// (the repack half of the hot path's rehydrate → mutate → repack cycle).
    pub fn repack_from(&mut self, state: &BootstrapNode<NodeIndex>, ids: &[NodeId]) {
        let own = state.own_descriptor();
        debug_assert!(own.timestamp() <= u64::from(u32::MAX));
        self.own_timestamp = own.timestamp() as u32;
        self.exchanges_initiated = state.exchanges_initiated();
        self.descriptors_received = state.descriptors_received();

        let (leaf_entries, split) = state.leaf_set().raw_parts();
        debug_assert!(split <= usize::from(u16::MAX));
        self.leaf_split = split as u16;
        pack_entries(leaf_entries, ids, &mut self.leaf, &mut self.leaf_aliases);

        let (prefix_entries, offsets) = state.prefix_table().raw_parts();
        debug_assert!(prefix_entries.len() <= usize::from(u16::MAX));
        pack_entries(
            prefix_entries,
            ids,
            &mut self.prefix_store,
            &mut self.prefix_aliases,
        );
        self.prefix_offsets.clear();
        self.prefix_offsets
            .extend(offsets.iter().map(|&offset| offset as u16));
    }

    /// Rehydrates into a scratch fat node, reusing its allocations. The
    /// scratch must have been constructed with the same parameters the packed
    /// state was built under (the protocol guarantees this: one parameter set
    /// per run).
    pub fn unpack_into(
        &self,
        node: NodeIndex,
        ids: &[NodeId],
        scratch: &mut BootstrapNode<NodeIndex>,
    ) {
        let own_id = ids[node.as_usize()];
        let own = Descriptor::new(own_id, node, u64::from(self.own_timestamp));
        scratch.restore_header(own, self.exchanges_initiated, self.descriptors_received);
        scratch.leaf_set_mut().restore_from(
            own_id,
            unpack_entries(&self.leaf, &self.leaf_aliases, ids),
            usize::from(self.leaf_split),
        );
        scratch.prefix_table_mut().restore_from(
            own_id,
            unpack_entries(&self.prefix_store, &self.prefix_aliases, ids),
            self.prefix_offsets.iter().map(|&offset| u32::from(offset)),
        );
    }

    /// Rehydrates into a freshly allocated fat node (the materialising
    /// accessor path — diagnostics, snapshots and tests; hot paths use
    /// [`CompactNode::unpack_into`] with a reused scratch).
    pub fn unpack(
        &self,
        node: NodeIndex,
        ids: &[NodeId],
        params: &BootstrapParams,
    ) -> BootstrapNode<NodeIndex> {
        let own = Descriptor::new(ids[node.as_usize()], node, u64::from(self.own_timestamp));
        let mut state = BootstrapNode::new(own, params).expect("parameters validated by caller");
        self.unpack_into(node, ids, &mut state);
        state
    }

    /// The packed leaf-set entries (successors first, then predecessors) —
    /// for walks that only need indices and timestamps, no rehydration.
    pub fn leaf_entries(&self) -> &[PackedDescriptor] {
        &self.leaf
    }

    /// The leaf-set entries as full descriptors, advertised identifiers
    /// included — what `SELECTPEER` ranks over without rehydrating the whole
    /// node. Identical to mapping [`unpack_descriptor`] over
    /// [`CompactNode::leaf_entries`] on honest state; on adversarial state it
    /// additionally reproduces forged identifiers.
    pub fn leaf_descriptors<'a>(
        &'a self,
        ids: &'a [NodeId],
    ) -> impl Iterator<Item = Descriptor<NodeIndex>> + 'a {
        unpack_entries(&self.leaf, &self.leaf_aliases, ids)
    }

    /// The packed prefix-table entries in slot order.
    pub fn prefix_entries(&self) -> &[PackedDescriptor] {
        &self.prefix_store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_sim::network::Network;
    use bss_util::rng::SimRng;

    fn params() -> BootstrapParams {
        BootstrapParams {
            leaf_set_size: 8,
            random_samples: 8,
            ..BootstrapParams::paper_default()
        }
    }

    fn scratch_node(params: &BootstrapParams) -> BootstrapNode<NodeIndex> {
        let placeholder = Descriptor::new(NodeId::new(0), NodeIndex::new(0), 0);
        BootstrapNode::new(placeholder, params).unwrap()
    }

    /// Drives a fat node through random receive batches and checks that
    /// pack → unpack reproduces every observable bit of its state.
    #[test]
    fn pack_unpack_round_trips_reachable_states() {
        let mut rng = SimRng::seed_from(11);
        let network = Network::with_random_ids(64, &mut rng);
        let mut ids: Vec<NodeId> = Vec::new();
        network.sync_id_arena(&mut ids);
        let params = params();

        let node = NodeIndex::new(3);
        let mut state = BootstrapNode::new(network.descriptor(node, 0), &params).unwrap();
        let mut scratch = scratch_node(&params);
        for cycle in 0..40u64 {
            let batch: Vec<Descriptor<NodeIndex>> = (0..5)
                .map(|_| {
                    let target = NodeIndex::new(rng.range_u64(0, 64) as u32);
                    network.descriptor(target, cycle)
                })
                .collect();
            state.receive(&batch);
            let _ = state.create_message(ids[7], &batch, true);

            let packed = CompactNode::pack(&state, &ids);
            packed.unpack_into(node, &ids, &mut scratch);
            assert_eq!(scratch.own_descriptor(), state.own_descriptor());
            assert_eq!(scratch.exchanges_initiated(), state.exchanges_initiated());
            assert_eq!(scratch.descriptors_received(), state.descriptors_received());
            assert_eq!(scratch.leaf_set().to_vec(), state.leaf_set().to_vec());
            assert_eq!(
                scratch.leaf_set().successors().len(),
                state.leaf_set().successors().len()
            );
            assert_eq!(
                scratch.prefix_table().to_vec(),
                state.prefix_table().to_vec()
            );
            for row in 0..state.geometry().rows() {
                for column in 0..state.geometry().columns() as u8 {
                    assert_eq!(
                        scratch.prefix_table().slot(row, column),
                        state.prefix_table().slot(row, column),
                        "slot ({row}, {column}) differs after round-trip"
                    );
                }
            }
        }
    }

    mod packed_equivalence {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Packed storage is observation-equivalent to the fat path on
            /// arbitrary reachable states: whatever sequence of descriptor
            /// batches a node absorbs, packing it and rehydrating reproduces
            /// the exact tables, counters and per-slot structure.
            #[test]
            fn pack_unpack_is_lossless_on_arbitrary_receive_sequences(
                network_seed in any::<u64>(),
                network_size in 8u32..128,
                node_raw in 0u32..8,
                batches in prop::collection::vec(
                    prop::collection::vec((0u32..128, 0u64..1000), 1..8),
                    1..12,
                ),
            ) {
                let mut rng = SimRng::seed_from(network_seed);
                let network = Network::with_random_ids(network_size as usize, &mut rng);
                let mut ids: Vec<NodeId> = Vec::new();
                network.sync_id_arena(&mut ids);
                let params = params();
                let node = NodeIndex::new(node_raw % network_size);
                let mut state =
                    BootstrapNode::new(network.descriptor(node, 0), &params).unwrap();
                let mut scratch = scratch_node(&params);
                for batch in &batches {
                    let descriptors: Vec<Descriptor<NodeIndex>> = batch
                        .iter()
                        .map(|&(target, timestamp)| {
                            network.descriptor(
                                NodeIndex::new(target % network_size),
                                timestamp,
                            )
                        })
                        .collect();
                    state.receive(&descriptors);

                    let packed = CompactNode::pack(&state, &ids);
                    packed.unpack_into(node, &ids, &mut scratch);
                    prop_assert_eq!(scratch.own_descriptor(), state.own_descriptor());
                    prop_assert_eq!(
                        scratch.exchanges_initiated(),
                        state.exchanges_initiated()
                    );
                    prop_assert_eq!(
                        scratch.descriptors_received(),
                        state.descriptors_received()
                    );
                    prop_assert_eq!(scratch.leaf_set().to_vec(), state.leaf_set().to_vec());
                    prop_assert_eq!(
                        scratch.leaf_set().successors().len(),
                        state.leaf_set().successors().len()
                    );
                    prop_assert_eq!(
                        scratch.prefix_table().to_vec(),
                        state.prefix_table().to_vec()
                    );
                    for row in 0..state.geometry().rows() {
                        for column in 0..state.geometry().columns() as u8 {
                            prop_assert_eq!(
                                scratch.prefix_table().slot(row, column),
                                state.prefix_table().slot(row, column),
                                "slot ({}, {}) differs after round-trip",
                                row,
                                column
                            );
                        }
                    }
                }
            }
        }
    }

    /// Forged descriptors — advertised identifiers the registry cannot
    /// reproduce from the address — must survive the round-trip bit-for-bit:
    /// the live lookup router's authenticity check (advertised id versus the
    /// id the contacted node actually holds) is only meaningful if packing
    /// does not quietly launder forgeries back into genuine identifiers.
    #[test]
    fn pack_unpack_preserves_forged_identifiers() {
        let mut rng = SimRng::seed_from(13);
        let network = Network::with_random_ids(32, &mut rng);
        let mut ids: Vec<NodeId> = Vec::new();
        network.sync_id_arena(&mut ids);
        let params = params();
        let node = NodeIndex::new(2);
        let mut state = BootstrapNode::new(network.descriptor(node, 0), &params).unwrap();

        // A mix of honest descriptors and forgeries pointing at node 9's
        // address under identifiers minted to crowd the victim's vicinity.
        let victim = ids[2];
        let mut batch: Vec<Descriptor<NodeIndex>> = (0..8u32)
            .filter(|&raw| raw != 2)
            .map(|raw| network.descriptor(NodeIndex::new(raw), 1))
            .collect();
        for offset in 1..=4u64 {
            batch.push(Descriptor::new(
                NodeId::new(victim.raw().wrapping_add(offset)),
                NodeIndex::new(9),
                2,
            ));
        }
        state.receive(&batch);
        let forged_kept = state
            .leaf_set()
            .iter()
            .filter(|d| ids[d.address().as_usize()] != d.id())
            .count();
        assert!(forged_kept > 0, "the merge must have absorbed a forgery");

        let packed = CompactNode::pack(&state, &ids);
        let mut scratch = scratch_node(&params);
        packed.unpack_into(node, &ids, &mut scratch);
        assert_eq!(scratch.leaf_set().to_vec(), state.leaf_set().to_vec());
        assert_eq!(
            scratch.prefix_table().to_vec(),
            state.prefix_table().to_vec()
        );
        let rehydrated: Vec<_> = packed.leaf_descriptors(&ids).collect();
        assert_eq!(rehydrated, state.leaf_set().raw_parts().0.to_vec());
    }

    #[test]
    fn unpack_allocating_matches_unpack_into() {
        let mut rng = SimRng::seed_from(12);
        let network = Network::with_random_ids(16, &mut rng);
        let mut ids: Vec<NodeId> = Vec::new();
        network.sync_id_arena(&mut ids);
        let params = params();
        let node = NodeIndex::new(5);
        let mut state = BootstrapNode::new(network.descriptor(node, 2), &params).unwrap();
        let contacts: Vec<Descriptor<NodeIndex>> = (0..16u32)
            .filter(|&raw| raw != 5)
            .map(|raw| network.descriptor(NodeIndex::new(raw), 1))
            .collect();
        state.receive(&contacts);

        let packed = CompactNode::pack(&state, &ids);
        let fresh = packed.unpack(node, &ids, &params);
        let mut reused = scratch_node(&params);
        packed.unpack_into(node, &ids, &mut reused);
        assert_eq!(fresh.own_descriptor(), reused.own_descriptor());
        assert_eq!(fresh.leaf_set().to_vec(), reused.leaf_set().to_vec());
        assert_eq!(
            fresh.prefix_table().to_vec(),
            reused.prefix_table().to_vec()
        );
        assert_eq!(packed.leaf_entries().len(), state.leaf_set().len());
        assert_eq!(packed.prefix_entries().len(), state.prefix_table().len());
    }
}
