//! The convergence oracle: what would *perfect* tables look like?
//!
//! Whether a node's leaf set and prefix table are perfect "cannot be decided
//! locally" (§5) — it depends on the actual set of identifiers present in the
//! network. The [`ConvergenceOracle`] is given that global set and computes, for
//! any node:
//!
//! * the **perfect leaf set** — the `c/2` identifiers immediately following and the
//!   `c/2` immediately preceding the node on the sorted ring (or simply all other
//!   nodes when the network is smaller than `c + 1`), and
//! * the number of **fillable prefix-table slots** — for every `(row, column)`
//!   slot, `min(k, number of live identifiers with that prefix relation)`; "the
//!   entries may be less than k if there are not enough node IDs with the desired
//!   prefix and digit among the participating nodes" (§4).
//!
//! The per-cycle quantity plotted in Figures 3 and 4 — the proportion of missing
//! leaf-set and prefix-table entries over all nodes — is computed by comparing each
//! node's current state against these targets.

use crate::node::BootstrapNode;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Address;
use bss_util::geometry::TableGeometry;
use bss_util::id::NodeId;
use std::collections::HashSet;

/// Global knowledge of the live identifier set, able to judge any node's tables.
#[derive(Debug, Clone)]
pub struct ConvergenceOracle {
    sorted_ids: Vec<NodeId>,
    geometry: TableGeometry,
    leaf_set_size: usize,
    entries_per_slot: usize,
}

/// Missing/total counts for one node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeConvergence {
    /// Perfect leaf-set entries the node does not yet have.
    pub leaf_missing: usize,
    /// Size of the node's perfect leaf set.
    pub leaf_total: usize,
    /// Fillable prefix-table entries the node does not yet have.
    pub prefix_missing: usize,
    /// Number of fillable prefix-table entries for this node.
    pub prefix_total: usize,
}

/// Missing/total counts aggregated over a whole network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkConvergence {
    /// Sum of [`NodeConvergence::leaf_missing`] over all measured nodes.
    pub leaf_missing: usize,
    /// Sum of [`NodeConvergence::leaf_total`] over all measured nodes.
    pub leaf_total: usize,
    /// Sum of [`NodeConvergence::prefix_missing`] over all measured nodes.
    pub prefix_missing: usize,
    /// Sum of [`NodeConvergence::prefix_total`] over all measured nodes.
    pub prefix_total: usize,
}

impl NetworkConvergence {
    /// Adds one node's counts to the aggregate.
    pub fn accumulate(&mut self, node: NodeConvergence) {
        self.leaf_missing += node.leaf_missing;
        self.leaf_total += node.leaf_total;
        self.prefix_missing += node.prefix_missing;
        self.prefix_total += node.prefix_total;
    }

    /// Removes one node's previously accumulated counts from the aggregate (the
    /// inverse of [`NetworkConvergence::accumulate`], used by the incremental
    /// tracker when a node's cached measurement is replaced).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `node` was never accumulated, i.e. the
    /// subtraction would underflow.
    pub fn retract(&mut self, node: NodeConvergence) {
        debug_assert!(
            self.leaf_missing >= node.leaf_missing
                && self.leaf_total >= node.leaf_total
                && self.prefix_missing >= node.prefix_missing
                && self.prefix_total >= node.prefix_total,
            "retracting counts that were never accumulated"
        );
        self.leaf_missing -= node.leaf_missing;
        self.leaf_total -= node.leaf_total;
        self.prefix_missing -= node.prefix_missing;
        self.prefix_total -= node.prefix_total;
    }

    /// Proportion of missing leaf-set entries (0 when nothing is expected).
    pub fn leaf_proportion(&self) -> f64 {
        if self.leaf_total == 0 {
            0.0
        } else {
            self.leaf_missing as f64 / self.leaf_total as f64
        }
    }

    /// Proportion of missing prefix-table entries (0 when nothing is expected).
    pub fn prefix_proportion(&self) -> f64 {
        if self.prefix_total == 0 {
            0.0
        } else {
            self.prefix_missing as f64 / self.prefix_total as f64
        }
    }

    /// Whether every measured node has perfect leaf sets *and* prefix tables — the
    /// paper's termination condition.
    pub fn is_perfect(&self) -> bool {
        self.leaf_missing == 0 && self.prefix_missing == 0
    }
}

/// Incremental convergence accounting: caches one [`NodeConvergence`] per node
/// and maintains their running sum, so a measurement pass only has to
/// re-measure the nodes whose tables actually changed since the previous pass
/// (the *dirty set* reported by the protocol driver).
///
/// Once the epidemic saturates, most exchanges stop changing tables, so the
/// dirty set — and with it the per-cycle observer cost — collapses from O(n)
/// table walks to a handful. The cached aggregate is exact: the sums it reports
/// are integer-identical to re-measuring every node against the same oracle.
///
/// Only valid while the oracle (the live identifier population) is unchanged;
/// under churn the caller must rebuild both the oracle and the tracker.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    per_node: Vec<Option<NodeConvergence>>,
    aggregate: NetworkConvergence,
}

impl ConvergenceTracker {
    /// Creates an empty tracker (no node measured yet).
    pub fn new() -> Self {
        ConvergenceTracker::default()
    }

    /// The current aggregate over every cached node measurement.
    pub fn aggregate(&self) -> NetworkConvergence {
        self.aggregate
    }

    /// Number of nodes with a cached measurement.
    pub fn measured_nodes(&self) -> usize {
        self.per_node.iter().filter(|m| m.is_some()).count()
    }

    /// Replaces the cached measurement of the node at `index` (`None` when the
    /// node is dead or uninitialised and must no longer count), keeping the
    /// aggregate in sync.
    pub fn update_node(&mut self, index: usize, measured: Option<NodeConvergence>) {
        if index >= self.per_node.len() {
            self.per_node.resize(index + 1, None);
        }
        if let Some(previous) = self.per_node[index].take() {
            self.aggregate.retract(previous);
        }
        if let Some(current) = measured {
            self.aggregate.accumulate(current);
        }
        self.per_node[index] = measured;
    }
}

impl ConvergenceOracle {
    /// Builds an oracle from the set of live identifiers and the protocol
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params` is invalid or `ids` contains duplicates.
    pub fn new(ids: impl IntoIterator<Item = NodeId>, params: &BootstrapParams) -> Self {
        params.validate().expect("invalid protocol parameters");
        let mut sorted_ids: Vec<NodeId> = ids.into_iter().collect();
        sorted_ids.sort_unstable();
        let before = sorted_ids.len();
        sorted_ids.dedup();
        assert_eq!(before, sorted_ids.len(), "duplicate identifiers");
        ConvergenceOracle {
            sorted_ids,
            geometry: params.geometry().expect("validated geometry"),
            leaf_set_size: params.leaf_set_size,
            entries_per_slot: params.entries_per_slot,
        }
    }

    /// Number of live identifiers known to the oracle.
    pub fn population(&self) -> usize {
        self.sorted_ids.len()
    }

    /// Whether `id` is one of the live identifiers.
    pub fn is_live(&self, id: NodeId) -> bool {
        self.sorted_ids.binary_search(&id).is_ok()
    }

    /// The perfect leaf set of `id`: the fixed point of `UPDATELEAFSET` when every
    /// live identifier is known — the `c/2` closest *successors* (identifiers
    /// closer in the increasing ring direction) and the `c/2` closest
    /// *predecessors*, with one side spilling into the other when it has fewer than
    /// `c/2` candidates, exactly as the protocol's update rule behaves. When the
    /// network has at most `c + 1` nodes this is simply every other live
    /// identifier.
    ///
    /// For realistic populations (uniformly random identifiers, `n ≫ c`) this
    /// coincides with "the `c/2` identifiers immediately following and preceding
    /// the node on the sorted ring"; the two definitions only diverge when a
    /// node's ring neighbours are more than half the identifier space away, which
    /// can happen in tiny or highly clustered populations.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in the live set.
    pub fn perfect_leaf_set(&self, id: NodeId) -> Vec<NodeId> {
        let position = self
            .sorted_ids
            .binary_search(&id)
            .expect("id not in the live identifier set");
        let n = self.sorted_ids.len();
        if n <= 1 {
            return Vec::new();
        }
        let others = n - 1;
        if others <= self.leaf_set_size {
            return self
                .sorted_ids
                .iter()
                .copied()
                .filter(|&other| other != id)
                .collect();
        }
        let needed = self.leaf_set_size;
        let half = needed / 2;

        // Walk forward collecting identifiers that the protocol classifies as
        // successors (clockwise distance no larger than counter-clockwise). The
        // classification is monotone along the walk, so the first failure ends it.
        let mut successors = Vec::with_capacity(needed);
        for step in 1..=needed {
            let candidate = self.sorted_ids[(position + step) % n];
            if id.is_successor(candidate) && candidate != id {
                successors.push(candidate);
            } else {
                break;
            }
        }
        // Walk backward collecting predecessors symmetrically.
        let mut predecessors = Vec::with_capacity(needed);
        for step in 1..=needed {
            let candidate = self.sorted_ids[(position + n - step) % n];
            if !id.is_successor(candidate) && candidate != id {
                predecessors.push(candidate);
            } else {
                break;
            }
        }

        // Keep c/2 per side, spilling into the other side when one is short —
        // mirroring LeafSet::update.
        let successor_short = half.saturating_sub(successors.len());
        let predecessor_short = half.saturating_sub(predecessors.len());
        let keep_successors = (half + predecessor_short).min(successors.len());
        let keep_predecessors = (half + successor_short).min(predecessors.len());
        successors.truncate(keep_successors);
        predecessors.truncate(keep_predecessors);
        successors.extend(predecessors);
        successors
    }

    /// The total number of fillable prefix-table entries for `id`: for every slot,
    /// `min(k, number of live identifiers whose longest common prefix with `id` has
    /// that length and whose next digit is the slot's column)`.
    pub fn fillable_prefix_entries(&self, id: NodeId) -> usize {
        let mut total = 0;
        self.for_each_fillable_slot(id, |_, _, fillable| total += fillable);
        total
    }

    /// Measures one node against the oracle.
    pub fn measure_node<A: Address>(&self, node: &BootstrapNode<A>) -> NodeConvergence {
        let id = node.id();

        // Leaf set: how many of the perfect entries are present?
        let perfect = self.perfect_leaf_set(id);
        let present: HashSet<NodeId> = node.leaf_set().iter().map(|d| d.id()).collect();
        let leaf_missing = perfect
            .iter()
            .filter(|target| !present.contains(target))
            .count();
        let leaf_total = perfect.len();

        // Prefix table: per slot, how many of the fillable entries are present and
        // still alive?
        let mut prefix_missing = 0;
        let mut prefix_total = 0;
        self.for_each_fillable_slot(id, |row, column, fillable| {
            prefix_total += fillable;
            let live_entries = node
                .prefix_table()
                .slot(row, column)
                .iter()
                .filter(|d| self.is_live(d.id()))
                .count();
            prefix_missing += fillable.saturating_sub(live_entries);
        });

        NodeConvergence {
            leaf_missing,
            leaf_total,
            prefix_missing,
            prefix_total,
        }
    }

    /// Calls `visit(row, column, fillable)` for every slot of `id`'s table that can
    /// hold at least one entry given the live identifier population.
    ///
    /// The walk narrows a contiguous range of the sorted identifier array row by
    /// row (identifiers sharing a prefix are contiguous when sorted), so the cost
    /// per node is `O(filled_rows * columns * log n)` rather than `O(n)`.
    fn for_each_fillable_slot(&self, id: NodeId, mut visit: impl FnMut(usize, u8, usize)) {
        let bits = self.geometry.bits_per_digit();
        let columns = self.geometry.columns();
        let k = self.entries_per_slot;
        // Range of identifiers sharing the first `row` digits with `id`.
        let mut low = 0usize;
        let mut high = self.sorted_ids.len();
        for row in 0..self.geometry.rows() {
            // If the current range contains only `id` itself (or nothing), no deeper
            // slot can be filled by anyone.
            if high.saturating_sub(low) <= 1 {
                break;
            }
            let own_digit = id.digit(row, bits);
            let mut next_low = low;
            let mut next_high = high;
            for column in 0..columns as u8 {
                let (slot_low, slot_high) = self.digit_range(low, high, id, row, column);
                if column == own_digit {
                    next_low = slot_low;
                    next_high = slot_high;
                    continue;
                }
                let available = slot_high - slot_low;
                if available > 0 {
                    visit(row, column, available.min(k));
                }
            }
            low = next_low;
            high = next_high;
        }
    }

    /// The sub-range of `sorted_ids[low..high]` whose digit at position `row`
    /// equals `column`, assuming all identifiers in `[low, high)` share the first
    /// `row` digits with `id`.
    fn digit_range(
        &self,
        low: usize,
        high: usize,
        id: NodeId,
        row: usize,
        column: u8,
    ) -> (usize, usize) {
        let bits = u32::from(self.geometry.bits_per_digit());
        let shift = 64 - bits * (row as u32 + 1);
        let prefix_mask = if row == 0 {
            0
        } else {
            !(u64::MAX >> (bits * row as u32))
        };
        let base = (id.raw() & prefix_mask) | (u64::from(column) << shift);
        let slice = &self.sorted_ids[low..high];
        let start = slice.partition_point(|candidate| candidate.raw() < base);
        let end = if shift == 0 {
            slice.partition_point(|candidate| candidate.raw() <= base)
        } else {
            let upper = base | (u64::MAX >> (64 - shift));
            slice.partition_point(|candidate| candidate.raw() <= upper)
        };
        (low + start, low + end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_util::descriptor::Descriptor;

    fn params(c: usize, k: usize) -> BootstrapParams {
        BootstrapParams {
            leaf_set_size: c,
            entries_per_slot: k,
            ..BootstrapParams::paper_default()
        }
    }

    #[test]
    fn perfect_leaf_set_on_a_small_ring() {
        let ids: Vec<NodeId> = [10u64, 20, 30, 40, 50, 60].map(NodeId::new).into();
        let oracle = ConvergenceOracle::new(ids, &params(4, 3));
        let perfect = oracle.perfect_leaf_set(NodeId::new(30));
        let as_raw: HashSet<u64> = perfect.iter().map(|id| id.raw()).collect();
        assert_eq!(as_raw, HashSet::from([40, 50, 20, 10]));
        assert_eq!(perfect.len(), 4);
        assert_eq!(oracle.population(), 6);
        assert!(oracle.is_live(NodeId::new(10)));
        assert!(!oracle.is_live(NodeId::new(11)));
    }

    #[test]
    fn perfect_leaf_set_spills_when_one_direction_is_empty() {
        // All identifiers are clustered near zero, so from the largest node every
        // other node is "closer in the decreasing direction": the protocol's update
        // rule keeps predecessors only, spilling the successor half into them.
        let ids: Vec<NodeId> = [10u64, 20, 30, 40, 50, 60].map(NodeId::new).into();
        let oracle = ConvergenceOracle::new(ids, &params(4, 3));
        let perfect = oracle.perfect_leaf_set(NodeId::new(60));
        let as_raw: HashSet<u64> = perfect.iter().map(|id| id.raw()).collect();
        assert_eq!(as_raw, HashSet::from([50, 40, 30, 20]));
    }

    #[test]
    fn perfect_leaf_set_wraps_for_uniformly_spread_identifiers() {
        // Identifiers spread evenly over the whole ring: the largest node's
        // successors wrap around to the smallest identifiers.
        let step = u64::MAX / 8;
        let ids: Vec<NodeId> = (0..8u64).map(|i| NodeId::new(i * step)).collect();
        let oracle = ConvergenceOracle::new(ids.clone(), &params(4, 3));
        let top = ids[7];
        let perfect = oracle.perfect_leaf_set(top);
        let as_set: HashSet<NodeId> = perfect.iter().copied().collect();
        assert!(
            as_set.contains(&ids[0]),
            "first id is the wrap-around successor"
        );
        assert!(as_set.contains(&ids[1]));
        assert!(as_set.contains(&ids[6]));
        assert!(as_set.contains(&ids[5]));
        assert_eq!(perfect.len(), 4);
    }

    #[test]
    fn perfect_leaf_set_matches_the_protocols_fixed_point() {
        // Feeding a LeafSet every live identifier must yield exactly the oracle's
        // perfect set, for clustered and for random populations alike.
        use bss_util::rng::SimRng;
        let p = params(6, 3);
        let mut rng = SimRng::seed_from(7);
        let mut populations: Vec<Vec<NodeId>> = vec![[1u64, 2, 3, 5, 8, 13, 21, 34, 55, 89]
            .map(NodeId::new)
            .into()];
        populations.push(rng.distinct_u64(40).into_iter().map(NodeId::new).collect());
        for ids in populations {
            let oracle = ConvergenceOracle::new(ids.clone(), &p);
            for &me in &ids {
                let mut leaf_set: crate::leafset::LeafSet<u32> =
                    crate::leafset::LeafSet::new(me, p.leaf_set_size);
                leaf_set.update(ids.iter().map(|&other| Descriptor::new(other, 0u32, 0)));
                let achieved: HashSet<NodeId> = leaf_set.iter().map(|d| d.id()).collect();
                let perfect: HashSet<NodeId> = oracle.perfect_leaf_set(me).into_iter().collect();
                assert_eq!(achieved, perfect, "fixed point mismatch for {me}");
            }
        }
    }

    #[test]
    fn tiny_networks_expect_everyone() {
        let ids: Vec<NodeId> = [1u64, 2, 3].map(NodeId::new).into();
        let oracle = ConvergenceOracle::new(ids, &params(20, 3));
        let perfect = oracle.perfect_leaf_set(NodeId::new(2));
        assert_eq!(perfect.len(), 2);
        let lonely = ConvergenceOracle::new([NodeId::new(9)], &params(4, 3));
        assert!(lonely.perfect_leaf_set(NodeId::new(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "not in the live identifier set")]
    fn perfect_leaf_set_rejects_unknown_ids() {
        let oracle = ConvergenceOracle::new([NodeId::new(1)], &params(4, 3));
        let _ = oracle.perfect_leaf_set(NodeId::new(2));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_identifiers_are_rejected() {
        let _ = ConvergenceOracle::new([NodeId::new(1), NodeId::new(1)], &params(4, 3));
    }

    #[test]
    fn fillable_slots_match_a_brute_force_count() {
        // Small population, b = 4, k = 2: brute-force the expected counts.
        let raw_ids = [
            0x1111_0000_0000_0000u64,
            0x1122_0000_0000_0000,
            0x1133_0000_0000_0000,
            0x1134_0000_0000_0000,
            0x2222_0000_0000_0000,
            0x2223_0000_0000_0000,
            0xF000_0000_0000_0000,
        ];
        let ids: Vec<NodeId> = raw_ids.map(NodeId::new).into();
        let p = params(4, 2);
        let oracle = ConvergenceOracle::new(ids.clone(), &p);
        let geometry = p.geometry().unwrap();
        for &me in &ids {
            // Brute force: group all other ids by slot and cap at k.
            let mut per_slot: std::collections::HashMap<(usize, u8), usize> =
                std::collections::HashMap::new();
            for &other in &ids {
                if let Some(slot) = geometry.slot_of(me, other) {
                    *per_slot.entry(slot).or_default() += 1;
                }
            }
            let expected: usize = per_slot.values().map(|&count| count.min(2)).sum();
            assert_eq!(
                oracle.fillable_prefix_entries(me),
                expected,
                "fillable mismatch for {me}"
            );
        }
    }

    #[test]
    fn fillable_slots_against_brute_force_on_random_population() {
        use bss_util::rng::SimRng;
        let mut rng = SimRng::seed_from(99);
        let ids: Vec<NodeId> = rng.distinct_u64(200).into_iter().map(NodeId::new).collect();
        let p = params(20, 3);
        let geometry = p.geometry().unwrap();
        let oracle = ConvergenceOracle::new(ids.clone(), &p);
        for &me in ids.iter().take(20) {
            let mut per_slot: std::collections::HashMap<(usize, u8), usize> =
                std::collections::HashMap::new();
            for &other in &ids {
                if let Some(slot) = geometry.slot_of(me, other) {
                    *per_slot.entry(slot).or_default() += 1;
                }
            }
            let expected: usize = per_slot.values().map(|&count| count.min(3)).sum();
            assert_eq!(oracle.fillable_prefix_entries(me), expected);
        }
    }

    #[test]
    fn measure_node_reports_missing_and_perfect_states() {
        let ids: Vec<NodeId> = [100u64, 200, 300, 400, 500, 600].map(NodeId::new).into();
        let p = params(4, 3);
        let oracle = ConvergenceOracle::new(ids.clone(), &p);

        let own = Descriptor::new(NodeId::new(300), 2u32, 0);
        let mut node = BootstrapNode::new(own, &p).unwrap();
        let fresh = oracle.measure_node(&node);
        assert_eq!(fresh.leaf_total, 4);
        assert_eq!(fresh.leaf_missing, 4);
        assert_eq!(
            fresh.prefix_total,
            oracle.fillable_prefix_entries(NodeId::new(300))
        );
        assert_eq!(fresh.prefix_missing, fresh.prefix_total);

        // Feed the node everything: it becomes perfect.
        let all: Vec<Descriptor<u32>> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| Descriptor::new(id, i as u32, 0))
            .collect();
        node.receive(&all);
        let converged = oracle.measure_node(&node);
        assert_eq!(converged.leaf_missing, 0);
        assert_eq!(converged.prefix_missing, 0);

        let mut aggregate = NetworkConvergence::default();
        aggregate.accumulate(fresh);
        aggregate.accumulate(converged);
        assert!(!aggregate.is_perfect());
        assert!(aggregate.leaf_proportion() > 0.0 && aggregate.leaf_proportion() < 1.0);
        assert!(aggregate.prefix_proportion() > 0.0);
    }

    #[test]
    fn dead_entries_do_not_count_as_filled() {
        let live: Vec<NodeId> = [100u64, 200, 300, 400, 500, 600].map(NodeId::new).into();
        let p = params(4, 3);
        let oracle = ConvergenceOracle::new(live, &p);
        let own = Descriptor::new(NodeId::new(300), 0u32, 0);
        let mut node = BootstrapNode::new(own, &p).unwrap();
        // The node only knows a departed identifier (700 is not in the live set).
        node.receive(&[Descriptor::new(NodeId::new(700), 9u32, 0)]);
        let measured = oracle.measure_node(&node);
        assert_eq!(measured.prefix_missing, measured.prefix_total);
    }

    #[test]
    fn empty_aggregate_is_perfect_with_zero_proportions() {
        let aggregate = NetworkConvergence::default();
        assert!(aggregate.is_perfect());
        assert_eq!(aggregate.leaf_proportion(), 0.0);
        assert_eq!(aggregate.prefix_proportion(), 0.0);
    }
}
