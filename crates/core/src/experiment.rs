//! A batteries-included experiment runner.
//!
//! [`Experiment`] wires together everything a single simulation run needs — the
//! network registry, the cycle engine, a transport, an optional churn model, the
//! peer sampling layer and the bootstrap protocol — and records, cycle by cycle,
//! the proportion of missing leaf-set and prefix-table entries (the series plotted
//! in the paper's Figures 3 and 4). The examples, the integration tests and the
//! benchmark harness are all thin wrappers around this module.

use crate::convergence::{ConvergenceTracker, NetworkConvergence};
use crate::protocol::{BootstrapProtocol, TrafficStats};
use bss_sampling::newscast::NewscastProtocol;
use bss_sampling::sampler::{OracleSampler, PeerSampler};
use bss_sim::churn::UniformChurn;
use bss_sim::engine::cycle::CycleEngine;
use bss_sim::network::Network;
use bss_sim::transport::{DropTransport, ReliableTransport, Transport};
use bss_util::config::{BootstrapParams, InvalidParams, NewscastParams};
use bss_util::rng::SimRng;
use bss_util::stats::Series;
use std::fmt;
use std::ops::ControlFlow;

/// Which peer sampling implementation an experiment runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerChoice {
    /// The idealised, globally uniform sampler (isolates the bootstrap protocol
    /// from sampling quality; this is also the closest match to the paper's
    /// assumption that the sampling service is "already functional").
    Oracle,
    /// A real NEWSCAST instance gossiping underneath the bootstrap protocol.
    Newscast(NewscastParams),
}

/// Full description of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Number of nodes in the network.
    pub network_size: usize,
    /// Seed for the deterministic random number generator.
    pub seed: u64,
    /// Bootstrapping-service parameters (`b`, `k`, `c`, `cr`).
    pub params: BootstrapParams,
    /// Peer sampling implementation.
    pub sampler: SamplerChoice,
    /// Probability that any individual message is dropped (the paper's Figure 4
    /// uses 0.2; Figure 3 uses 0).
    pub drop_probability: f64,
    /// Fraction of nodes replaced per cycle (0 disables churn).
    pub churn_rate: f64,
    /// Hard cycle budget.
    pub max_cycles: u64,
    /// Stop as soon as every node's tables are perfect (the paper's termination
    /// rule). When false the run always uses the full cycle budget.
    pub stop_when_perfect: bool,
    /// Observer cadence: convergence is measured every `measure_every` cycles
    /// (1 = every cycle). Larger cadences make huge sweeps cheaper at the cost
    /// of coarser series; the perfection stop only triggers on measured cycles.
    pub measure_every: u64,
    /// Number of worker threads executing each cycle's independent exchanges
    /// (1 = the plain sequential engine). Any value produces bit-for-bit the
    /// same outcome — the parallel engine pre-draws all randomness
    /// sequentially and commits results in planning order — so this is purely
    /// a wall-clock knob.
    pub threads: usize,
}

impl ExperimentConfig {
    /// Starts building a configuration from sensible defaults (256 nodes, paper
    /// parameters, oracle sampling, no loss, no churn, 100-cycle budget).
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: ExperimentConfig {
                network_size: 256,
                seed: 0,
                params: BootstrapParams::paper_default(),
                sampler: SamplerChoice::Oracle,
                drop_probability: 0.0,
                churn_rate: 0.0,
                max_cycles: 100,
                stop_when_perfect: true,
                measure_every: 1,
                threads: 1,
            },
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when the protocol parameters are invalid, the
    /// network has fewer than two nodes, the cycle budget is zero, or a probability
    /// is outside `[0, 1]`.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        self.params.validate()?;
        if let SamplerChoice::Newscast(p) = self.sampler {
            p.validate()?;
        }
        if self.network_size < 2 {
            return Err(InvalidParams::from_message(
                "network_size must be at least 2",
            ));
        }
        if self.max_cycles == 0 {
            return Err(InvalidParams::from_message("max_cycles must be positive"));
        }
        if self.measure_every == 0 {
            return Err(InvalidParams::from_message(
                "measure_every must be positive",
            ));
        }
        if self.threads == 0 {
            return Err(InvalidParams::from_message("threads must be positive"));
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(InvalidParams::from_message(
                "drop_probability must lie in [0, 1]",
            ));
        }
        if !(0.0..=1.0).contains(&self.churn_rate) {
            return Err(InvalidParams::from_message("churn_rate must lie in [0, 1]"));
        }
        Ok(())
    }
}

/// Non-consuming builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Sets the number of nodes.
    pub fn network_size(&mut self, n: usize) -> &mut Self {
        self.config.network_size = n;
        self
    }

    /// Sets the random seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the bootstrapping-service parameters.
    pub fn params(&mut self, params: BootstrapParams) -> &mut Self {
        self.config.params = params;
        self
    }

    /// Selects the peer sampling implementation.
    pub fn sampler(&mut self, sampler: SamplerChoice) -> &mut Self {
        self.config.sampler = sampler;
        self
    }

    /// Sets the per-message drop probability.
    pub fn drop_probability(&mut self, p: f64) -> &mut Self {
        self.config.drop_probability = p;
        self
    }

    /// Sets the per-cycle replacement churn rate.
    pub fn churn_rate(&mut self, rate: f64) -> &mut Self {
        self.config.churn_rate = rate;
        self
    }

    /// Sets the cycle budget.
    pub fn max_cycles(&mut self, cycles: u64) -> &mut Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Controls whether the run stops at perfect convergence.
    pub fn stop_when_perfect(&mut self, stop: bool) -> &mut Self {
        self.config.stop_when_perfect = stop;
        self
    }

    /// Sets the observer cadence (convergence measured every `cycles` cycles).
    pub fn measure_every(&mut self, cycles: u64) -> &mut Self {
        self.config.measure_every = cycles;
        self
    }

    /// Sets the number of worker threads (1 = sequential engine; the outcome
    /// is bit-for-bit identical at any value).
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when [`ExperimentConfig::validate`] fails.
    pub fn build(&self) -> Result<ExperimentConfig, InvalidParams> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    config: ExperimentConfig,
    leaf_series: Series,
    prefix_series: Series,
    convergence_cycle: Option<u64>,
    cycles_executed: u64,
    final_state: NetworkConvergence,
    traffic: TrafficStats,
}

impl ExperimentOutcome {
    /// The configuration that produced this outcome.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Per-cycle proportion of missing leaf-set entries (Figure 3/4, top panels).
    pub fn leaf_series(&self) -> &Series {
        &self.leaf_series
    }

    /// Per-cycle proportion of missing prefix-table entries (Figure 3/4, bottom
    /// panels).
    pub fn prefix_series(&self) -> &Series {
        &self.prefix_series
    }

    /// The first cycle at which every node had perfect tables, if that happened
    /// within the budget.
    pub fn convergence_cycle(&self) -> Option<u64> {
        self.convergence_cycle
    }

    /// Whether the run reached perfect tables at every node.
    pub fn converged(&self) -> bool {
        self.convergence_cycle.is_some()
    }

    /// Number of cycles actually executed.
    pub fn cycles_executed(&self) -> u64 {
        self.cycles_executed
    }

    /// The missing-entry counts measured after the last executed cycle.
    pub fn final_state(&self) -> NetworkConvergence {
        self.final_state
    }

    /// Traffic statistics of the run.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }
}

impl fmt::Display for ExperimentOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} seed={} drop={:.0}% churn={:.1}%/cycle: ",
            self.config.network_size,
            self.config.seed,
            self.config.drop_probability * 100.0,
            self.config.churn_rate * 100.0
        )?;
        match self.convergence_cycle {
            Some(cycle) => write!(f, "perfect tables after {cycle} cycles"),
            None => write!(
                f,
                "not converged after {} cycles (missing leaf {:.2e}, prefix {:.2e})",
                self.cycles_executed,
                self.final_state.leaf_proportion(),
                self.final_state.prefix_proportion()
            ),
        }
    }
}

/// A frozen copy of every node's bootstrapped state at the end of a run, indexed
/// by identifier. This is what routing-substrate consumers (`bss-overlay`) operate
/// on: it is exactly the information a real deployment would hand over to Pastry /
/// Kademlia / Bamboo maintenance once the bootstrap completes.
#[derive(Debug, Clone, Default)]
pub struct PopulationSnapshot {
    nodes: Vec<crate::node::BootstrapNode<bss_sim::network::NodeIndex>>,
    index_by_id: std::collections::HashMap<bss_util::id::NodeId, usize>,
}

impl PopulationSnapshot {
    /// Builds a snapshot from the alive, initialised nodes of a protocol run.
    pub fn capture<S: PeerSampler>(
        protocol: &BootstrapProtocol<S>,
        ctx: &bss_sim::engine::cycle::EngineContext,
    ) -> Self {
        let mut snapshot = PopulationSnapshot::default();
        for node in ctx.network.alive_indices() {
            if let Some(state) = protocol.node(node) {
                snapshot
                    .index_by_id
                    .insert(state.id(), snapshot.nodes.len());
                snapshot.nodes.push(state.clone());
            }
        }
        snapshot
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All identifiers in the snapshot, in capture order.
    pub fn ids(&self) -> impl Iterator<Item = bss_util::id::NodeId> + '_ {
        self.nodes.iter().map(|n| n.id())
    }

    /// The node state with the given identifier, if present.
    pub fn node_by_id(
        &self,
        id: bss_util::id::NodeId,
    ) -> Option<&crate::node::BootstrapNode<bss_sim::network::NodeIndex>> {
        self.index_by_id.get(&id).map(|&i| &self.nodes[i])
    }

    /// The node state at a dense position (useful for picking random nodes).
    pub fn node_at(
        &self,
        position: usize,
    ) -> Option<&crate::node::BootstrapNode<bss_sim::network::NodeIndex>> {
        self.nodes.get(position)
    }
}

/// A single, ready-to-run simulation.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates an experiment from a validated configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the recorded outcome.
    pub fn run(&self) -> ExperimentOutcome {
        self.run_with_snapshot().0
    }

    /// Runs the simulation and additionally returns a [`PopulationSnapshot`] of
    /// every node's final leaf set and prefix table, ready to be handed to the
    /// routing-substrate consumers in `bss-overlay`.
    pub fn run_with_snapshot(&self) -> (ExperimentOutcome, PopulationSnapshot) {
        match self.config.sampler {
            SamplerChoice::Oracle => self.run_with_sampler(OracleSampler::new(), false),
            SamplerChoice::Newscast(params) => {
                self.run_with_sampler(NewscastProtocol::new(params), true)
            }
        }
    }

    fn run_with_sampler<S: PeerSampler>(
        &self,
        sampler: S,
        sampler_steps: bool,
    ) -> (ExperimentOutcome, PopulationSnapshot) {
        let config = self.config;
        let mut rng = SimRng::seed_from(config.seed);
        let network = Network::with_random_ids(config.network_size, &mut rng);

        let transport: Box<dyn Transport> = if config.drop_probability > 0.0 {
            Box::new(DropTransport::new(config.drop_probability))
        } else {
            Box::new(ReliableTransport::new())
        };
        let mut engine = CycleEngine::new(network, rng).with_transport(transport);
        if config.churn_rate > 0.0 {
            engine = engine.with_churn(Box::new(UniformChurn::new(config.churn_rate)));
        }

        let mut protocol = BootstrapProtocol::new(config.params, sampler);
        if sampler_steps {
            protocol = protocol.with_sampler_steps();
        }
        protocol.init_all(engine.context_mut());

        // Under churn the live membership changes every cycle, so the oracle has to
        // be rebuilt; without churn one oracle serves the whole run and the
        // convergence can be tracked incrementally over the protocol's dirty set.
        let static_oracle = if config.churn_rate == 0.0 {
            Some(protocol.oracle_for(engine.context()))
        } else {
            None
        };
        let mut tracker = ConvergenceTracker::new();

        let mut leaf_series = Series::new("missing_leafset_proportion");
        let mut prefix_series = Series::new("missing_prefix_proportion");
        let mut convergence_cycle = None;
        let mut final_state = NetworkConvergence::default();

        let cycles_executed = engine.run_parallel_with_observer(
            &mut protocol,
            config.max_cycles,
            config.threads,
            |protocol, ctx, cycle| {
                // Off-cadence cycles skip the (global) convergence pass entirely.
                if cycle % config.measure_every != 0 {
                    return ControlFlow::Continue(());
                }
                let measured = match &static_oracle {
                    Some(oracle) => protocol.measure_incremental(oracle, &mut tracker, ctx),
                    None => {
                        let oracle = protocol.oracle_for(ctx);
                        protocol.measure(&oracle, ctx)
                    }
                };
                leaf_series.push(cycle, measured.leaf_proportion());
                prefix_series.push(cycle, measured.prefix_proportion());
                final_state = measured;
                if measured.is_perfect() {
                    if convergence_cycle.is_none() {
                        convergence_cycle = Some(cycle);
                    }
                    if config.stop_when_perfect {
                        return ControlFlow::Break(());
                    }
                } else {
                    // Under churn a previously perfect network can degrade again.
                    convergence_cycle = convergence_cycle.filter(|_| config.churn_rate == 0.0);
                }
                ControlFlow::Continue(())
            },
        );

        let snapshot = PopulationSnapshot::capture(&protocol, engine.context());
        let outcome = ExperimentOutcome {
            config,
            leaf_series,
            prefix_series,
            convergence_cycle,
            cycles_executed,
            final_state,
            traffic: protocol.traffic().clone(),
        };
        (outcome, snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_inputs() {
        assert!(ExperimentConfig::builder().network_size(1).build().is_err());
        assert!(ExperimentConfig::builder().max_cycles(0).build().is_err());
        assert!(ExperimentConfig::builder()
            .drop_probability(1.5)
            .build()
            .is_err());
        assert!(ExperimentConfig::builder()
            .churn_rate(-0.1)
            .build()
            .is_err());
        let ok = ExperimentConfig::builder()
            .network_size(64)
            .seed(3)
            .max_cycles(50)
            .build()
            .unwrap();
        assert_eq!(ok.network_size, 64);
        assert_eq!(ok.seed, 3);
        assert!(ok.stop_when_perfect);
    }

    #[test]
    fn small_network_converges_and_reports_series() {
        let config = ExperimentConfig::builder()
            .network_size(100)
            .seed(42)
            .max_cycles(60)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert!(outcome.converged(), "{outcome}");
        let convergence = outcome.convergence_cycle().unwrap();
        assert!(convergence < 40);
        // The series cover every executed cycle and end at zero.
        assert_eq!(
            outcome.leaf_series().len(),
            outcome.cycles_executed() as usize
        );
        assert_eq!(
            outcome.prefix_series().len(),
            outcome.cycles_executed() as usize
        );
        assert_eq!(outcome.leaf_series().final_value(), Some(0.0));
        assert_eq!(outcome.prefix_series().final_value(), Some(0.0));
        assert!(outcome.final_state().is_perfect());
        assert!(outcome.traffic().requests_sent > 0);
        assert_eq!(outcome.config().network_size, 100);
        let text = outcome.to_string();
        assert!(text.contains("perfect tables"));
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let config = ExperimentConfig::builder()
            .network_size(80)
            .seed(7)
            .max_cycles(50)
            .build()
            .unwrap();
        let (a, snapshot_a) = Experiment::new(config).run_with_snapshot();
        let (b, snapshot_b) = Experiment::new(config).run_with_snapshot();
        // The whole convergence trace must replay exactly: cycle counts, both
        // per-cycle series, traffic counters and every node's final tables.
        assert_eq!(a.convergence_cycle(), b.convergence_cycle());
        assert_eq!(a.cycles_executed(), b.cycles_executed());
        assert_eq!(a.leaf_series().points(), b.leaf_series().points());
        assert_eq!(a.prefix_series().points(), b.prefix_series().points());
        assert_eq!(a.traffic().requests_sent, b.traffic().requests_sent);
        assert_eq!(
            a.traffic().requests_delivered,
            b.traffic().requests_delivered
        );
        assert_eq!(a.traffic().answers_delivered, b.traffic().answers_delivered);
        assert_eq!(snapshot_a.len(), snapshot_b.len());
        for (node_a, node_b) in (0..snapshot_a.len()).map(|i| {
            (
                snapshot_a.node_at(i).unwrap(),
                snapshot_b.node_at(i).unwrap(),
            )
        }) {
            assert_eq!(node_a.id(), node_b.id());
            assert_eq!(node_a.leaf_set().to_vec(), node_b.leaf_set().to_vec());
            assert_eq!(
                node_a.prefix_table().to_vec(),
                node_b.prefix_table().to_vec()
            );
        }

        // A different seed must actually change the trace, otherwise the
        // comparison above proves nothing.
        let reseeded = Experiment::new(
            ExperimentConfig::builder()
                .network_size(80)
                .seed(8)
                .max_cycles(50)
                .build()
                .unwrap(),
        )
        .run();
        assert_ne!(a.leaf_series().points(), reseeded.leaf_series().points());
    }

    #[test]
    fn message_loss_slows_but_does_not_prevent_convergence() {
        // Average over several seeds: any individual pair of runs is noisy, but on
        // average 20 % loss must cost extra cycles (Figure 4 vs Figure 3).
        let mut reliable_total = 0u64;
        let mut lossy_total = 0u64;
        for seed in 0..5u64 {
            let reliable = Experiment::new(
                ExperimentConfig::builder()
                    .network_size(100)
                    .seed(seed)
                    .max_cycles(150)
                    .build()
                    .unwrap(),
            )
            .run();
            let lossy = Experiment::new(
                ExperimentConfig::builder()
                    .network_size(100)
                    .seed(seed)
                    .drop_probability(0.2)
                    .max_cycles(150)
                    .build()
                    .unwrap(),
            )
            .run();
            assert!(reliable.converged());
            assert!(lossy.converged(), "{lossy}");
            reliable_total += reliable.convergence_cycle().unwrap();
            lossy_total += lossy.convergence_cycle().unwrap();
        }
        assert!(
            lossy_total >= reliable_total,
            "on average, loss must slow convergence (reliable {reliable_total}, lossy {lossy_total})"
        );
    }

    #[test]
    fn newscast_sampling_also_converges() {
        let config = ExperimentConfig::builder()
            .network_size(100)
            .seed(11)
            .sampler(SamplerChoice::Newscast(NewscastParams {
                view_size: 20,
                period_millis: 1000,
            }))
            .max_cycles(80)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert!(outcome.converged(), "{outcome}");
    }

    #[test]
    fn churn_keeps_tables_imperfect_but_close() {
        let config = ExperimentConfig::builder()
            .network_size(100)
            .seed(13)
            .churn_rate(0.01)
            .max_cycles(30)
            .stop_when_perfect(false)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert_eq!(outcome.cycles_executed(), 30);
        // The protocol has no failure detector (it is designed for a short burst),
        // so descriptors of departed nodes accumulate in the leaf sets: after T
        // cycles of replacement churn at rate r the live fraction of the nearest
        // neighbours is roughly 1 / (1 + rT), and the missing-entry proportion
        // settles near rT / (1 + rT). With r = 1 % and T = 30 that bound is ~0.23;
        // quality must stay well within it, and far from collapse.
        let final_leaf = outcome.leaf_series().final_value().unwrap();
        assert!(
            final_leaf < 0.35,
            "leaf quality too poor under churn: {final_leaf}"
        );
        let final_prefix = outcome.prefix_series().final_value().unwrap();
        assert!(
            final_prefix < 0.35,
            "prefix quality too poor under churn: {final_prefix}"
        );
        assert!(!outcome.converged());
        let text = outcome.to_string();
        assert!(text.contains("churn"));
    }

    #[test]
    fn snapshot_exposes_every_nodes_final_state() {
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(21)
            .max_cycles(50)
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(outcome.converged());
        assert_eq!(snapshot.len(), 64);
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.ids().count(), 64);
        let some_id = snapshot.node_at(0).unwrap().id();
        let by_id = snapshot.node_by_id(some_id).unwrap();
        assert_eq!(by_id.id(), some_id);
        assert!(!by_id.leaf_set().is_empty());
        // The run is seeded, so no node drew the id u64::MAX; looking it up
        // must miss.
        assert!(snapshot
            .node_by_id(bss_util::id::NodeId::new(u64::MAX))
            .is_none());
        assert!(snapshot.node_at(64).is_none());
    }

    #[test]
    fn stop_when_perfect_false_runs_full_budget() {
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(17)
            .max_cycles(30)
            .stop_when_perfect(false)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert_eq!(outcome.cycles_executed(), 30);
        assert!(outcome.converged());
        assert!(outcome.convergence_cycle().unwrap() < 30);
    }
}
