//! A batteries-included, engine-agnostic experiment runner.
//!
//! [`Experiment`] wires together everything a single simulation run needs — the
//! network registry, the selected engine, the scenario timeline's transport and
//! churn models, the peer sampling layer and the bootstrap protocol — and
//! records, cycle by cycle, the proportion of missing leaf-set and prefix-table
//! entries (the series plotted in the paper's Figures 3 and 4). The examples,
//! the integration tests and the benchmark harness are all thin wrappers around
//! this module.
//!
//! The heart of the module is [`run_scenario`]: one entry point that drives a
//! [`BootstrapProtocol`] through an [`ExperimentConfig`]'s
//! [`Scenario`](crate::scenario::Scenario) on whichever
//! [`Engine`](crate::scenario::Engine) the configuration selects — the
//! sequential cycle engine, the deterministic parallel cycle engine, or the
//! discrete-event engine with per-link latency — reporting to a pluggable
//! [`Observer`] and returning one serializable [`RunReport`].

use crate::convergence::{ConvergenceOracle, ConvergenceTracker, NetworkConvergence};
use crate::node::BootstrapNode;
use crate::protocol::{BootstrapMessage, BootstrapProtocol, TrafficStats};
use crate::routing::RouterKind;
use crate::scenario::{Engine, LatencyModel, NullObserver, Observer, Scenario};
use crate::traffic::{LookupTraffic, LookupTrafficReport};
use bss_sampling::newscast::NewscastProtocol;
use bss_sampling::sampler::{OracleSampler, PeerSampler};
use bss_sim::engine::cycle::{CycleEngine, EngineContext, PhaseProfile};
use bss_sim::engine::event::EventEngine;
use bss_sim::network::{Network, NodeIndex};
use bss_util::config::{BootstrapParams, InvalidParams, NewscastParams};
use bss_util::coords::Placement;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use bss_util::stats::Series;
use std::fmt;
use std::fmt::Write as _;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Which peer sampling implementation an experiment runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerChoice {
    /// The idealised, globally uniform sampler (isolates the bootstrap protocol
    /// from sampling quality; this is also the closest match to the paper's
    /// assumption that the sampling service is "already functional").
    Oracle,
    /// A real NEWSCAST instance gossiping underneath the bootstrap protocol.
    Newscast(NewscastParams),
}

/// Full description of one simulation run: *what* is simulated (network size,
/// protocol parameters, sampler), *what happens to it* (the
/// [`Scenario`] timeline) and *how it executes* (the [`Engine`] selection).
///
/// The legacy scalar knobs survive as builder sugar:
/// [`drop_probability`](ExperimentConfigBuilder::drop_probability) and
/// [`churn_rate`](ExperimentConfigBuilder::churn_rate) desugar into one-phase
/// whole-run scenario windows, and
/// [`threads`](ExperimentConfigBuilder::threads) desugars into the engine
/// selection. Cycle-engine runs through this compatibility path are
/// byte-identical to the pre-scenario code.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Number of nodes in the network.
    pub network_size: usize,
    /// Seed for the deterministic random number generator.
    pub seed: u64,
    /// Bootstrapping-service parameters (`b`, `k`, `c`, `cr`, Δ).
    pub params: BootstrapParams,
    /// Peer sampling implementation.
    pub sampler: SamplerChoice,
    /// The timeline of adverse conditions applied during the run.
    pub scenario: Scenario,
    /// Which routing substrate resolves the lookups of the scenario's traffic
    /// phases (ignored — and free — when the scenario schedules none).
    pub traffic_router: RouterKind,
    /// Which engine executes the run.
    pub engine: Engine,
    /// The link model every engine consults per `(src, dst)` message: latency
    /// on the event engine, structural loss everywhere, and — with
    /// [`LatencyModel::Wan`] — the node placement that defines regions for
    /// regional scenario events and per-region report series. `None` falls
    /// back to the event engine's latency selection (or a constant model on
    /// the cycle engines), which keeps legacy configurations byte-identical.
    pub link: Option<LatencyModel>,
    /// Hard cycle budget.
    pub max_cycles: u64,
    /// Stop as soon as every node's tables are perfect (the paper's termination
    /// rule). When false the run always uses the full cycle budget. The stop
    /// never triggers while a scenario transition still lies ahead.
    pub stop_when_perfect: bool,
    /// Observer cadence: convergence is measured every `measure_every` cycles
    /// (1 = every cycle). Larger cadences make huge sweeps cheaper at the cost
    /// of coarser series; the perfection stop only triggers on measured cycles.
    pub measure_every: u64,
    /// Accumulate per-phase wall time (plan / execute / commit / measure) on
    /// the cycle engines and attach it to the [`RunReport`]. Off by default:
    /// timing is observational only — it never changes the simulated outcome —
    /// but costs two clock reads per wave.
    pub profile: bool,
}

impl ExperimentConfig {
    /// Starts building a configuration from sensible defaults (256 nodes, paper
    /// parameters, oracle sampling, calm scenario, cycle engine, 100-cycle
    /// budget).
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            config: ExperimentConfig {
                network_size: 256,
                seed: 0,
                params: BootstrapParams::paper_default(),
                sampler: SamplerChoice::Oracle,
                scenario: Scenario::calm(),
                traffic_router: RouterKind::Pastry,
                engine: Engine::Cycle,
                link: None,
                max_cycles: 100,
                stop_when_perfect: true,
                measure_every: 1,
                profile: false,
            },
            aging_sugar: None,
            newscast_bound_explicit: false,
        }
    }

    /// The probability of the scenario's whole-run loss window (0 when none):
    /// the value the legacy `drop_probability` field used to hold.
    pub fn drop_probability(&self) -> f64 {
        self.scenario.whole_run_loss()
    }

    /// The rate of the scenario's whole-run churn burst (0 when none): the
    /// value the legacy `churn_rate` field used to hold.
    pub fn churn_rate(&self) -> f64 {
        self.scenario.whole_run_churn()
    }

    /// The worker thread count implied by the engine selection.
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// The link model in force for this run: the explicit [`link`] selection
    /// when present, else the event engine's latency model, else the default
    /// constant model — exactly what the pre-topology code charged.
    ///
    /// [`link`]: ExperimentConfig::link
    pub fn link_model(&self) -> LatencyModel {
        if let Some(model) = self.link {
            return model;
        }
        match self.engine {
            Engine::Event { latency } => latency,
            _ => LatencyModel::default(),
        }
    }

    /// The node placement of the run's link model, shared by the transport,
    /// the measurement layer and the traffic driver. `None` for the
    /// placement-free (constant/uniform) models. Coordinates come from a
    /// salted private stream, so building the placement never perturbs the
    /// run's main RNG.
    pub fn placement(&self) -> Option<Arc<Placement>> {
        self.link_model()
            .build_placement(self.network_size, self.seed)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when the protocol parameters are invalid, the
    /// network has fewer than two nodes, a budget or cadence is zero, the
    /// engine selection is invalid, or the scenario timeline is rejected
    /// (out-of-range probabilities, empty windows, overlapping exclusive
    /// phases — see [`Scenario::validate`]).
    pub fn validate(&self) -> Result<(), InvalidParams> {
        self.params.validate()?;
        if let SamplerChoice::Newscast(p) = self.sampler {
            p.validate()?;
        }
        if self.network_size < 2 {
            return Err(InvalidParams::from_message(
                "network_size must be at least 2",
            ));
        }
        if self.max_cycles == 0 {
            return Err(InvalidParams::from_message("max_cycles must be positive"));
        }
        if self.measure_every == 0 {
            return Err(InvalidParams::from_message(
                "measure_every must be positive",
            ));
        }
        self.engine.validate()?;
        self.scenario.validate()?;
        self.link_model().validate()?;
        // Regional connectivity events only mean something under a placement:
        // without a Wan link model no region exists to outage or slow down,
        // so the event would silently do nothing.
        if self.scenario.has_regional_events() && !self.link_model().is_wan() {
            return Err(InvalidParams::from_message(
                "regional scenario events require a wan link model (regions only exist under a node placement)",
            ));
        }
        // A regional event naming a region the placement never populates
        // would likewise be a silent no-op: reject it while both are in scope.
        if let Some(spec) = self.link_model().placement_spec() {
            let regions = spec.region_count();
            let named = self
                .scenario
                .regional_outages()
                .map(|(_, region, _)| ("regional outage region", region))
                .chain(
                    self.scenario
                        .slow_link_windows()
                        .filter_map(|(_, region, _)| region.map(|r| ("slow links region", r))),
                );
            for (field, region) in named {
                if region >= regions {
                    return Err(InvalidParams::OutOfRange {
                        field,
                        value: f64::from(region),
                        min: 0.0,
                        max: f64::from(regions.saturating_sub(1)),
                    });
                }
            }
        }
        // An id-spray attack names its eclipse target by node index; a target
        // outside the registry would silently never act, so reject it here
        // (typed, no clamping) while the network size is in scope.
        if let Some(target) = self.scenario.build_adversary().and_then(|m| m.target()) {
            if target.as_usize() >= self.network_size {
                return Err(InvalidParams::NodeOutOfBounds {
                    field: "id_spray target",
                    node: target.as_usize() as u64,
                    network_size: self.network_size as u64,
                });
            }
        }
        Ok(())
    }
}

/// Non-consuming builder for [`ExperimentConfig`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    config: ExperimentConfig,
    /// Records that the [`ExperimentConfigBuilder::descriptor_max_age`] sugar
    /// ran (and with what bound), so a later `sampler()` call still inherits
    /// it — the sugar and the sampler selection compose in either order.
    aging_sugar: Option<Option<u64>>,
    /// Whether the selected NEWSCAST sampler carried its own explicit view
    /// aging bound — an explicit bound always wins over the sugar, in either
    /// call order.
    newscast_bound_explicit: bool,
}

impl ExperimentConfigBuilder {
    /// Sets the number of nodes.
    pub fn network_size(&mut self, n: usize) -> &mut Self {
        self.config.network_size = n;
        self
    }

    /// Sets the random seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Sets the bootstrapping-service parameters.
    pub fn params(&mut self, params: BootstrapParams) -> &mut Self {
        self.config.params = params;
        self
    }

    /// Selects the peer sampling implementation. If the aging sugar
    /// ([`ExperimentConfigBuilder::descriptor_max_age`]) ran earlier and the
    /// supplied NEWSCAST parameters carry no view aging bound of their own,
    /// the sugar's bound is applied — the two calls compose in either order.
    pub fn sampler(&mut self, sampler: SamplerChoice) -> &mut Self {
        self.config.sampler = sampler;
        if let SamplerChoice::Newscast(ref mut params) = self.config.sampler {
            self.newscast_bound_explicit = params.descriptor_max_age.is_some();
            if params.descriptor_max_age.is_none() {
                if let Some(sugar) = self.aging_sugar {
                    params.descriptor_max_age = sugar;
                }
            }
        }
        self
    }

    /// Sugar: sets (or, with `None`, disables) the descriptor aging bound on
    /// the protocol parameters — the failure detector that lets
    /// post-catastrophe scenarios recover. With a NEWSCAST sampler the same
    /// bound is applied to the sampler's views (regardless of whether the
    /// sampler is selected before or after this call; an explicit
    /// [`NewscastParams::descriptor_max_age`](bss_util::config::NewscastParams)
    /// value wins over the sugar).
    pub fn descriptor_max_age(&mut self, max_age: Option<u64>) -> &mut Self {
        self.config.params.descriptor_max_age = max_age;
        self.aging_sugar = Some(max_age);
        if let SamplerChoice::Newscast(ref mut params) = self.config.sampler {
            if !self.newscast_bound_explicit {
                params.descriptor_max_age = max_age;
            }
        }
        self
    }

    /// Replaces the scenario timeline wholesale.
    pub fn scenario(&mut self, scenario: Scenario) -> &mut Self {
        self.config.scenario = scenario;
        self
    }

    /// Appends one event to the scenario timeline.
    pub fn event(&mut self, event: crate::scenario::ScenarioEvent) -> &mut Self {
        self.config.scenario = std::mem::take(&mut self.config.scenario).with(event);
        self
    }

    /// Selects the routing substrate the scenario's traffic phases resolve
    /// their lookups with (Pastry-style greedy prefix descent by default).
    pub fn traffic_router(&mut self, router: RouterKind) -> &mut Self {
        self.config.traffic_router = router;
        self
    }

    /// Selects the engine executing the run.
    pub fn engine(&mut self, engine: Engine) -> &mut Self {
        self.config.engine = engine;
        self
    }

    /// Selects the link model explicitly (see [`ExperimentConfig::link`]).
    /// Required for [`LatencyModel::Wan`] on the cycle engines, where no
    /// event-engine latency selection exists to infer it from.
    pub fn link_model(&mut self, model: LatencyModel) -> &mut Self {
        self.config.link = Some(model);
        self
    }

    /// Legacy sugar: sets the per-message drop probability by installing (or,
    /// at zero, removing) a whole-run loss window on the scenario timeline.
    pub fn drop_probability(&mut self, p: f64) -> &mut Self {
        self.config.scenario.set_whole_run_loss(p);
        self
    }

    /// Legacy sugar: sets the per-cycle replacement churn rate by installing
    /// (or, at zero, removing) a whole-run churn burst on the scenario
    /// timeline.
    pub fn churn_rate(&mut self, rate: f64) -> &mut Self {
        self.config.scenario.set_whole_run_churn(rate);
        self
    }

    /// Sets the cycle budget.
    pub fn max_cycles(&mut self, cycles: u64) -> &mut Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Controls whether the run stops at perfect convergence.
    pub fn stop_when_perfect(&mut self, stop: bool) -> &mut Self {
        self.config.stop_when_perfect = stop;
        self
    }

    /// Sets the observer cadence (convergence measured every `cycles` cycles).
    pub fn measure_every(&mut self, cycles: u64) -> &mut Self {
        self.config.measure_every = cycles;
        self
    }

    /// Enables per-phase wall-time profiling on the cycle engines (see
    /// [`ExperimentConfig::profile`]).
    pub fn profile(&mut self, profile: bool) -> &mut Self {
        self.config.profile = profile;
        self
    }

    /// Legacy sugar: sets the number of worker threads by selecting
    /// [`Engine::Cycle`] (1) or [`Engine::ParallelCycle`] (more). The outcome
    /// is bit-for-bit identical at any value.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.engine = Engine::with_threads(threads);
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] when [`ExperimentConfig::validate`] fails.
    pub fn build(&self) -> Result<ExperimentConfig, InvalidParams> {
        self.config.validate()?;
        Ok(self.config.clone())
    }
}

/// End-of-run proximity statistics of the converged overlay under a WAN
/// placement: how geographically close the links nodes actually keep are,
/// against a seeded random-pairs baseline over the same population. A
/// bootstrap service that fills leaf sets purely by identifier distance
/// should land near the baseline (identifiers are location-blind); a ratio
/// well below 1 would indicate locality bias.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProximityReport {
    /// Mean coordinate distance over every stored leaf-set link.
    pub mean_leaf_distance: f64,
    /// Mean coordinate distance over the same number of random alive pairs,
    /// drawn from a salted private stream.
    pub mean_random_distance: f64,
    /// Number of leaf-set links measured.
    pub leaf_links: u64,
}

impl ProximityReport {
    /// `mean_leaf_distance / mean_random_distance` (0 when the baseline is
    /// degenerate).
    pub fn ratio(&self) -> f64 {
        if self.mean_random_distance == 0.0 {
            0.0
        } else {
            self.mean_leaf_distance / self.mean_random_distance
        }
    }
}

/// The serializable result of one simulation run, produced identically by all
/// engines and consumed by every experiment binary, the lookup evaluator and
/// the examples.
#[derive(Debug, Clone)]
pub struct RunReport {
    config: ExperimentConfig,
    leaf_series: Series,
    prefix_series: Series,
    dead_series: Series,
    poisoned_series: Series,
    eclipse_series: Series,
    in_degree_mean_series: Series,
    in_degree_max_series: Series,
    in_degree_gini_series: Series,
    dead_pointer_series: Series,
    /// One missing-leaf-proportion series per placement region (empty without
    /// a WAN link model).
    region_leaf_series: Vec<Series>,
    convergence_cycle: Option<u64>,
    degraded_cycle: Option<u64>,
    recovered_cycle: Option<u64>,
    time_to_eclipse: Option<u64>,
    cycles_executed: u64,
    final_state: NetworkConvergence,
    traffic: TrafficStats,
    lookups: Option<LookupTrafficReport>,
    proximity: Option<ProximityReport>,
    events_fired: Vec<(u64, String)>,
    phase_profile: Option<PhaseProfile>,
}

impl RunReport {
    /// The configuration that produced this report.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Per-cycle proportion of missing leaf-set entries (Figure 3/4, top panels).
    pub fn leaf_series(&self) -> &Series {
        &self.leaf_series
    }

    /// Per-cycle proportion of missing prefix-table entries (Figure 3/4, bottom
    /// panels).
    pub fn prefix_series(&self) -> &Series {
        &self.prefix_series
    }

    /// Per-cycle fraction of stored descriptors (leaf sets and prefix tables,
    /// over every alive node) that point at dead nodes — the *dead-descriptor
    /// fraction*, the recovery metric of the post-catastrophe scenarios. The
    /// measurement walks every table, so it only runs when the scenario can
    /// actually kill nodes (a churn burst or a catastrophe is on the
    /// timeline); in every other run the fraction is structurally zero and
    /// recorded as such without the walk.
    pub fn dead_series(&self) -> &Series {
        &self.dead_series
    }

    /// Per measured cycle, the fraction of all stored descriptors (leaf sets
    /// and prefix tables over every alive node) whose address is a converted
    /// adversary — the *poisoned-descriptor fraction*. Structurally zero (and
    /// recorded without the walk) on honest timelines.
    pub fn poisoned_series(&self) -> &Series {
        &self.poisoned_series
    }

    /// Per measured cycle, the fraction of the eclipse target's leaf-set slots
    /// held by adversarial addresses. Only populated when the scenario's
    /// adversary names a target (the id-spray behaviour); structurally zero
    /// otherwise.
    pub fn eclipse_series(&self) -> &Series {
        &self.eclipse_series
    }

    /// Per measured cycle, the mean in-degree of the sampling overlay (close
    /// to the view size when healthy). Empty when the sampler maintains no
    /// overlay to measure (the oracle).
    pub fn in_degree_mean_series(&self) -> &Series {
        &self.in_degree_mean_series
    }

    /// Per measured cycle, the largest in-degree any alive node holds in the
    /// sampling overlay — a hub attack spikes this. Empty under the oracle
    /// sampler.
    pub fn in_degree_max_series(&self) -> &Series {
        &self.in_degree_max_series
    }

    /// Per measured cycle, the Gini coefficient of the sampling overlay's
    /// in-degree distribution (0 balanced, → 1 hub). Empty under the oracle
    /// sampler.
    pub fn in_degree_gini_series(&self) -> &Series {
        &self.in_degree_gini_series
    }

    /// Per measured cycle, the fraction of sampler view entries pointing at
    /// departed nodes. Empty under the oracle sampler.
    pub fn dead_pointer_series(&self) -> &Series {
        &self.dead_pointer_series
    }

    /// The first measured cycle at which the eclipse target's leaf set was
    /// *entirely* adversarial (eclipse fraction at 1.0) — the attack's
    /// time-to-eclipse. `None` when the eclipse never completed (or no attack
    /// targeted a node).
    pub fn time_to_eclipse(&self) -> Option<u64> {
        self.time_to_eclipse
    }

    /// Whether the eclipse completed at some measured cycle.
    pub fn eclipsed(&self) -> bool {
        self.time_to_eclipse.is_some()
    }

    /// The first measured cycle at which stale (dead-node) descriptors
    /// appeared in the tables — typically the catastrophe cycle.
    pub fn degraded_cycle(&self) -> Option<u64> {
        self.degraded_cycle
    }

    /// The first measured cycle after the *last* degradation at which the
    /// dead-descriptor fraction returned to zero — and stayed there to the end
    /// of the run: every trace of the failed nodes has been aged out or
    /// displaced. `None` while stale descriptors linger (the detector-free
    /// protocol's permanent state after a catastrophe) or when a later event
    /// re-degraded the overlay and it never came back — a re-degradation voids
    /// a previously recorded recovery.
    pub fn recovered_cycle(&self) -> Option<u64> {
        self.recovered_cycle
    }

    /// Number of cycles the overlay took to purge every dead descriptor after
    /// the first degradation (`recovered - degraded`), when it recovered.
    pub fn cycles_to_recover(&self) -> Option<u64> {
        match (self.degraded_cycle, self.recovered_cycle) {
            (Some(degraded), Some(recovered)) => Some(recovered - degraded),
            _ => None,
        }
    }

    /// The first cycle at which every node had perfect tables, if that happened
    /// within the budget.
    pub fn convergence_cycle(&self) -> Option<u64> {
        self.convergence_cycle
    }

    /// Whether the run reached perfect tables at every node.
    pub fn converged(&self) -> bool {
        self.convergence_cycle.is_some()
    }

    /// Number of cycles actually executed.
    pub fn cycles_executed(&self) -> u64 {
        self.cycles_executed
    }

    /// The missing-entry counts measured after the last executed cycle.
    pub fn final_state(&self) -> NetworkConvergence {
        self.final_state
    }

    /// Traffic statistics of the run.
    pub fn traffic(&self) -> &TrafficStats {
        &self.traffic
    }

    /// The lookup-traffic summary (totals plus the per-measured-cycle success,
    /// hop and latency series). `None` — and cost-free — unless the scenario
    /// scheduled a [`TrafficPhase`](crate::scenario::ScenarioEvent).
    pub fn lookups(&self) -> Option<&LookupTrafficReport> {
        self.lookups.as_ref()
    }

    /// Per placement region, the per-measured-cycle proportion of missing
    /// leaf-set entries over that region's nodes. Empty — and cost-free —
    /// without a WAN link model; with one, position `r` is region `r`.
    pub fn region_leaf_series(&self) -> &[Series] {
        &self.region_leaf_series
    }

    /// End-of-run leaf-set proximity statistics under the WAN placement;
    /// `None` without one.
    pub fn proximity(&self) -> Option<&ProximityReport> {
        self.proximity.as_ref()
    }

    /// The scenario events that took effect, as `(cycle, description)` pairs.
    pub fn events_fired(&self) -> &[(u64, String)] {
        &self.events_fired
    }

    /// Per-phase wall time accumulated by the engine, when the run was
    /// configured with [`ExperimentConfig::profile`] and executed on a cycle
    /// engine (the event engine has no phase structure to attribute).
    pub fn phase_profile(&self) -> Option<&PhaseProfile> {
        self.phase_profile.as_ref()
    }

    /// Renders the report as a self-contained JSON document (engine, scenario,
    /// convergence, traffic, fired events and both per-cycle series). This is
    /// the artifact format the scenario smoke suite uploads from CI.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"engine\": \"{}\",", self.config.engine.label());
        let _ = writeln!(out, "  \"threads\": {},", self.config.threads());
        let _ = writeln!(out, "  \"scenario\": \"{}\",", self.config.scenario);
        let _ = writeln!(out, "  \"network_size\": {},", self.config.network_size);
        let _ = writeln!(out, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(out, "  \"max_cycles\": {},", self.config.max_cycles);
        let _ = writeln!(out, "  \"cycles_executed\": {},", self.cycles_executed);
        let optional =
            |cycle: Option<u64>| cycle.map_or_else(|| "null".to_owned(), |c| c.to_string());
        let _ = writeln!(
            out,
            "  \"convergence_cycle\": {},",
            optional(self.convergence_cycle)
        );
        let _ = writeln!(
            out,
            "  \"degraded_cycle\": {},",
            optional(self.degraded_cycle)
        );
        let _ = writeln!(
            out,
            "  \"recovered_cycle\": {},",
            optional(self.recovered_cycle)
        );
        let _ = writeln!(
            out,
            "  \"cycles_to_recover\": {},",
            optional(self.cycles_to_recover())
        );
        let _ = writeln!(
            out,
            "  \"time_to_eclipse\": {},",
            optional(self.time_to_eclipse)
        );
        let _ = writeln!(out, "  \"eclipsed\": {},", self.eclipsed());
        let _ = writeln!(
            out,
            "  \"final_missing_leaf\": {:.6e},",
            self.final_state.leaf_proportion()
        );
        let _ = writeln!(
            out,
            "  \"final_missing_prefix\": {:.6e},",
            self.final_state.prefix_proportion()
        );
        let _ = writeln!(
            out,
            "  \"traffic\": {{\"requests_sent\": {}, \"requests_delivered\": {}, \
             \"answers_sent\": {}, \"answers_delivered\": {}, \"mean_message_size\": {:.2}, \
             \"max_message_size\": {}}},",
            self.traffic.requests_sent,
            self.traffic.requests_delivered,
            self.traffic.answers_sent,
            self.traffic.answers_delivered,
            self.traffic.mean_message_size(),
            self.traffic.max_message_size(),
        );
        if let Some(lookups) = self.lookups.as_ref() {
            let _ = writeln!(
                out,
                "  \"lookup_traffic\": {{\"router\": \"{}\", \"issued\": {}, \
                 \"delivered\": {}, \"success_rate\": {:.6}, \"mean_hops\": {:.6}, \
                 \"max_hops\": {}}},",
                lookups.router(),
                lookups.issued(),
                lookups.delivered(),
                lookups.success_rate(),
                lookups.mean_hops(),
                lookups.max_hops(),
            );
        }
        match self.proximity.as_ref() {
            Some(proximity) => {
                let _ = writeln!(
                    out,
                    "  \"proximity\": {{\"mean_leaf_distance\": {:.6}, \
                     \"mean_random_distance\": {:.6}, \"ratio\": {:.6}, \
                     \"leaf_links\": {}}},",
                    proximity.mean_leaf_distance,
                    proximity.mean_random_distance,
                    proximity.ratio(),
                    proximity.leaf_links,
                );
            }
            None => {
                let _ = writeln!(out, "  \"proximity\": null,");
            }
        }
        match self.phase_profile.as_ref() {
            Some(profile) => {
                let _ = writeln!(
                    out,
                    "  \"phase_profile\": {{\"plan_seconds\": {:.6}, \"execute_seconds\": {:.6}, \
                     \"commit_seconds\": {:.6}, \"measure_seconds\": {:.6}, \
                     \"profiled_cycles\": {}}},",
                    profile.plan.as_secs_f64(),
                    profile.execute.as_secs_f64(),
                    profile.commit.as_secs_f64(),
                    profile.measure.as_secs_f64(),
                    profile.cycles,
                );
            }
            None => {
                let _ = writeln!(out, "  \"phase_profile\": null,");
            }
        }
        out.push_str("  \"events\": [");
        for (position, (cycle, description)) in self.events_fired.iter().enumerate() {
            if position > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"cycle\": {cycle}, \"event\": \"{description}\"}}");
        }
        out.push_str("],\n");
        let mut series_list: Vec<(String, &Series)> = vec![
            ("leaf_series".to_owned(), &self.leaf_series),
            ("prefix_series".to_owned(), &self.prefix_series),
            ("dead_series".to_owned(), &self.dead_series),
            ("poisoned_series".to_owned(), &self.poisoned_series),
            ("eclipse_series".to_owned(), &self.eclipse_series),
            (
                "in_degree_mean_series".to_owned(),
                &self.in_degree_mean_series,
            ),
            (
                "in_degree_max_series".to_owned(),
                &self.in_degree_max_series,
            ),
            (
                "in_degree_gini_series".to_owned(),
                &self.in_degree_gini_series,
            ),
            ("dead_pointer_series".to_owned(), &self.dead_pointer_series),
        ];
        for (region, series) in self.region_leaf_series.iter().enumerate() {
            series_list.push((format!("leaf_series_r{region}"), series));
        }
        if let Some(lookups) = self.lookups.as_ref() {
            series_list.extend([
                ("lookup_success_series".to_owned(), lookups.success_series()),
                (
                    "lookup_hop_mean_series".to_owned(),
                    lookups.hop_mean_series(),
                ),
                ("lookup_hop_max_series".to_owned(), lookups.hop_max_series()),
                (
                    "lookup_latency_p50_series".to_owned(),
                    lookups.latency_p50_series(),
                ),
                (
                    "lookup_latency_p95_series".to_owned(),
                    lookups.latency_p95_series(),
                ),
                (
                    "lookup_latency_p99_series".to_owned(),
                    lookups.latency_p99_series(),
                ),
            ]);
            for (region, series) in lookups.region_success_series().iter().enumerate() {
                series_list.push((format!("lookup_success_series_r{region}"), series));
            }
            for (region, series) in lookups.region_p50_series().iter().enumerate() {
                series_list.push((format!("lookup_latency_p50_series_r{region}"), series));
            }
            for (region, series) in lookups.region_p99_series().iter().enumerate() {
                series_list.push((format!("lookup_latency_p99_series_r{region}"), series));
            }
        }
        let last = series_list.len() - 1;
        for (index, (name, series)) in series_list.into_iter().enumerate() {
            let _ = write!(out, "  \"{name}\": [");
            for (position, (cycle, value)) in series.points().iter().enumerate() {
                if position > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "[{cycle}, {value:.6e}]");
            }
            out.push_str(if index < last { "],\n" } else { "]\n" });
        }
        out.push_str("}\n");
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "N={} seed={} drop={:.0}% churn={:.1}%/cycle: ",
            self.config.network_size,
            self.config.seed,
            self.config.drop_probability() * 100.0,
            self.config.churn_rate() * 100.0
        )?;
        match self.convergence_cycle {
            Some(cycle) => write!(f, "perfect tables after {cycle} cycles"),
            None => write!(
                f,
                "not converged after {} cycles (missing leaf {:.2e}, prefix {:.2e})",
                self.cycles_executed,
                self.final_state.leaf_proportion(),
                self.final_state.prefix_proportion()
            ),
        }
    }
}

/// A frozen copy of every node's bootstrapped state at the end of a run, indexed
/// by identifier. This is what routing-substrate consumers (`bss-overlay`) operate
/// on: it is exactly the information a real deployment would hand over to Pastry /
/// Kademlia / Bamboo maintenance once the bootstrap completes.
#[derive(Debug, Clone, Default)]
pub struct PopulationSnapshot {
    nodes: Vec<crate::node::BootstrapNode<bss_sim::network::NodeIndex>>,
    index_by_id: std::collections::HashMap<bss_util::id::NodeId, usize>,
}

impl PopulationSnapshot {
    /// Builds a snapshot from the alive, initialised nodes of a protocol run.
    /// Both engines expose the required [`EngineContext`].
    pub fn capture<S: PeerSampler>(protocol: &BootstrapProtocol<S>, ctx: &EngineContext) -> Self {
        let mut snapshot = PopulationSnapshot::default();
        for node in ctx.network.alive_indices() {
            if let Some(state) = protocol.node(node) {
                snapshot
                    .index_by_id
                    .insert(state.id(), snapshot.nodes.len());
                snapshot.nodes.push(state);
            }
        }
        snapshot
    }

    /// Number of nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All identifiers in the snapshot, in capture order.
    pub fn ids(&self) -> impl Iterator<Item = bss_util::id::NodeId> + '_ {
        self.nodes.iter().map(|n| n.id())
    }

    /// The node state with the given identifier, if present.
    pub fn node_by_id(
        &self,
        id: bss_util::id::NodeId,
    ) -> Option<&crate::node::BootstrapNode<bss_sim::network::NodeIndex>> {
        self.index_by_id.get(&id).map(|&i| &self.nodes[i])
    }

    /// The node state at a dense position (useful for picking random nodes).
    pub fn node_at(
        &self,
        position: usize,
    ) -> Option<&crate::node::BootstrapNode<bss_sim::network::NodeIndex>> {
        self.nodes.get(position)
    }
}

/// Per-run measurement bookkeeping shared by every engine path: cadenced
/// convergence measurement (incremental when membership is static), the two
/// figure series, the perfection stop and observer dispatch.
struct MeasurementDriver<'a> {
    config: &'a ExperimentConfig,
    /// No event ever degrades built tables (membership changes *or*
    /// re-bootstrap orders): a recorded convergence cycle is final.
    tables_stable: bool,
    /// Some event can kill nodes (churn or catastrophe), so dead descriptors
    /// are possible and worth the per-cycle table walk; otherwise the
    /// dead-descriptor fraction is recorded as a structural zero.
    deaths_possible: bool,
    /// A Byzantine conversion is on the timeline, so poisoned descriptors are
    /// possible and worth the per-cycle table walk; otherwise the poisoned
    /// fraction (and the eclipse fraction) is a structural zero.
    adversary_possible: bool,
    /// The node an id-spray adversary eclipses, when the timeline carries one.
    eclipse_target: Option<NodeIndex>,
    static_oracle: Option<ConvergenceOracle>,
    tracker: ConvergenceTracker,
    /// The WAN node placement, when the link model defines one — the gate for
    /// per-region measurement. Shared with the transport and the network.
    placement: Option<Arc<Placement>>,
    /// Reused per-region aggregation buckets (one per placement region).
    region_buckets: Vec<NetworkConvergence>,
    /// Reused rehydration target of the per-region walk (WAN runs only).
    region_scratch: Option<BootstrapNode<NodeIndex>>,
    leaf_series: Series,
    prefix_series: Series,
    dead_series: Series,
    poisoned_series: Series,
    eclipse_series: Series,
    in_degree_mean_series: Series,
    in_degree_max_series: Series,
    in_degree_gini_series: Series,
    dead_pointer_series: Series,
    region_leaf_series: Vec<Series>,
    convergence_cycle: Option<u64>,
    degraded_cycle: Option<u64>,
    recovered_cycle: Option<u64>,
    time_to_eclipse: Option<u64>,
    final_state: NetworkConvergence,
    events_fired: Vec<(u64, String)>,
    /// The live lookup-traffic driver; built only when the scenario schedules
    /// a traffic phase, so every other run pays nothing.
    lookup_traffic: Option<LookupTraffic>,
}

/// The eclipse is complete when every leaf-set slot of the target points at an
/// adversary. The fraction is a ratio of small integers, so exact comparison
/// with 1.0 is meaningful.
const ECLIPSE_THRESHOLD: f64 = 1.0;

impl<'a> MeasurementDriver<'a> {
    fn new<S: PeerSampler>(
        config: &'a ExperimentConfig,
        protocol: &BootstrapProtocol<S>,
        ctx: &EngineContext,
        placement: Option<&Arc<Placement>>,
    ) -> Self {
        // Under membership churn the live population changes, so the oracle has
        // to be rebuilt per measurement; with static membership one oracle
        // serves the whole run and the convergence can be tracked incrementally
        // over the protocol's dirty set.
        let membership_stable = !config.scenario.perturbs_membership();
        let static_oracle = membership_stable.then(|| protocol.oracle_for(ctx));
        MeasurementDriver {
            config,
            // An adversary corrupts tables without perturbing membership, so a
            // convergence recorded before the attack window must not be final.
            tables_stable: !config.scenario.perturbs_tables() && !config.scenario.has_adversary(),
            deaths_possible: config.scenario.can_kill_nodes(),
            adversary_possible: config.scenario.has_adversary(),
            eclipse_target: config.scenario.build_adversary().and_then(|m| m.target()),
            static_oracle,
            tracker: ConvergenceTracker::new(),
            placement: placement.cloned(),
            region_buckets: Vec::new(),
            region_scratch: placement.map(|_| {
                let placeholder = Descriptor::new(NodeId::new(0), NodeIndex::new(0), 0);
                BootstrapNode::new(placeholder, &config.params)
                    .expect("parameters validated by the config builder")
            }),
            leaf_series: Series::new("missing_leafset_proportion"),
            prefix_series: Series::new("missing_prefix_proportion"),
            dead_series: Series::new("dead_descriptor_fraction"),
            poisoned_series: Series::new("poisoned_descriptor_fraction"),
            eclipse_series: Series::new("eclipse_fraction"),
            in_degree_mean_series: Series::new("in_degree_mean"),
            in_degree_max_series: Series::new("in_degree_max"),
            in_degree_gini_series: Series::new("in_degree_gini"),
            dead_pointer_series: Series::new("dead_pointer_fraction"),
            region_leaf_series: placement.map_or_else(Vec::new, |p| {
                (0..p.region_count())
                    .map(|region| Series::new(format!("missing_leafset_r{region}")))
                    .collect()
            }),
            convergence_cycle: None,
            degraded_cycle: None,
            recovered_cycle: None,
            time_to_eclipse: None,
            final_state: NetworkConvergence::default(),
            events_fired: Vec::new(),
            lookup_traffic: LookupTraffic::for_config(config),
        }
    }

    /// Runs the per-cycle bookkeeping; returns `Break` when the run should
    /// stop (perfection reached with nothing scheduled ahead, or the observer
    /// asked to stop).
    fn observe_cycle<S: PeerSampler>(
        &mut self,
        protocol: &mut BootstrapProtocol<S>,
        ctx: &EngineContext,
        cycle: u64,
        observer: &mut dyn Observer,
    ) -> ControlFlow<()> {
        for event in self.config.scenario.events_starting_at(cycle) {
            observer.on_scenario_event(cycle, event);
            self.events_fired.push((cycle, event.to_string()));
        }
        // The lookup workload runs every cycle a traffic phase is active —
        // cadence only coarsens the *series*, not the traffic itself. It rides
        // in the sequential observer phase of every engine, so the parallel
        // cycle engine stays bit-for-bit deterministic.
        if let Some(traffic) = self.lookup_traffic.as_mut() {
            traffic.drive_cycle(protocol, ctx, cycle);
        }
        // Off-cadence cycles skip the (global) convergence pass entirely.
        if cycle % self.config.measure_every != 0 {
            return ControlFlow::Continue(());
        }
        if let Some(traffic) = self.lookup_traffic.as_mut() {
            traffic.flush_window(cycle);
        }
        let measured = match &self.static_oracle {
            Some(oracle) => protocol.measure_incremental(oracle, &mut self.tracker, ctx),
            None => {
                let oracle = protocol.oracle_for(ctx);
                protocol.measure(&oracle, ctx)
            }
        };
        self.leaf_series.push(cycle, measured.leaf_proportion());
        self.prefix_series.push(cycle, measured.prefix_proportion());
        self.measure_regions(protocol, ctx, cycle);
        // The dead-descriptor fraction: only a scenario with churn or a
        // catastrophe can ever kill a node, so every other run (calm, joins,
        // re-bootstrap) records a structural zero without walking the tables.
        let dead_fraction = if !self.deaths_possible {
            0.0
        } else {
            let (dead, total) = protocol.dead_descriptor_stats(ctx);
            if total == 0 {
                0.0
            } else {
                dead as f64 / total as f64
            }
        };
        self.dead_series.push(cycle, dead_fraction);
        // The attack metrics: like the dead-descriptor fraction, honest
        // timelines record structural zeros without walking the tables.
        let (poisoned_fraction, eclipse_fraction) = if !self.adversary_possible {
            (0.0, 0.0)
        } else {
            let (poisoned, total) = protocol.poisoned_stats(ctx);
            let poisoned_fraction = if total == 0 {
                0.0
            } else {
                poisoned as f64 / total as f64
            };
            let eclipse_fraction = self
                .eclipse_target
                .map_or(0.0, |target| protocol.eclipse_fraction(target));
            (poisoned_fraction, eclipse_fraction)
        };
        self.poisoned_series.push(cycle, poisoned_fraction);
        self.eclipse_series.push(cycle, eclipse_fraction);
        if self.eclipse_target.is_some()
            && eclipse_fraction >= ECLIPSE_THRESHOLD
            && self.time_to_eclipse.is_none()
        {
            self.time_to_eclipse = Some(cycle);
        }
        // Overlay-quality diagnostics, whenever the sampler maintains an
        // overlay to measure (a real NEWSCAST instance; the oracle has none).
        if let Some(quality) = protocol.sampling_quality(&ctx.network) {
            self.in_degree_mean_series
                .push(cycle, quality.in_degree_mean);
            self.in_degree_max_series.push(cycle, quality.in_degree_max);
            self.in_degree_gini_series
                .push(cycle, quality.in_degree_gini);
            self.dead_pointer_series
                .push(cycle, quality.dead_pointer_fraction);
        }
        if dead_fraction > 0.0 {
            if self.degraded_cycle.is_none() {
                self.degraded_cycle = Some(cycle);
            }
            // A later degradation (second failure, ongoing churn) voids a
            // previously recorded recovery: "recovered" always refers to the
            // state the run actually ended in.
            self.recovered_cycle = None;
        } else if self.degraded_cycle.is_some() && self.recovered_cycle.is_none() {
            self.recovered_cycle = Some(cycle);
        }
        self.final_state = measured;
        let mut flow = observer.on_cycle(cycle, &measured);
        if measured.is_perfect() {
            if self.convergence_cycle.is_none() {
                self.convergence_cycle = Some(cycle);
            }
            // The stop never fires while a scenario transition lies ahead: a
            // network perfect at cycle 8 must still face the catastrophe
            // scheduled for cycle 12.
            if self.config.stop_when_perfect && !self.config.scenario.changes_after(cycle) {
                flow = ControlFlow::Break(());
            }
        } else {
            // Under membership churn or a re-bootstrap order a previously
            // perfect network can degrade.
            self.convergence_cycle = self.convergence_cycle.filter(|_| self.tables_stable);
        }
        flow
    }

    /// Per-region convergence: one table walk over the alive population,
    /// bucketing each node's counts by its placement region. Only WAN runs
    /// (a placement is attached) pay the walk; every other run returns
    /// immediately.
    fn measure_regions<S: PeerSampler>(
        &mut self,
        protocol: &BootstrapProtocol<S>,
        ctx: &EngineContext,
        cycle: u64,
    ) {
        let Some(placement) = self.placement.clone() else {
            return;
        };
        let scratch = self
            .region_scratch
            .as_mut()
            .expect("scratch is built whenever a placement is");
        self.region_buckets.clear();
        self.region_buckets.resize(
            placement.region_count() as usize,
            NetworkConvergence::default(),
        );
        // Under churn the static oracle is absent; rebuild one for this pass,
        // mirroring what the global measurement just did.
        let rebuilt;
        let oracle = match self.static_oracle.as_ref() {
            Some(oracle) => oracle,
            None => {
                rebuilt = protocol.oracle_for(ctx);
                &rebuilt
            }
        };
        for node in ctx.network.alive_indices() {
            if protocol.unpack_node_into(node, scratch) {
                let region = placement.region(node.as_usize()) as usize;
                self.region_buckets[region].accumulate(oracle.measure_node(scratch));
            }
        }
        for (region, bucket) in self.region_buckets.iter().enumerate() {
            self.region_leaf_series[region].push(cycle, bucket.leaf_proportion());
        }
    }

    fn into_report(
        self,
        cycles_executed: u64,
        traffic: TrafficStats,
        phase_profile: Option<PhaseProfile>,
        proximity: Option<ProximityReport>,
    ) -> RunReport {
        RunReport {
            config: self.config.clone(),
            leaf_series: self.leaf_series,
            prefix_series: self.prefix_series,
            dead_series: self.dead_series,
            poisoned_series: self.poisoned_series,
            eclipse_series: self.eclipse_series,
            in_degree_mean_series: self.in_degree_mean_series,
            in_degree_max_series: self.in_degree_max_series,
            in_degree_gini_series: self.in_degree_gini_series,
            dead_pointer_series: self.dead_pointer_series,
            region_leaf_series: self.region_leaf_series,
            convergence_cycle: self.convergence_cycle,
            degraded_cycle: self.degraded_cycle,
            recovered_cycle: self.recovered_cycle,
            time_to_eclipse: self.time_to_eclipse,
            cycles_executed,
            final_state: self.final_state,
            traffic,
            lookups: self.lookup_traffic.map(LookupTraffic::into_report),
            proximity,
            events_fired: self.events_fired,
            phase_profile,
        }
    }
}

/// Salt of the proximity baseline's private draw stream (ASCII "baseline"),
/// disjoint from the engine, protocol and traffic streams.
const PROXIMITY_SALT: u64 = 0x6261_7365_6c69_6e65;

/// End-of-run proximity measurement: mean coordinate distance over every
/// stored leaf-set link, against the same number of random alive pairs drawn
/// from a salted private stream. WAN runs only (the caller gates on the
/// placement).
fn measure_proximity<S: PeerSampler>(
    protocol: &BootstrapProtocol<S>,
    ctx: &EngineContext,
    placement: &Placement,
    seed: u64,
) -> ProximityReport {
    let alive: Vec<NodeIndex> = ctx.network.alive_indices().collect();
    let mut links = 0u64;
    let mut leaf_sum = 0.0;
    for &node in &alive {
        if let Some(packed) = protocol.packed_node(node) {
            for entry in packed.leaf_entries() {
                leaf_sum += placement.distance(node.as_usize(), entry.address() as usize);
                links += 1;
            }
        }
    }
    let mut rng = SimRng::seed_from(seed ^ PROXIMITY_SALT);
    let mut random_sum = 0.0;
    if alive.len() >= 2 {
        for _ in 0..links {
            let a = alive[rng.index(alive.len())];
            let mut b = a;
            while b == a {
                b = alive[rng.index(alive.len())];
            }
            random_sum += placement.distance(a.as_usize(), b.as_usize());
        }
    }
    ProximityReport {
        mean_leaf_distance: if links == 0 {
            0.0
        } else {
            leaf_sum / links as f64
        },
        mean_random_distance: if links == 0 {
            0.0
        } else {
            random_sum / links as f64
        },
        leaf_links: links,
    }
}

/// The engine-agnostic entry point: drives `protocol` through `config`'s
/// scenario on whichever engine the configuration selects, reporting every
/// measured cycle and scenario transition to `observer`.
///
/// All engines share the same measurement semantics (cadence, perfection stop,
/// series) and produce the same [`RunReport`] shape; the cycle engines are
/// additionally bit-for-bit deterministic across thread counts.
pub fn run_scenario<S: PeerSampler>(
    config: &ExperimentConfig,
    protocol: &mut BootstrapProtocol<S>,
    observer: &mut dyn Observer,
) -> (RunReport, PopulationSnapshot) {
    // Compile the scenario's Byzantine conversion (when one is on the
    // timeline) into the adversary model the protocol and the sampler consult
    // at plan time. The churn layer marks the converted nodes when the
    // conversion fires; installation itself is behaviour-neutral.
    if let Some(model) = config.scenario.build_adversary() {
        protocol.install_adversary(model);
    }
    match config.engine {
        Engine::Cycle | Engine::ParallelCycle { .. } => {
            run_on_cycle_engine(config, protocol, observer)
        }
        Engine::Event { .. } => run_on_event_engine(config, protocol, observer),
    }
}

/// Runs on the (possibly parallel) cycle engine — the compatibility path whose
/// output is byte-identical to the pre-scenario code for desugared legacy
/// configurations.
fn run_on_cycle_engine<S: PeerSampler>(
    config: &ExperimentConfig,
    protocol: &mut BootstrapProtocol<S>,
    observer: &mut dyn Observer,
) -> (RunReport, PopulationSnapshot) {
    let mut rng = SimRng::seed_from(config.seed);
    let mut network = Network::with_random_ids(config.network_size, &mut rng);
    let placement = config.placement();
    if let Some(placement) = placement.as_ref() {
        network.set_placement(Arc::clone(placement));
    }
    let link_model = config.link_model();
    let mut engine = CycleEngine::new(network, rng).with_transport(Box::new(
        config.scenario.build_link_transport(
            config.network_size,
            &link_model,
            placement.as_ref(),
            config.seed,
        ),
    ));
    if let Some(churn) = config.scenario.build_churn() {
        engine = engine.with_churn(churn);
    }

    if config.profile {
        engine.enable_profiling();
    }
    protocol.init_all(engine.context_mut());
    let mut driver = MeasurementDriver::new(config, protocol, engine.context(), placement.as_ref());

    let cycles_executed = engine.run_parallel_with_observer(
        protocol,
        config.max_cycles,
        config.engine.threads(),
        |protocol, ctx, cycle| driver.observe_cycle(protocol, ctx, cycle, observer),
    );

    let snapshot = PopulationSnapshot::capture(protocol, engine.context());
    let proximity = placement
        .as_ref()
        .map(|p| measure_proximity(protocol, engine.context(), p, config.seed));
    let phase_profile = engine.phase_profile().copied();
    (
        driver.into_report(
            cycles_executed,
            protocol.traffic().clone(),
            phase_profile,
            proximity,
        ),
        snapshot,
    )
}

/// Runs on the discrete-event engine: one `run_until` slice per cycle Δ, with
/// scenario membership events applied and measured at the slice boundaries.
/// Nodes wake on their own timers at random phases within Δ and messages
/// travel with the configured per-link latency.
fn run_on_event_engine<S: PeerSampler>(
    config: &ExperimentConfig,
    protocol: &mut BootstrapProtocol<S>,
    observer: &mut dyn Observer,
) -> (RunReport, PopulationSnapshot) {
    let mut rng = SimRng::seed_from(config.seed);
    let mut network = Network::with_random_ids(config.network_size, &mut rng);
    let placement = config.placement();
    if let Some(placement) = placement.as_ref() {
        network.set_placement(Arc::clone(placement));
    }
    let link_model = config.link_model();
    let transport = Box::new(config.scenario.build_link_transport(
        config.network_size,
        &link_model,
        placement.as_ref(),
        config.seed,
    ));
    let mut engine: EventEngine<BootstrapMessage> =
        EventEngine::new(network, rng).with_transport(transport);
    let mut churn = config.scenario.build_churn();

    protocol.init_all(engine.context_mut());
    let mut driver = MeasurementDriver::new(config, protocol, engine.context(), placement.as_ref());
    // Start the initial membership *before* applying cycle-0 scenario events:
    // joiners added at cycle 0 are started individually below, and must not be
    // started a second time by run_until's deferred start phase.
    engine.start(protocol);

    let delta = config.params.cycle_millis;
    let mut cycles_executed = 0;
    for cycle in 0..config.max_cycles {
        let (joined, any_departed) = {
            let ctx = engine.context_mut();
            ctx.transport.advance_to_cycle(cycle);
            match churn.as_mut() {
                Some(model) => {
                    let events = model.apply(cycle, &mut ctx.network, &mut ctx.rng);
                    for &node in &events.departed {
                        bss_sim::engine::cycle::CycleProtocol::node_departed(
                            protocol, node, cycle, ctx,
                        );
                    }
                    for &node in &events.joined {
                        bss_sim::engine::cycle::CycleProtocol::node_joined(
                            protocol, node, cycle, ctx,
                        );
                    }
                    // Recovery orders: survivors re-initialise in place. They
                    // keep their running exchange timers — re-bootstrapping
                    // replaces table state, not the node's schedule.
                    for &node in &events.rebootstrapped {
                        bss_sim::engine::cycle::CycleProtocol::node_rebootstrapped(
                            protocol, node, cycle, ctx,
                        );
                    }
                    // Byzantine conversions: the node stays up but starts
                    // playing its adversarial behaviour from this cycle on.
                    for &node in &events.converted {
                        bss_sim::engine::cycle::CycleProtocol::node_converted(
                            protocol, node, cycle, ctx,
                        );
                    }
                    (events.joined, !events.departed.is_empty())
                }
                None => (Vec::new(), false),
            }
        };
        // Nodes killed this cycle must generate zero traffic from now on:
        // purge their pending exchange timers and in-flight answer slots from
        // the event queue (they used to linger until their due time).
        if any_departed {
            engine.cancel_dead();
        }
        // Late joiners schedule their first exchange timers from "now".
        for node in joined {
            engine.start_node(protocol, node);
        }

        engine.run_until(protocol, (cycle + 1) * delta);
        cycles_executed = cycle + 1;
        if driver
            .observe_cycle(protocol, engine.context(), cycle, observer)
            .is_break()
        {
            break;
        }
    }

    let snapshot = PopulationSnapshot::capture(protocol, engine.context());
    let proximity = placement
        .as_ref()
        .map(|p| measure_proximity(protocol, engine.context(), p, config.seed));
    (
        driver.into_report(cycles_executed, protocol.traffic().clone(), None, proximity),
        snapshot,
    )
}

/// A single, ready-to-run simulation.
#[derive(Debug, Clone)]
pub struct Experiment {
    config: ExperimentConfig,
}

impl Experiment {
    /// Creates an experiment from a validated configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Experiment { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Runs the simulation to completion and returns the recorded report.
    pub fn run(&self) -> RunReport {
        self.run_with_snapshot().0
    }

    /// Runs the simulation and additionally returns a [`PopulationSnapshot`] of
    /// every node's final leaf set and prefix table, ready to be handed to the
    /// routing-substrate consumers in `bss-overlay`.
    pub fn run_with_snapshot(&self) -> (RunReport, PopulationSnapshot) {
        self.run_observed(&mut NullObserver)
    }

    /// Runs the simulation with a caller-supplied [`Observer`] receiving every
    /// measured cycle and scenario transition.
    pub fn run_observed(&self, observer: &mut dyn Observer) -> (RunReport, PopulationSnapshot) {
        match self.config.sampler {
            SamplerChoice::Oracle => {
                let mut protocol = BootstrapProtocol::new(self.config.params, OracleSampler::new());
                run_scenario(&self.config, &mut protocol, observer)
            }
            SamplerChoice::Newscast(params) => {
                let mut protocol =
                    BootstrapProtocol::new(self.config.params, NewscastProtocol::new(params))
                        .with_sampler_steps();
                run_scenario(&self.config, &mut protocol, observer)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{AdversaryBehavior, PartitionSpec, Phase, ScenarioEvent};

    #[test]
    fn builder_validates_inputs() {
        assert!(ExperimentConfig::builder().network_size(1).build().is_err());
        assert!(ExperimentConfig::builder().max_cycles(0).build().is_err());
        assert!(ExperimentConfig::builder()
            .drop_probability(1.5)
            .build()
            .is_err());
        assert!(ExperimentConfig::builder()
            .churn_rate(-0.1)
            .build()
            .is_err());
        assert!(ExperimentConfig::builder().threads(0).build().is_err());
        // Typed scenario rejections surface through the config builder.
        let err = ExperimentConfig::builder()
            .event(ScenarioEvent::LossWindow {
                phase: Phase::new(5, 5),
                probability: 0.1,
            })
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            bss_util::config::InvalidParams::EmptyWindow { .. }
        ));
        let ok = ExperimentConfig::builder()
            .network_size(64)
            .seed(3)
            .max_cycles(50)
            .build()
            .unwrap();
        assert_eq!(ok.network_size, 64);
        assert_eq!(ok.seed, 3);
        assert!(ok.stop_when_perfect);
        assert!(ok.scenario.is_calm());
        assert_eq!(ok.engine, Engine::Cycle);
    }

    #[test]
    fn regional_events_require_a_wan_link_model() {
        use crate::scenario::{LatencyModel, PlacementSpec, WanParams};
        let outage = ScenarioEvent::RegionalOutage {
            phase: Phase::new(10, 20),
            region: 1,
            loss: 1.0,
        };
        // Without a placement there are no regions to affect.
        let err = ExperimentConfig::builder()
            .network_size(64)
            .event(outage.clone())
            .build()
            .unwrap_err();
        assert!(
            err.to_string().contains("wan link model"),
            "unexpected error: {err}"
        );
        // With one, the same timeline is accepted…
        let wan = LatencyModel::Wan {
            placement: PlacementSpec::Clustered {
                regions: 4,
                width: 100.0,
                height: 100.0,
                spread: 10.0,
            },
            params: WanParams::default(),
        };
        let ok = ExperimentConfig::builder()
            .network_size(64)
            .link_model(wan)
            .event(outage)
            .build()
            .unwrap();
        assert_eq!(ok.link_model(), wan);
        // …but a region id past the placement's region count is rejected
        // typed, for outages and slow-links windows alike.
        for event in [
            ScenarioEvent::RegionalOutage {
                phase: Phase::new(10, 20),
                region: 4,
                loss: 0.5,
            },
            ScenarioEvent::SlowLinks {
                phase: Phase::new(10, 20),
                region: Some(4),
                factor: 2.0,
            },
        ] {
            let err = ExperimentConfig::builder()
                .network_size(64)
                .link_model(wan)
                .event(event)
                .build()
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    InvalidParams::OutOfRange {
                        value, max, ..
                    } if value == 4.0 && max == 3.0
                ),
                "unexpected error: {err}"
            );
        }
        // Zero-area placements are rejected typed through the same path.
        let err = ExperimentConfig::builder()
            .network_size(64)
            .link_model(LatencyModel::Wan {
                placement: PlacementSpec::UniformPlane {
                    width: 0.0,
                    height: 100.0,
                },
                params: WanParams::default(),
            })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, InvalidParams::OutOfRange { field, .. } if field.contains("width")),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn wan_runs_report_per_region_series_and_proximity() {
        use crate::scenario::{LatencyModel, PlacementSpec, WanParams};
        let mut builder = ExperimentConfig::builder();
        builder
            .network_size(64)
            .seed(9)
            .max_cycles(40)
            .link_model(LatencyModel::Wan {
                placement: PlacementSpec::Clustered {
                    regions: 3,
                    width: 400.0,
                    height: 400.0,
                    spread: 30.0,
                },
                params: WanParams::default(),
            });
        let report = Experiment::new(builder.build().unwrap()).run();
        assert!(report.converged(), "{report}");
        assert_eq!(report.region_leaf_series().len(), 3);
        for series in report.region_leaf_series() {
            let last = series.points().last().expect("measured cycles").1;
            assert_eq!(last, 0.0, "every region converged: {report}");
        }
        let proximity = report.proximity().expect("wan runs measure proximity");
        assert!(proximity.leaf_links > 0);
        assert!(proximity.mean_leaf_distance > 0.0);
        assert!(proximity.mean_random_distance > 0.0);
        assert!(proximity.ratio() > 0.0);
        // The JSON carries the per-region series and the proximity block.
        let json = report.to_json();
        assert!(json.contains("\"leaf_series_r2\""));
        assert!(json.contains("\"mean_leaf_distance\""));

        // A legacy run reports neither.
        let calm = Experiment::new(
            ExperimentConfig::builder()
                .network_size(64)
                .seed(9)
                .max_cycles(40)
                .build()
                .unwrap(),
        )
        .run();
        assert!(calm.region_leaf_series().is_empty());
        assert!(calm.proximity().is_none());
        assert!(calm.to_json().contains("\"proximity\": null"));
    }

    #[test]
    fn id_spray_target_must_name_a_node() {
        let mut builder = ExperimentConfig::builder();
        builder
            .network_size(64)
            .event(ScenarioEvent::ByzantineConvert {
                phase: Phase::new(5, 20),
                fraction: 0.2,
                behavior: AdversaryBehavior::IdSpray { target: 64 },
            });
        let err = builder.build().unwrap_err();
        assert!(
            matches!(
                err,
                InvalidParams::NodeOutOfBounds {
                    field: "id_spray target",
                    node: 64,
                    network_size: 64,
                }
            ),
            "unexpected error: {err}"
        );
        // The largest valid index passes; no clamping happens anywhere.
        let ok = ExperimentConfig::builder()
            .network_size(64)
            .event(ScenarioEvent::ByzantineConvert {
                phase: Phase::new(5, 20),
                fraction: 0.2,
                behavior: AdversaryBehavior::IdSpray { target: 63 },
            })
            .build()
            .unwrap();
        assert!(ok.scenario.has_adversary());
    }

    #[test]
    fn id_spray_eclipses_the_target_and_the_verifier_defends() {
        // Small-scale version of the headline experiment: a quarter of a
        // 64-node network converts to id-spraying at cycle 5. Undefended, the
        // victim's leaf set fills with attacker addresses; with descriptor
        // verification on, the sprayed (forged-id) descriptors are rejected at
        // receive time and the eclipse fraction stays bounded.
        let attack = ScenarioEvent::ByzantineConvert {
            phase: Phase::new(5, 35),
            fraction: 0.25,
            behavior: AdversaryBehavior::IdSpray { target: 0 },
        };
        let mut undefended_builder = ExperimentConfig::builder();
        undefended_builder
            .network_size(64)
            .seed(41)
            .max_cycles(40)
            .stop_when_perfect(false)
            .event(attack.clone());
        let undefended = Experiment::new(undefended_builder.build().unwrap()).run();
        let defended = Experiment::new(
            undefended_builder
                .params(BootstrapParams {
                    descriptor_verifier: Some(0x5eed_cafe),
                    ..BootstrapParams::paper_default()
                })
                .build()
                .unwrap(),
        )
        .run();
        let peak = |report: &RunReport| {
            report
                .eclipse_series()
                .points()
                .iter()
                .map(|&(_, v)| v)
                .fold(0.0f64, f64::max)
        };
        assert!(
            undefended.eclipsed(),
            "undefended target should be fully eclipsed (peak {})",
            peak(&undefended)
        );
        assert!(undefended.time_to_eclipse().unwrap() >= 5);
        assert!(
            peak(&defended) < 0.5,
            "verifier should keep the eclipse bounded (peak {})",
            peak(&defended)
        );
        assert!(!defended.eclipsed());
        // The poisoned series is live in both runs (the adversaries are real
        // nodes, so their addresses legitimately appear in some tables), and
        // the JSON carries the attack fields.
        assert!(peak(&undefended) > 0.0);
        let json = undefended.to_json();
        assert!(json.contains("\"eclipsed\": true"));
        assert!(json.contains("\"poisoned_series\""));
        assert!(json.contains("\"eclipse_series\""));
        let json = defended.to_json();
        assert!(json.contains("\"eclipsed\": false"));
        assert!(json.contains("\"time_to_eclipse\": null"));
    }

    #[test]
    fn aging_sugar_composes_with_the_sampler_in_either_order() {
        let newscast = NewscastParams {
            view_size: 20,
            period_millis: 1000,
            ..NewscastParams::paper_default()
        };
        // Sugar before the sampler selection: the bound still reaches the views.
        let sugar_first = ExperimentConfig::builder()
            .descriptor_max_age(Some(8))
            .sampler(SamplerChoice::Newscast(newscast))
            .build()
            .unwrap();
        // Sampler first, sugar after: same result.
        let sampler_first = ExperimentConfig::builder()
            .sampler(SamplerChoice::Newscast(newscast))
            .descriptor_max_age(Some(8))
            .build()
            .unwrap();
        for config in [&sugar_first, &sampler_first] {
            assert_eq!(config.params.descriptor_max_age, Some(8));
            let SamplerChoice::Newscast(params) = config.sampler else {
                panic!("newscast sampler expected");
            };
            assert_eq!(params.descriptor_max_age, Some(8));
        }
        // An explicit view bound wins over the sugar — in either call order.
        let sugar_then_explicit = ExperimentConfig::builder()
            .descriptor_max_age(Some(8))
            .sampler(SamplerChoice::Newscast(NewscastParams {
                descriptor_max_age: Some(3),
                ..newscast
            }))
            .build()
            .unwrap();
        let explicit_then_sugar = ExperimentConfig::builder()
            .sampler(SamplerChoice::Newscast(NewscastParams {
                descriptor_max_age: Some(3),
                ..newscast
            }))
            .descriptor_max_age(Some(8))
            .build()
            .unwrap();
        for config in [&sugar_then_explicit, &explicit_then_sugar] {
            assert_eq!(config.params.descriptor_max_age, Some(8));
            let SamplerChoice::Newscast(params) = config.sampler else {
                panic!("newscast sampler expected");
            };
            assert_eq!(params.descriptor_max_age, Some(3));
        }
    }

    #[test]
    fn legacy_knobs_desugar_into_the_scenario() {
        let config = ExperimentConfig::builder()
            .drop_probability(0.2)
            .churn_rate(0.01)
            .threads(4)
            .build()
            .unwrap();
        assert_eq!(config.drop_probability(), 0.2);
        assert_eq!(config.churn_rate(), 0.01);
        assert_eq!(config.threads(), 4);
        assert_eq!(config.engine, Engine::ParallelCycle { threads: 4 });
        assert_eq!(config.scenario.events().len(), 2);
        // Setting a knob back to zero removes its event.
        let calm = ExperimentConfig::builder()
            .drop_probability(0.2)
            .drop_probability(0.0)
            .build()
            .unwrap();
        assert!(calm.scenario.is_calm());
    }

    #[test]
    fn small_network_converges_and_reports_series() {
        let config = ExperimentConfig::builder()
            .network_size(100)
            .seed(42)
            .max_cycles(60)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert!(outcome.converged(), "{outcome}");
        let convergence = outcome.convergence_cycle().unwrap();
        assert!(convergence < 40);
        // The series cover every executed cycle and end at zero.
        assert_eq!(
            outcome.leaf_series().len(),
            outcome.cycles_executed() as usize
        );
        assert_eq!(
            outcome.prefix_series().len(),
            outcome.cycles_executed() as usize
        );
        assert_eq!(outcome.leaf_series().final_value(), Some(0.0));
        assert_eq!(outcome.prefix_series().final_value(), Some(0.0));
        assert!(outcome.final_state().is_perfect());
        assert!(outcome.traffic().requests_sent > 0);
        assert_eq!(outcome.config().network_size, 100);
        let text = outcome.to_string();
        assert!(text.contains("perfect tables"));
        let json = outcome.to_json();
        assert!(json.contains("\"engine\": \"cycle\""));
        assert!(json.contains("\"scenario\": \"calm\""));
        assert!(json.contains("leaf_series"));
    }

    #[test]
    fn identical_seeds_give_identical_outcomes() {
        let config = ExperimentConfig::builder()
            .network_size(80)
            .seed(7)
            .max_cycles(50)
            .build()
            .unwrap();
        let (a, snapshot_a) = Experiment::new(config.clone()).run_with_snapshot();
        let (b, snapshot_b) = Experiment::new(config).run_with_snapshot();
        // The whole convergence trace must replay exactly: cycle counts, both
        // per-cycle series, traffic counters and every node's final tables.
        assert_eq!(a.convergence_cycle(), b.convergence_cycle());
        assert_eq!(a.cycles_executed(), b.cycles_executed());
        assert_eq!(a.leaf_series().points(), b.leaf_series().points());
        assert_eq!(a.prefix_series().points(), b.prefix_series().points());
        assert_eq!(a.traffic().requests_sent, b.traffic().requests_sent);
        assert_eq!(
            a.traffic().requests_delivered,
            b.traffic().requests_delivered
        );
        assert_eq!(a.traffic().answers_delivered, b.traffic().answers_delivered);
        assert_eq!(snapshot_a.len(), snapshot_b.len());
        for (node_a, node_b) in (0..snapshot_a.len()).map(|i| {
            (
                snapshot_a.node_at(i).unwrap(),
                snapshot_b.node_at(i).unwrap(),
            )
        }) {
            assert_eq!(node_a.id(), node_b.id());
            assert_eq!(node_a.leaf_set().to_vec(), node_b.leaf_set().to_vec());
            assert_eq!(
                node_a.prefix_table().to_vec(),
                node_b.prefix_table().to_vec()
            );
        }

        // A different seed must actually change the trace, otherwise the
        // comparison above proves nothing.
        let reseeded = Experiment::new(
            ExperimentConfig::builder()
                .network_size(80)
                .seed(8)
                .max_cycles(50)
                .build()
                .unwrap(),
        )
        .run();
        assert_ne!(a.leaf_series().points(), reseeded.leaf_series().points());
    }

    #[test]
    fn message_loss_slows_but_does_not_prevent_convergence() {
        // Average over several seeds: any individual pair of runs is noisy, but on
        // average 20 % loss must cost extra cycles (Figure 4 vs Figure 3).
        let mut reliable_total = 0u64;
        let mut lossy_total = 0u64;
        for seed in 0..5u64 {
            let reliable = Experiment::new(
                ExperimentConfig::builder()
                    .network_size(100)
                    .seed(seed)
                    .max_cycles(150)
                    .build()
                    .unwrap(),
            )
            .run();
            let lossy = Experiment::new(
                ExperimentConfig::builder()
                    .network_size(100)
                    .seed(seed)
                    .drop_probability(0.2)
                    .max_cycles(150)
                    .build()
                    .unwrap(),
            )
            .run();
            assert!(reliable.converged());
            assert!(lossy.converged(), "{lossy}");
            reliable_total += reliable.convergence_cycle().unwrap();
            lossy_total += lossy.convergence_cycle().unwrap();
        }
        assert!(
            lossy_total >= reliable_total,
            "on average, loss must slow convergence (reliable {reliable_total}, lossy {lossy_total})"
        );
    }

    #[test]
    fn newscast_sampling_also_converges() {
        let config = ExperimentConfig::builder()
            .network_size(100)
            .seed(11)
            .sampler(SamplerChoice::Newscast(NewscastParams {
                view_size: 20,
                period_millis: 1000,
                ..NewscastParams::paper_default()
            }))
            .max_cycles(80)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert!(outcome.converged(), "{outcome}");
    }

    #[test]
    fn churn_keeps_tables_imperfect_but_close() {
        let config = ExperimentConfig::builder()
            .network_size(100)
            .seed(13)
            .churn_rate(0.01)
            .max_cycles(30)
            .stop_when_perfect(false)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert_eq!(outcome.cycles_executed(), 30);
        // The protocol has no failure detector (it is designed for a short burst),
        // so descriptors of departed nodes accumulate in the leaf sets: after T
        // cycles of replacement churn at rate r the live fraction of the nearest
        // neighbours is roughly 1 / (1 + rT), and the missing-entry proportion
        // settles near rT / (1 + rT). With r = 1 % and T = 30 that bound is ~0.23;
        // quality must stay well within it, and far from collapse.
        let final_leaf = outcome.leaf_series().final_value().unwrap();
        assert!(
            final_leaf < 0.35,
            "leaf quality too poor under churn: {final_leaf}"
        );
        let final_prefix = outcome.prefix_series().final_value().unwrap();
        assert!(
            final_prefix < 0.35,
            "prefix quality too poor under churn: {final_prefix}"
        );
        assert!(!outcome.converged());
        let text = outcome.to_string();
        assert!(text.contains("churn"));
    }

    #[test]
    fn snapshot_exposes_every_nodes_final_state() {
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(21)
            .max_cycles(50)
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(outcome.converged());
        assert_eq!(snapshot.len(), 64);
        assert!(!snapshot.is_empty());
        assert_eq!(snapshot.ids().count(), 64);
        let some_id = snapshot.node_at(0).unwrap().id();
        let by_id = snapshot.node_by_id(some_id).unwrap();
        assert_eq!(by_id.id(), some_id);
        assert!(!by_id.leaf_set().is_empty());
        // The run is seeded, so no node drew the id u64::MAX; looking it up
        // must miss.
        assert!(snapshot
            .node_by_id(bss_util::id::NodeId::new(u64::MAX))
            .is_none());
        assert!(snapshot.node_at(64).is_none());
    }

    #[test]
    fn stop_when_perfect_false_runs_full_budget() {
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(17)
            .max_cycles(30)
            .stop_when_perfect(false)
            .build()
            .unwrap();
        let outcome = Experiment::new(config).run();
        assert_eq!(outcome.cycles_executed(), 30);
        assert!(outcome.converged());
        assert!(outcome.convergence_cycle().unwrap() < 30);
    }

    #[test]
    fn perfection_stop_waits_for_pending_scenario_events() {
        // A 64-node network converges well before cycle 25, but the scheduled
        // catastrophe must still strike: the perfection stop defers while a
        // scenario transition lies ahead. The protocol has no failure detector
        // (it bootstraps; the substrate's own maintenance would take over), so
        // after half the network dies the survivors' tables keep dead entries
        // and perfection against the survivor oracle is never re-reached —
        // the run uses its full budget and reports the degradation honestly.
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(19)
            .max_cycles(80)
            .event(ScenarioEvent::CatastrophicFailure {
                at_cycle: 25,
                fraction: 0.5,
            })
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert_eq!(
            outcome.cycles_executed(),
            80,
            "run must not stop at the pre-catastrophe perfection"
        );
        assert_eq!(
            outcome.leaf_series().value_at(24),
            Some(0.0),
            "the network was perfect right before the catastrophe"
        );
        assert!(
            outcome.leaf_series().value_at(25).unwrap() > 0.0,
            "the catastrophe degrades the survivor-oracle measurement"
        );
        assert!(
            !outcome.converged(),
            "membership churn resets the recorded convergence: {outcome}"
        );
        assert_eq!(snapshot.len(), 32, "half the nodes died");
        assert_eq!(outcome.events_fired().len(), 1);
        assert_eq!(outcome.events_fired()[0].0, 25);
    }

    #[test]
    fn rebootstrap_wipes_survivor_state_and_reconverges() {
        // A re-bootstrap order with no failure: membership stays static (the
        // incremental measurement path keeps serving), but every node's tables
        // are wiped at cycle 20 and rebuilt. The recorded convergence must be
        // the *second* one — table-perturbing events reset it.
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(37)
            .max_cycles(80)
            .event(ScenarioEvent::ReBootstrap {
                at_cycle: 20,
                fraction: 1.0,
            })
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert_eq!(
            outcome.leaf_series().value_at(19),
            Some(0.0),
            "perfect before the order"
        );
        assert!(
            outcome.leaf_series().value_at(20).unwrap() > 0.0,
            "the wipe degrades the measurement at the order cycle"
        );
        assert!(outcome.converged(), "{outcome}");
        assert!(
            outcome.convergence_cycle().unwrap() > 20,
            "pre-wipe perfection must not be the recorded convergence"
        );
        assert_eq!(snapshot.len(), 64, "membership untouched");
        assert_eq!(outcome.events_fired().len(), 1);
        // No node ever died, so the dead-descriptor series is identically zero
        // and no degradation/recovery is recorded.
        assert!(outcome
            .dead_series()
            .points()
            .iter()
            .all(|&(_, v)| v == 0.0));
        assert_eq!(outcome.degraded_cycle(), None);
        assert_eq!(outcome.recovered_cycle(), None);
        assert_eq!(outcome.cycles_to_recover(), None);
        // The report JSON carries the recovery fields and the new series.
        let json = outcome.to_json();
        assert!(json.contains("\"dead_series\""));
        assert!(json.contains("\"recovered_cycle\": null"));
        assert!(json.contains("re-bootstrap"));
    }

    #[test]
    fn massive_join_is_absorbed() {
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(23)
            .max_cycles(80)
            .event(ScenarioEvent::MassiveJoin {
                at_cycle: 10,
                count: 64,
            })
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(outcome.converged(), "{outcome}");
        assert_eq!(snapshot.len(), 128, "the flash crowd doubled the network");
    }

    #[test]
    fn partition_heals_and_merges() {
        // While the partition is in force, direct exchanges across the split
        // are blocked (cross-half descriptors still circulate through the
        // independent sampling service, which is the paper's premise), so
        // convergence is slower than in a calm run; once the window closes the
        // halves merge and the run reaches full-membership perfection.
        let mut calm_builder = ExperimentConfig::builder();
        calm_builder.network_size(256).seed(29).max_cycles(120);
        let calm = Experiment::new(calm_builder.build().unwrap()).run();
        let partitioned = Experiment::new(
            calm_builder
                .event(ScenarioEvent::Partition {
                    phase: Phase::new(0, 12),
                    groups: PartitionSpec::IndexParity,
                })
                .build()
                .unwrap(),
        )
        .run();
        assert!(calm.converged());
        assert!(partitioned.converged(), "{partitioned}");
        assert!(
            partitioned.convergence_cycle().unwrap() >= calm.convergence_cycle().unwrap(),
            "blocking half of all exchanges must not speed convergence up \
             (calm {:?}, partitioned {:?})",
            calm.convergence_cycle(),
            partitioned.convergence_cycle()
        );
        // The heal at cycle 12 counts as a pending change, so even a network
        // perfect during the split would have kept running until the merge.
        assert_eq!(partitioned.events_fired().len(), 1);
        assert_eq!(partitioned.events_fired()[0].0, 0);
    }

    #[test]
    fn observers_see_cycles_and_events() {
        let mut recorder = bss_sim::observer::MetricRecorder::new();
        let config = ExperimentConfig::builder()
            .network_size(64)
            .seed(31)
            .max_cycles(40)
            .event(ScenarioEvent::MassiveJoin {
                at_cycle: 5,
                count: 16,
            })
            .build()
            .unwrap();
        let (outcome, _) = Experiment::new(config).run_observed(&mut recorder);
        let leaf = recorder.series("missing_leafset_proportion").unwrap();
        assert_eq!(leaf.len(), outcome.cycles_executed() as usize);
        assert_eq!(leaf.points(), outcome.leaf_series().points());
        let events = recorder.series("scenario_events").unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events.points()[0].0, 5);
    }
}
