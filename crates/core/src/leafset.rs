//! The leaf set: a node's `c` nearest neighbours on the identifier ring.
//!
//! The paper's `UPDATELEAFSET` (§4) "merges the set given as a parameter and the
//! current leaf set, and then sorts this set according to distance from the node's
//! own ID in the ring of all possible IDs. [...] in an effort to collect an equal
//! amount of successors and predecessors, the method attempts to keep an equal
//! number (c/2) of closest successors and predecessors. If there are not enough
//! successors or predecessors, then the leaf set is filled with the closest
//! elements in the other direction."
//!
//! [`LeafSet`] implements exactly that, and in addition exposes the orderings
//! needed by `SELECTPEER` (sort by distance from the own identifier) and
//! `CREATEMESSAGE` (sort by distance from the peer's identifier).

use bss_util::descriptor::{Address, Descriptor};
use bss_util::id::NodeId;

/// A balanced set of ring neighbours maintained by `UPDATELEAFSET`.
///
/// # Example
///
/// ```rust
/// use bss_core::leafset::LeafSet;
/// use bss_util::descriptor::Descriptor;
/// use bss_util::id::NodeId;
///
/// let mut leaf_set: LeafSet<u32> = LeafSet::new(NodeId::new(1000), 4);
/// leaf_set.update([
///     Descriptor::new(NodeId::new(1010), 1, 0),
///     Descriptor::new(NodeId::new(1020), 2, 0),
///     Descriptor::new(NodeId::new(990), 3, 0),
///     Descriptor::new(NodeId::new(980), 4, 0),
///     Descriptor::new(NodeId::new(5000), 5, 0),
/// ]);
/// // Two closest successors and two closest predecessors are kept.
/// assert_eq!(leaf_set.len(), 4);
/// assert!(leaf_set.contains(NodeId::new(1010)));
/// assert!(leaf_set.contains(NodeId::new(990)));
/// assert!(!leaf_set.contains(NodeId::new(5000)));
/// ```
#[derive(Debug, Clone)]
pub struct LeafSet<A> {
    own_id: NodeId,
    capacity: usize,
    /// Flat single-buffer storage (mirroring `PrefixTable`'s flattened layout):
    /// the first [`LeafSet::split`] entries are the successors — nodes closer in
    /// the increasing (clockwise) direction, sorted by clockwise distance,
    /// closest first — and the rest are the predecessors, sorted by
    /// counter-clockwise distance, closest first.
    entries: Vec<Descriptor<A>>,
    /// Number of successors at the front of `entries`.
    split: usize,
}

/// Caller-owned working memory for [`LeafSet::update_with`].
///
/// One instance per driver (or per worker thread) is enough: threading it
/// through makes `UPDATELEAFSET` allocation-free in the steady state, which
/// matters because the merge runs once per received message — together with
/// message composition it is the hot path of a simulation.
#[derive(Debug, Clone)]
pub struct MergeScratch<A> {
    merged: Vec<Descriptor<A>>,
    successors: Vec<Descriptor<A>>,
    predecessors: Vec<Descriptor<A>>,
}

impl<A> Default for MergeScratch<A> {
    fn default() -> Self {
        MergeScratch {
            merged: Vec::new(),
            successors: Vec::new(),
            predecessors: Vec::new(),
        }
    }
}

impl<A: Address> LeafSet<A> {
    /// Creates an empty leaf set for the node with identifier `own_id` and total
    /// capacity `capacity` (the paper's `c`; half is reserved for successors and
    /// half for predecessors).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or odd.
    pub fn new(own_id: NodeId, capacity: usize) -> Self {
        assert!(capacity > 0, "leaf set capacity must be positive");
        assert!(capacity % 2 == 0, "leaf set capacity must be even");
        LeafSet {
            own_id,
            capacity,
            entries: Vec::with_capacity(capacity),
            split: 0,
        }
    }

    /// The identifier of the owning node.
    pub fn own_id(&self) -> NodeId {
        self.own_id
    }

    /// The configured capacity `c`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of descriptors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the leaf set holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current successors, closest first.
    pub fn successors(&self) -> &[Descriptor<A>] {
        &self.entries[..self.split]
    }

    /// The current predecessors, closest first.
    pub fn predecessors(&self) -> &[Descriptor<A>] {
        &self.entries[self.split..]
    }

    /// Iterates over all descriptors (successors first, then predecessors).
    pub fn iter(&self) -> impl Iterator<Item = &Descriptor<A>> {
        self.entries.iter()
    }

    /// All descriptors as one slice (successors first, then predecessors) —
    /// the flat storage makes this a free view, so hot paths can borrow the
    /// content without copying it out via [`LeafSet::to_vec`].
    pub fn as_slice(&self) -> &[Descriptor<A>] {
        &self.entries
    }

    /// Collects all descriptors into a vector.
    pub fn to_vec(&self) -> Vec<Descriptor<A>> {
        self.iter().copied().collect()
    }

    /// Whether a descriptor with the given identifier is present.
    pub fn contains(&self, id: NodeId) -> bool {
        self.iter().any(|d| d.id() == id)
    }

    /// `UPDATELEAFSET`: merges `incoming` with the current content and keeps the
    /// `c/2` closest successors and `c/2` closest predecessors, spilling into the
    /// other direction when one side has too few candidates.
    ///
    /// Descriptors equal to the own identifier are ignored; duplicates keep the
    /// freshest timestamp.
    ///
    /// Returns whether the *membership* of the leaf set changed (timestamp-only
    /// refreshes of already-present identifiers do not count) — the signal the
    /// incremental convergence tracker uses to decide which nodes to re-measure.
    ///
    /// This convenience wrapper allocates a fresh [`MergeScratch`] per call;
    /// hot paths should thread a reusable one through
    /// [`LeafSet::update_with`] instead.
    pub fn update(&mut self, incoming: impl IntoIterator<Item = Descriptor<A>>) -> bool {
        self.update_with(incoming, &mut MergeScratch::default())
    }

    /// [`LeafSet::update`] with caller-owned working memory — the
    /// allocation-free variant the simulation drivers use on the hot path. In
    /// the steady state neither the scratch buffers nor the leaf set's own flat
    /// storage reallocate.
    pub fn update_with(
        &mut self,
        incoming: impl IntoIterator<Item = Descriptor<A>>,
        scratch: &mut MergeScratch<A>,
    ) -> bool {
        // Merge: current content plus the incoming descriptors.
        let merged = &mut scratch.merged;
        merged.clear();
        merged.extend_from_slice(&self.entries);
        merged.extend(incoming.into_iter().filter(|d| d.id() != self.own_id));
        if merged.is_empty() {
            return false;
        }
        bss_util::descriptor::dedup_freshest(merged);

        // Classify into successors and predecessors.
        let successors = &mut scratch.successors;
        let predecessors = &mut scratch.predecessors;
        successors.clear();
        predecessors.clear();
        for &descriptor in merged.iter() {
            if self.own_id.is_successor(descriptor.id()) {
                successors.push(descriptor);
            } else {
                predecessors.push(descriptor);
            }
        }
        // Partial selection: after spilling, at most `capacity` entries per side
        // can ever be kept, so only that prefix needs to be in order. (A side's
        // shortfall is computed from its candidate count, which truncation to
        // `capacity >= half` cannot disturb.)
        let own = self.own_id;
        bss_util::view::rank_top_by(successors, self.capacity, |a, b| {
            own.clockwise_distance(a.id())
                .cmp(&own.clockwise_distance(b.id()))
                .then_with(|| a.id().cmp(&b.id()))
        });
        bss_util::view::rank_top_by(predecessors, self.capacity, |a, b| {
            a.id()
                .clockwise_distance(own)
                .cmp(&b.id().clockwise_distance(own))
                .then_with(|| a.id().cmp(&b.id()))
        });

        // Keep c/2 of each; spill over when one side is short.
        let half = self.capacity / 2;
        let succ_short = half.saturating_sub(successors.len());
        let pred_short = half.saturating_sub(predecessors.len());
        let succ_keep = (half + pred_short).min(successors.len());
        let pred_keep = (half + succ_short).min(predecessors.len());
        successors.truncate(succ_keep);
        predecessors.truncate(pred_keep);

        // Membership comparison: the kept orderings are deterministic (distance,
        // ties by identifier), so equal membership means equal id sequences.
        let same_ids = |kept: &[Descriptor<A>], current: &[Descriptor<A>]| {
            kept.len() == current.len()
                && kept
                    .iter()
                    .zip(current.iter())
                    .all(|(a, b)| a.id() == b.id())
        };
        let changed = !same_ids(successors, self.successors())
            || !same_ids(predecessors, self.predecessors());

        // Write back into the flat buffer: successors first, then predecessors.
        self.entries.clear();
        self.entries.extend_from_slice(successors);
        self.entries.extend_from_slice(predecessors);
        self.split = succ_keep;
        changed
    }

    /// Evicts every descriptor whose timestamp lags `now` by more than
    /// `max_age` cycles (the failure-detecting half of descriptor aging; see
    /// [`BootstrapParams::descriptor_max_age`](bss_util::config::BootstrapParams)).
    ///
    /// Runs fully in place on the flat storage — no allocation — preserving
    /// each side's distance ordering and adjusting the successor/predecessor
    /// split. Returns whether anything was removed.
    pub fn evict_expired(&mut self, now: u64, max_age: u64) -> bool {
        let before = self.entries.len();
        let mut write = 0usize;
        let mut surviving_successors = 0usize;
        for read in 0..before {
            let descriptor = self.entries[read];
            if descriptor.is_expired(now, max_age) {
                continue;
            }
            if read < self.split {
                surviving_successors += 1;
            }
            self.entries[write] = descriptor;
            write += 1;
        }
        self.entries.truncate(write);
        self.split = surviving_successors;
        write != before
    }

    /// Raw view of the flat storage for the packed node store: the entry
    /// sequence (successors first, then predecessors) and the successor split.
    pub(crate) fn raw_parts(&self) -> (&[Descriptor<A>], usize) {
        (&self.entries, self.split)
    }

    /// Rebuilds the leaf set in place from raw parts (the inverse of
    /// [`LeafSet::raw_parts`]), reusing the existing allocation. The capacity
    /// is left untouched — the packed store only round-trips between nodes
    /// running identical parameters.
    pub(crate) fn restore_from(
        &mut self,
        own_id: NodeId,
        entries: impl IntoIterator<Item = Descriptor<A>>,
        split: usize,
    ) {
        self.own_id = own_id;
        self.entries.clear();
        self.entries.extend(entries);
        debug_assert!(split <= self.entries.len(), "split beyond entry count");
        self.split = split;
    }

    /// The descriptors sorted by undirected ring distance from the own identifier,
    /// closest first — the ordering `SELECTPEER` is defined over. (The protocol
    /// driver ranks the closer half in place via partial selection instead of
    /// calling this; the method remains as the reference ordering for
    /// diagnostics and tests.)
    pub fn sorted_by_distance_from_self(&self) -> Vec<Descriptor<A>> {
        self.sorted_by_distance_from(self.own_id)
    }

    /// The descriptors sorted by undirected ring distance from an arbitrary
    /// reference identifier, closest first — the ordering `CREATEMESSAGE`'s
    /// ring-targeted part is defined over (the hot path selects it directly on
    /// the merge union rather than through this method).
    pub fn sorted_by_distance_from(&self, reference: NodeId) -> Vec<Descriptor<A>> {
        let mut all = self.to_vec();
        all.sort_by(|a, b| {
            reference
                .ring_distance(a.id())
                .cmp(&reference.ring_distance(b.id()))
                .then_with(|| a.id().cmp(&b.id()))
        });
        all
    }

    /// The closest known successor (the node that would follow this one on the
    /// ring), if any.
    pub fn closest_successor(&self) -> Option<&Descriptor<A>> {
        self.successors().first()
    }

    /// The closest known predecessor, if any.
    pub fn closest_predecessor(&self) -> Option<&Descriptor<A>> {
        self.predecessors().first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64, addr: u32) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, 0)
    }

    fn ids<A: Address>(set: &LeafSet<A>) -> Vec<u64> {
        set.iter().map(|x| x.id().raw()).collect()
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_capacity_is_rejected() {
        let _: LeafSet<u32> = LeafSet::new(NodeId::new(0), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_is_rejected() {
        let _: LeafSet<u32> = LeafSet::new(NodeId::new(0), 0);
    }

    #[test]
    fn keeps_balanced_closest_neighbours() {
        let mut set = LeafSet::new(NodeId::new(1000), 4);
        set.update([
            d(1001, 1),
            d(1002, 2),
            d(1003, 3),
            d(999, 4),
            d(998, 5),
            d(997, 6),
        ]);
        assert_eq!(set.len(), 4);
        let mut kept = ids(&set);
        kept.sort_unstable();
        assert_eq!(kept, vec![998, 999, 1001, 1002]);
        assert_eq!(set.successors().len(), 2);
        assert_eq!(set.predecessors().len(), 2);
        assert_eq!(set.closest_successor().unwrap().id().raw(), 1001);
        assert_eq!(set.closest_predecessor().unwrap().id().raw(), 999);
    }

    #[test]
    fn spills_into_other_direction_when_one_side_is_short() {
        // Only successors available: all four slots fill with successors.
        let mut set = LeafSet::new(NodeId::new(0), 4);
        set.update([d(1, 1), d(2, 2), d(3, 3), d(4, 4), d(5, 5)]);
        assert_eq!(set.len(), 4);
        let mut kept = ids(&set);
        kept.sort_unstable();
        assert_eq!(kept, vec![1, 2, 3, 4]);

        // Mixed but unbalanced: one predecessor and many successors.
        let mut set = LeafSet::new(NodeId::new(100), 4);
        set.update([d(99, 1), d(101, 2), d(102, 3), d(103, 4), d(104, 5)]);
        let mut kept = ids(&set);
        kept.sort_unstable();
        assert_eq!(kept, vec![99, 101, 102, 103]);
    }

    #[test]
    fn update_is_monotone_improvement() {
        let mut set = LeafSet::new(NodeId::new(1000), 4);
        set.update([d(2000, 1), d(3000, 2), d(50, 3), d(100, 4)]);
        assert_eq!(set.len(), 4);
        // Better candidates displace worse ones.
        set.update([d(1001, 5), d(999, 6)]);
        assert!(set.contains(NodeId::new(1001)));
        assert!(set.contains(NodeId::new(999)));
        assert_eq!(set.len(), 4);
        // The displaced far-away successors are gone.
        assert!(!set.contains(NodeId::new(3000)));
    }

    #[test]
    fn ignores_own_identifier_and_duplicates() {
        let mut set = LeafSet::new(NodeId::new(42), 4);
        set.update([d(42, 1), d(43, 2), d(43, 3), d(44, 4)]);
        assert!(!set.contains(NodeId::new(42)));
        assert_eq!(set.len(), 2);
        // The freshest duplicate wins.
        let mut set = LeafSet::new(NodeId::new(42), 4);
        set.update([
            Descriptor::new(NodeId::new(43), 2u32, 1),
            Descriptor::new(NodeId::new(43), 9u32, 5),
        ]);
        let entry = set.iter().next().unwrap();
        assert_eq!(entry.address(), 9);
        assert_eq!(entry.timestamp(), 5);
    }

    #[test]
    fn wrap_around_neighbours_are_classified_correctly() {
        let mut set = LeafSet::new(NodeId::new(u64::MAX - 1), 4);
        set.update([d(0, 1), d(1, 2), d(u64::MAX - 3, 3), d(u64::MAX - 2, 4)]);
        assert_eq!(set.successors().len(), 2);
        assert_eq!(set.predecessors().len(), 2);
        // Identifiers 0 and 1 wrap around and are the closest successors.
        assert_eq!(set.closest_successor().unwrap().id().raw(), 0);
        assert_eq!(set.closest_predecessor().unwrap().id().raw(), u64::MAX - 2);
    }

    #[test]
    fn wrap_around_closest_successor_is_across_zero() {
        let mut set = LeafSet::new(NodeId::new(u64::MAX - 1), 4);
        set.update([d(5, 1), d(0, 2), d(u64::MAX - 10, 3)]);
        assert_eq!(set.closest_successor().unwrap().id().raw(), 0);
        assert_eq!(set.closest_predecessor().unwrap().id().raw(), u64::MAX - 10);
    }

    #[test]
    fn sorted_by_distance_orders_by_ring_metric() {
        let mut set = LeafSet::new(NodeId::new(1000), 6);
        set.update([d(1010, 1), d(1100, 2), d(900, 3), d(995, 4)]);
        let from_self = set.sorted_by_distance_from_self();
        assert_eq!(from_self[0].id().raw(), 995);
        assert_eq!(from_self[1].id().raw(), 1010);
        let from_peer = set.sorted_by_distance_from(NodeId::new(1100));
        assert_eq!(from_peer[0].id().raw(), 1100);
        assert_eq!(from_peer.last().unwrap().id().raw(), 900);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// The pre-flattening `UPDATELEAFSET`: two owned side vectors, fresh
        /// allocations per call. `state` holds the resulting content
        /// (successors then predecessors); returns the membership-change flag.
        fn reference_update(
            state: &mut Vec<Descriptor<u32>>,
            own: NodeId,
            capacity: usize,
            incoming: &[Descriptor<u32>],
        ) -> bool {
            let mut merged: Vec<Descriptor<u32>> = state.clone();
            merged.extend(incoming.iter().copied().filter(|d| d.id() != own));
            if merged.is_empty() {
                return false;
            }
            bss_util::descriptor::dedup_freshest(&mut merged);
            let mut successors: Vec<Descriptor<u32>> = Vec::new();
            let mut predecessors: Vec<Descriptor<u32>> = Vec::new();
            for descriptor in merged {
                if own.is_successor(descriptor.id()) {
                    successors.push(descriptor);
                } else {
                    predecessors.push(descriptor);
                }
            }
            successors.sort_by(|a, b| {
                own.clockwise_distance(a.id())
                    .cmp(&own.clockwise_distance(b.id()))
                    .then_with(|| a.id().cmp(&b.id()))
            });
            predecessors.sort_by(|a, b| {
                a.id()
                    .clockwise_distance(own)
                    .cmp(&b.id().clockwise_distance(own))
                    .then_with(|| a.id().cmp(&b.id()))
            });
            let half = capacity / 2;
            let succ_short = half.saturating_sub(successors.len());
            let pred_short = half.saturating_sub(predecessors.len());
            successors.truncate((half + pred_short).min(successors.len()));
            predecessors.truncate((half + succ_short).min(predecessors.len()));
            let mut kept = successors;
            kept.append(&mut predecessors);
            let changed = kept.len() != state.len()
                || kept.iter().zip(state.iter()).any(|(a, b)| a.id() != b.id());
            *state = kept;
            changed
        }

        fn descriptor() -> impl Strategy<Value = Descriptor<u32>> {
            (any::<u64>(), any::<u32>(), any::<u64>())
                .prop_map(|(id, addr, ts)| Descriptor::new(NodeId::new(id), addr, ts))
        }

        proptest! {
            #[test]
            fn successors_and_predecessors_stay_balanced(
                own in any::<u64>(),
                capacity in prop::sample::select(vec![2usize, 4, 8, 20]),
                incoming in prop::collection::vec(descriptor(), 0..96),
            ) {
                let own = NodeId::new(own);
                let mut set = LeafSet::new(own, capacity);
                set.update(incoming.iter().copied());
                let half = capacity / 2;

                prop_assert!(set.len() <= capacity);
                // A side may only exceed its c/2 share by spilling into space
                // the other side could not fill.
                prop_assert!(
                    set.successors().len() <= half + half.saturating_sub(set.predecessors().len()),
                    "successors over quota: {} successors, {} predecessors, c = {capacity}",
                    set.successors().len(),
                    set.predecessors().len(),
                );
                prop_assert!(
                    set.predecessors().len() <= half + half.saturating_sub(set.successors().len()),
                    "predecessors over quota: {} successors, {} predecessors, c = {capacity}",
                    set.successors().len(),
                    set.predecessors().len(),
                );
                // Every entry is classified into the right direction.
                for entry in set.successors() {
                    prop_assert!(own.is_successor(entry.id()));
                }
                for entry in set.predecessors() {
                    prop_assert!(!own.is_successor(entry.id()));
                }
            }

            #[test]
            fn both_orderings_follow_the_ring_metric(
                own in any::<u64>(),
                reference in any::<u64>(),
                incoming in prop::collection::vec(descriptor(), 1..64),
            ) {
                let own = NodeId::new(own);
                let mut set = LeafSet::new(own, 8);
                set.update(incoming.iter().copied());

                // Directed orderings: each side sorted by its own direction,
                // closest first.
                for pair in set.successors().windows(2) {
                    prop_assert!(
                        own.clockwise_distance(pair[0].id()) <= own.clockwise_distance(pair[1].id())
                    );
                }
                for pair in set.predecessors().windows(2) {
                    prop_assert!(
                        pair[0].id().clockwise_distance(own) <= pair[1].id().clockwise_distance(own)
                    );
                }
                // Undirected ordering from an arbitrary reference point.
                let reference = NodeId::new(reference);
                let sorted = set.sorted_by_distance_from(reference);
                prop_assert_eq!(sorted.len(), set.len());
                for pair in sorted.windows(2) {
                    prop_assert!(
                        reference.ring_distance(pair[0].id()) <= reference.ring_distance(pair[1].id())
                    );
                }
            }

            #[test]
            fn scratch_threaded_update_matches_the_reference(
                own in any::<u64>(),
                capacity in prop::sample::select(vec![2usize, 4, 8, 20]),
                batches in prop::collection::vec(
                    prop::collection::vec(descriptor(), 0..48),
                    1..6,
                ),
            ) {
                // `update_with` over a single reused scratch must behave exactly
                // like the pre-flattening implementation (kept below as
                // `reference_update`) across arbitrary batch sequences —
                // including the returned membership-change flag.
                let own = NodeId::new(own);
                let mut fast = LeafSet::new(own, capacity);
                let mut scratch = MergeScratch::default();
                let mut reference: Vec<Descriptor<u32>> = Vec::new();
                for batch in &batches {
                    let changed = fast.update_with(batch.iter().copied(), &mut scratch);
                    let ref_changed =
                        reference_update(&mut reference, own, capacity, batch);
                    prop_assert_eq!(changed, ref_changed);
                    prop_assert_eq!(fast.to_vec(), reference.clone());
                }
            }

            #[test]
            fn update_is_idempotent(
                own in any::<u64>(),
                capacity in prop::sample::select(vec![2usize, 4, 8, 20]),
                incoming in prop::collection::vec(descriptor(), 0..96),
            ) {
                let own = NodeId::new(own);
                let mut once = LeafSet::new(own, capacity);
                once.update(incoming.iter().copied());

                // Replaying the same batch must not change the result.
                let mut twice = once.clone();
                twice.update(incoming.iter().copied());
                prop_assert_eq!(twice.to_vec(), once.to_vec());

                // Feeding the set its own content back is a no-op too.
                let mut refed = once.clone();
                refed.update(once.to_vec());
                prop_assert_eq!(refed.to_vec(), once.to_vec());
            }
        }
    }

    #[test]
    fn evict_expired_drops_stale_entries_and_keeps_the_split_consistent() {
        let mut set = LeafSet::new(NodeId::new(1000), 6);
        let fresh = |id: u64, addr: u32| Descriptor::new(NodeId::new(id), addr, 20);
        let stale = |id: u64, addr: u32| Descriptor::new(NodeId::new(id), addr, 5);
        set.update([
            fresh(1001, 1),
            stale(1002, 2),
            fresh(1003, 3),
            stale(999, 4),
            fresh(998, 5),
        ]);
        assert_eq!(set.successors().len(), 3);
        assert_eq!(set.predecessors().len(), 2);

        // now = 20, max_age = 10: the timestamp-5 entries expire.
        assert!(set.evict_expired(20, 10));
        let mut kept = ids(&set);
        kept.sort_unstable();
        assert_eq!(kept, vec![998, 1001, 1003]);
        assert_eq!(
            set.successors().len(),
            2,
            "split tracks surviving successors"
        );
        assert_eq!(set.predecessors().len(), 1);
        // Sides stay ordered closest-first after the in-place compaction.
        assert_eq!(set.closest_successor().unwrap().id().raw(), 1001);
        assert_eq!(set.closest_predecessor().unwrap().id().raw(), 998);

        // Nothing left to evict: reports no change.
        assert!(!set.evict_expired(20, 10));
        // A generous bound keeps everything.
        let mut untouched = LeafSet::new(NodeId::new(1000), 4);
        untouched.update([stale(1001, 1)]);
        assert!(!untouched.evict_expired(20, 100));
        assert_eq!(untouched.len(), 1);
    }

    #[test]
    fn empty_update_and_empty_set_accessors() {
        let mut set: LeafSet<u32> = LeafSet::new(NodeId::new(5), 4);
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        set.update(std::iter::empty());
        assert!(set.is_empty());
        assert!(set.closest_successor().is_none());
        assert!(set.closest_predecessor().is_none());
        assert!(set.sorted_by_distance_from_self().is_empty());
        assert_eq!(set.capacity(), 4);
        assert_eq!(set.own_id(), NodeId::new(5));
        assert!(set.to_vec().is_empty());
    }
}
