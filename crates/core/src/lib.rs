//! # bss-core — the Bootstrapping Service
//!
//! This crate implements the paper's contribution (§4): a gossip protocol that
//! builds, *simultaneously at every node and from scratch*, the two data
//! structures on which prefix-based routing substrates (Pastry, Kademlia,
//! Tapestry, Bamboo) rely:
//!
//! * a **leaf set** — the `c` nearest neighbours on the sorted ring of node
//!   identifiers, balanced between successors and predecessors
//!   ([`leafset::LeafSet`]);
//! * a **prefix routing table** — up to `k` descriptors for every
//!   `(common-prefix length, first differing digit)` pair
//!   ([`prefix_table::PrefixTable`]).
//!
//! The protocol (Fig. 2 of the paper) is a T-Man-style epidemic: each cycle a node
//! picks a peer from the closer half of its leaf set ([`node::BootstrapNode::select_peer`]),
//! sends it an optimised digest of everything it knows
//! ([`message::create_message`]), receives the peer's digest in return, and both
//! sides run `UPDATELEAFSET` and `UPDATEPREFIXTABLE`. The gradually improving
//! prefix tables feed back into ring construction so the two structures boost each
//! other.
//!
//! Module map:
//!
//! * [`leafset`] — `UPDATELEAFSET` and the balanced successor/predecessor set.
//! * [`prefix_table`] — `UPDATEPREFIXTABLE` and the `(i, j, k)` slot structure.
//! * [`message`] — `CREATEMESSAGE`: the peer-targeted message optimisation.
//! * [`node`] — one node's protocol state and the active/passive thread logic.
//! * [`compact`] — the packed per-node storage the simulation drivers keep
//!   their population in (8-byte descriptors over a shared identifier arena),
//!   rehydrated into fat [`node::BootstrapNode`]s on the exchange hot path.
//! * [`protocol`] — the cycle-driven simulation driver running every node over a
//!   [`PeerSampler`](bss_sampling::sampler::PeerSampler).
//! * [`convergence`] — the global oracle computing the *perfect* leaf sets and
//!   prefix tables and the proportion of missing entries (the quantity plotted in
//!   Figures 3 and 4).
//! * [`scenario`] — engine-agnostic run descriptions: a composable timeline of
//!   [`ScenarioEvent`](scenario::ScenarioEvent)s (loss windows, churn bursts,
//!   catastrophic failures, massive joins, partitions that merge), the
//!   [`Engine`](scenario::Engine) selection (cycle, parallel cycle,
//!   discrete-event) and the pluggable [`Observer`](scenario::Observer) trait.
//! * [`experiment`] — a batteries-included experiment runner combining all of the
//!   above behind the engine-agnostic [`run_scenario`](experiment::run_scenario)
//!   entry point; this is what the examples and the benchmark harness drive.
//!
//! # Example
//!
//! ```rust
//! use bss_core::experiment::{Experiment, ExperimentConfig};
//!
//! let config = ExperimentConfig::builder()
//!     .network_size(128)
//!     .seed(7)
//!     .max_cycles(60)
//!     .build()
//!     .expect("valid configuration");
//! let outcome = Experiment::new(config).run();
//! assert!(outcome.converged());
//! println!(
//!     "perfect tables after {} cycles",
//!     outcome.convergence_cycle().unwrap()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compact;
pub mod convergence;
pub mod experiment;
pub mod leafset;
pub mod message;
pub mod node;
pub mod prefix_table;
pub mod protocol;
pub mod routing;
pub mod scenario;
pub mod traffic;

pub use compact::CompactNode;
pub use convergence::ConvergenceOracle;
pub use experiment::{run_scenario, Experiment, ExperimentConfig, PopulationSnapshot, RunReport};
pub use leafset::LeafSet;
pub use message::create_message;
pub use node::BootstrapNode;
pub use prefix_table::PrefixTable;
pub use protocol::{BootstrapMessage, BootstrapProtocol};
pub use routing::{Contact, RouterKind};
pub use scenario::{
    Engine, KeyDist, LatencyModel, NullObserver, Observer, PartitionSpec, Phase, PlacementSpec,
    Scenario, ScenarioEvent, WanParams,
};
