//! `CREATEMESSAGE`: composing the peer-targeted gossip message.
//!
//! "Knowing the ID of the peer, the method optimizes the information to be sent as
//! follows. First it takes the union of the leaf set, cr random samples taken from
//! the sampling service, the current prefix table, and its own descriptor (in other
//! words, all locally available information). It orders this set according to
//! distance from the peer node, and keeps the first c entries. In addition, it adds
//! to the message all node descriptors that are potentially useful for the peer for
//! its prefix table (i.e., have a common prefix with the peer ID). The size of this
//! additional part is not fixed but is bounded by the size of the full prefix
//! table, and usually is smaller in practice." (§4)

use crate::leafset::LeafSet;
use crate::prefix_table::PrefixTable;
use bss_util::descriptor::{dedup_freshest, Address, Descriptor};
use bss_util::id::NodeId;

/// Builds the message a node sends to `peer_id`.
///
/// * `own` — the sender's own descriptor (always included in the candidate union).
/// * `leaf_set`, `prefix_table` — the sender's current state.
/// * `random_samples` — the `cr` descriptors freshly obtained from the peer
///   sampling service.
/// * `ring_entries` — the number of entries kept from the distance-ordered union
///   (the paper's `c`).
///
/// The returned message contains at most `ring_entries` descriptors chosen by ring
/// distance to the peer plus every locally known descriptor sharing a prefix with
/// the peer; duplicates are removed. The peer's own descriptor is never included.
pub fn create_message<A: Address>(
    own: Descriptor<A>,
    leaf_set: &LeafSet<A>,
    prefix_table: &PrefixTable<A>,
    random_samples: &[Descriptor<A>],
    peer_id: NodeId,
    ring_entries: usize,
) -> Vec<Descriptor<A>> {
    // The union of all locally available information.
    let mut union: Vec<Descriptor<A>> =
        Vec::with_capacity(1 + leaf_set.len() + prefix_table.len() + random_samples.len());
    union.push(own);
    union.extend(leaf_set.iter().copied());
    union.extend(random_samples.iter().copied());
    union.extend(prefix_table.iter().copied());
    union.retain(|d| d.id() != peer_id);
    dedup_freshest(&mut union);

    // Part one: the `c` descriptors closest to the peer on the ring, selected the
    // same way the peer's own `UPDATELEAFSET` will select them — up to `c/2`
    // closest successors and `c/2` closest predecessors of the peer (spilling when
    // one side is short). A plain undirected-distance cut-off would starve the
    // peer's sparser ring side whenever its denser side has more than `c` nodes
    // nearby, which is exactly the "last few entries" end-game the paper relies on
    // the message optimisation to finish quickly.
    let by_distance: Vec<Descriptor<A>> = if ring_entries == 0 {
        Vec::new()
    } else {
        let balanced_budget = if ring_entries % 2 == 0 {
            ring_entries
        } else {
            ring_entries + 1
        };
        let mut targeted = LeafSet::new(peer_id, balanced_budget);
        targeted.update(union.iter().copied());
        let mut selected = targeted.to_vec();
        selected.truncate(ring_entries);
        selected
    };

    // Part two: every descriptor "potentially useful for the peer for its prefix
    // table". The sender estimates usefulness by building, from its local union, the
    // prefix table the *peer* would construct (same geometry, keyed on the peer's
    // identifier) and shipping its content. This is what bounds the additional part
    // "by the size of the full prefix table" — at most `k` descriptors per slot are
    // ever selected — and it is what lets a node's already-complete rows (for
    // example row 0, which holds every other leading digit) propagate to peers whose
    // corresponding rows are still empty.
    let mut useful_for_peer: PrefixTable<A> = PrefixTable::new(peer_id, prefix_table.geometry());
    useful_for_peer.update(union.iter().copied());

    let mut message = by_distance;
    message.extend(useful_for_peer.iter().copied());
    dedup_freshest(&mut message);
    message
}

/// An upper bound on the size of any message produced by [`create_message`] with
/// the given parameters: the `c` ring-targeted entries plus a full prefix table's
/// worth of prefix-sharing entries (the paper notes the prefix part "is bounded by
/// the size of the full prefix table, and usually is smaller in practice").
pub fn message_size_bound(ring_entries: usize, prefix_capacity: usize) -> usize {
    ring_entries + prefix_capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_util::geometry::TableGeometry;

    fn d(id: u64, addr: u32) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, 0)
    }

    fn setup(own_id: u64) -> (Descriptor<u32>, LeafSet<u32>, PrefixTable<u32>) {
        let own = d(own_id, 0);
        let leaf_set = LeafSet::new(NodeId::new(own_id), 4);
        let table = PrefixTable::new(NodeId::new(own_id), TableGeometry::new(4, 3).unwrap());
        (own, leaf_set, table)
    }

    #[test]
    fn message_contains_closest_entries_to_the_peer() {
        let (own, mut leaf_set, table) = setup(1000);
        leaf_set.update([d(900, 1), d(1100, 2), d(1200, 3), d(800, 4)]);
        let peer = NodeId::new(1150);
        let message = create_message(own, &leaf_set, &table, &[], peer, 2);
        // The two candidates closest to 1150 (1100 and 1200) are always included in
        // the ring-targeted part of the message.
        let ids: Vec<u64> = message.iter().map(|d| d.id().raw()).collect();
        assert!(ids.contains(&1100));
        assert!(ids.contains(&1200));
        // Everything else may still ride along as prefix-useful content, but never
        // beyond the documented bound.
        assert!(message.len() <= message_size_bound(2, table.geometry().capacity()));
    }

    #[test]
    fn message_never_contains_the_peer_itself() {
        let (own, mut leaf_set, table) = setup(1000);
        leaf_set.update([d(1100, 1)]);
        let peer = NodeId::new(1100);
        let message = create_message(own, &leaf_set, &table, &[d(1100, 9)], peer, 10);
        assert!(message.iter().all(|d| d.id() != peer));
        // The sender's own descriptor is eligible content.
        assert!(message.iter().any(|d| d.id() == own.id()));
    }

    #[test]
    fn prefix_sharing_entries_are_appended_beyond_the_ring_budget() {
        let (own, mut leaf_set, mut table) = setup(0x1000_0000_0000_0000);
        // Ring-wise close to the peer: a couple of nearby identifiers.
        leaf_set.update([d(0xF000_0000_0000_0010, 1), d(0xF000_0000_0000_0020, 2)]);
        // Prefix-wise useful for the peer (shares the first digit 0xF) but
        // ring-wise far from it.
        let useful = d(0xF800_0000_0000_0000, 3);
        table.insert(useful);
        let peer = NodeId::new(0xF000_0000_0000_0000);
        let message = create_message(own, &leaf_set, &table, &[], peer, 2);
        assert!(
            message.iter().any(|d| d.id() == useful.id()),
            "prefix-sharing descriptor must be included even past the ring budget"
        );
        // The bound from the paper holds.
        assert!(message.len() <= message_size_bound(2, table.geometry().capacity()));
    }

    #[test]
    fn random_samples_are_eligible_content() {
        let (own, leaf_set, table) = setup(1000);
        let sample = d(1300, 7);
        let message = create_message(own, &leaf_set, &table, &[sample], NodeId::new(1301), 5);
        assert!(message.iter().any(|d| d.id() == sample.id()));
    }

    #[test]
    fn duplicates_are_removed_keeping_freshest() {
        let (own, mut leaf_set, table) = setup(1000);
        leaf_set.update([Descriptor::new(NodeId::new(1100), 1u32, 2)]);
        let stale_copy = Descriptor::new(NodeId::new(1100), 8u32, 1);
        let message = create_message(own, &leaf_set, &table, &[stale_copy], NodeId::new(1101), 10);
        let copies: Vec<_> = message
            .iter()
            .filter(|d| d.id() == NodeId::new(1100))
            .collect();
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].timestamp(), 2, "freshest copy wins");
    }

    #[test]
    fn empty_state_produces_only_the_own_descriptor() {
        let (own, leaf_set, table) = setup(1000);
        let message = create_message(own, &leaf_set, &table, &[], NodeId::new(5), 20);
        assert_eq!(message, vec![own]);
    }

    #[test]
    fn ring_budget_zero_still_sends_prefix_entries() {
        let (own, leaf_set, mut table) = setup(0x1000_0000_0000_0000);
        let useful = d(0xF100_0000_0000_0000, 3);
        table.insert(useful);
        let peer = NodeId::new(0xF000_0000_0000_0000);
        let message = create_message(own, &leaf_set, &table, &[], peer, 0);
        assert!(
            message.iter().any(|d| d.id() == useful.id()),
            "prefix-useful entry must be sent even with a zero ring budget"
        );
        assert!(message.iter().all(|d| d.id() != peer));
    }

    #[test]
    fn size_bound_formula() {
        assert_eq!(message_size_bound(20, 720), 740);
        assert_eq!(message_size_bound(0, 0), 0);
    }
}
