//! `CREATEMESSAGE`: composing the peer-targeted gossip message.
//!
//! "Knowing the ID of the peer, the method optimizes the information to be sent as
//! follows. First it takes the union of the leaf set, cr random samples taken from
//! the sampling service, the current prefix table, and its own descriptor (in other
//! words, all locally available information). It orders this set according to
//! distance from the peer node, and keeps the first c entries. In addition, it adds
//! to the message all node descriptors that are potentially useful for the peer for
//! its prefix table (i.e., have a common prefix with the peer ID). The size of this
//! additional part is not fixed but is bounded by the size of the full prefix
//! table, and usually is smaller in practice." (§4)

use crate::leafset::LeafSet;
use crate::prefix_table::PrefixTable;
use bss_util::descriptor::{dedup_freshest, Address, Descriptor};
use bss_util::id::NodeId;
use bss_util::view::rank_top_by;

/// Builds the message a node sends to `peer_id`.
///
/// * `own` — the sender's own descriptor (always included in the candidate union).
/// * `leaf_set`, `prefix_table` — the sender's current state.
/// * `random_samples` — the `cr` descriptors freshly obtained from the peer
///   sampling service.
/// * `ring_entries` — the number of entries kept from the distance-ordered union
///   (the paper's `c`).
///
/// Reusable working memory for [`create_message_with`].
///
/// One instance per driver (not per node) is enough: threading it through makes
/// message composition allocation-free in the steady state — composing a
/// message is the single most-executed operation of a simulation (twice per
/// exchange).
#[derive(Debug, Clone)]
pub struct MessageScratch<A> {
    union: Vec<Descriptor<A>>,
    successors: Vec<u32>,
    predecessors: Vec<u32>,
    keep_positions: Vec<u32>,
    slot_counts: Vec<u16>,
    winners: Vec<(u16, u32)>,
    in_part_one: Vec<bool>,
}

impl<A> Default for MessageScratch<A> {
    fn default() -> Self {
        MessageScratch {
            union: Vec::new(),
            successors: Vec::new(),
            predecessors: Vec::new(),
            keep_positions: Vec::new(),
            slot_counts: Vec::new(),
            winners: Vec::new(),
            in_part_one: Vec::new(),
        }
    }
}

/// Builds the message a node sends to `peer_id`, allocating fresh working
/// buffers. Prefer [`create_message_with`] on hot paths.
pub fn create_message<A: Address>(
    own: Descriptor<A>,
    leaf_set: &LeafSet<A>,
    prefix_table: &PrefixTable<A>,
    random_samples: &[Descriptor<A>],
    peer_id: NodeId,
    ring_entries: usize,
) -> Vec<Descriptor<A>> {
    create_message_with(
        &mut MessageScratch::default(),
        own,
        leaf_set,
        prefix_table,
        random_samples,
        peer_id,
        ring_entries,
    )
}

/// The returned message contains at most `ring_entries` descriptors chosen by ring
/// distance to the peer plus every locally known descriptor sharing a prefix with
/// the peer; duplicates are removed. The peer's own descriptor is never included.
///
/// This is the single most-executed function of a simulation (twice per
/// exchange), so both selections run directly over the deduplicated union —
/// part one as a partial selection of the peer-view ring neighbours, part two
/// as one capped-counting pass over the peer's slot space — instead of
/// materialising a temporary [`LeafSet`] and [`PrefixTable`] per message, and
/// all working memory comes from the caller-owned `scratch`. The output is
/// element-for-element identical to the naive construction.
pub fn create_message_with<A: Address>(
    scratch: &mut MessageScratch<A>,
    own: Descriptor<A>,
    leaf_set: &LeafSet<A>,
    prefix_table: &PrefixTable<A>,
    random_samples: &[Descriptor<A>],
    peer_id: NodeId,
    ring_entries: usize,
) -> Vec<Descriptor<A>> {
    // The union of all locally available information.
    let union = &mut scratch.union;
    union.clear();
    union.reserve(1 + leaf_set.len() + prefix_table.len() + random_samples.len());
    union.push(own);
    union.extend(leaf_set.iter().copied());
    union.extend(random_samples.iter().copied());
    union.extend(prefix_table.iter().copied());
    union.retain(|d| d.id() != peer_id);
    dedup_freshest(union);

    // Part one: the `c` descriptors closest to the peer on the ring, selected the
    // same way the peer's own `UPDATELEAFSET` will select them — up to `c/2`
    // closest successors and `c/2` closest predecessors of the peer (spilling when
    // one side is short). A plain undirected-distance cut-off would starve the
    // peer's sparser ring side whenever its denser side has more than `c` nodes
    // nearby, which is exactly the "last few entries" end-game the paper relies on
    // the message optimisation to finish quickly. Selection works on union
    // *positions* so part two can cheaply skip already-shipped entries.
    let keep_positions = &mut scratch.keep_positions;
    keep_positions.clear();
    if ring_entries > 0 && !union.is_empty() {
        let balanced_budget = ring_entries + ring_entries % 2;
        let half = balanced_budget / 2;
        let successors = &mut scratch.successors;
        let predecessors = &mut scratch.predecessors;
        successors.clear();
        predecessors.clear();
        for (position, d) in union.iter().enumerate() {
            if peer_id.is_successor(d.id()) {
                successors.push(position as u32);
            } else {
                predecessors.push(position as u32);
            }
        }
        // Partial selection: only the best `balanced_budget` of each side can
        // ever be kept, even after spilling.
        rank_top_by(successors, balanced_budget, |&x, &y| {
            let (a, b) = (union[x as usize].id(), union[y as usize].id());
            peer_id
                .clockwise_distance(a)
                .cmp(&peer_id.clockwise_distance(b))
                .then_with(|| a.cmp(&b))
        });
        rank_top_by(predecessors, balanced_budget, |&x, &y| {
            let (a, b) = (union[x as usize].id(), union[y as usize].id());
            a.clockwise_distance(peer_id)
                .cmp(&b.clockwise_distance(peer_id))
                .then_with(|| a.cmp(&b))
        });
        // Keep half per side, spilling into the other side when one is short —
        // mirroring LeafSet::update (the truncation to `balanced_budget` above
        // cannot disturb the shortfall computation because a side is only ever
        // short when it held fewer than `half <= balanced_budget` candidates).
        let successor_short = half.saturating_sub(successors.len());
        let predecessor_short = half.saturating_sub(predecessors.len());
        let keep_successors = (half + predecessor_short).min(successors.len());
        let keep_predecessors = (half + successor_short).min(predecessors.len());
        keep_positions.extend(&successors[..keep_successors]);
        keep_positions.extend(&predecessors[..keep_predecessors]);
        keep_positions.truncate(ring_entries);
    }

    // Part two: every descriptor "potentially useful for the peer for its prefix
    // table" — what the peer's own UPDATEPREFIXTABLE would store from the union:
    // per slot of the *peer's* table, the first `k` union entries (in union
    // order) that fall into it, emitted in (row, column) slot order. This is
    // what bounds the additional part "by the size of the full prefix table" —
    // and it is what lets a node's already-complete rows (for example row 0,
    // which holds every other leading digit) propagate to peers whose
    // corresponding rows are still empty.
    let geometry = prefix_table.geometry();
    let columns = geometry.columns();
    let per_slot = geometry.entries_per_slot();
    let slot_counts = &mut scratch.slot_counts;
    slot_counts.clear();
    slot_counts.resize(geometry.rows() * columns, 0);
    let winners = &mut scratch.winners;
    winners.clear();
    for (position, d) in union.iter().enumerate() {
        if let Some((row, column)) = geometry.slot_of(peer_id, d.id()) {
            let slot = row * columns + column as usize;
            if (slot_counts[slot] as usize) < per_slot {
                slot_counts[slot] += 1;
                winners.push((slot as u16, position as u32));
            }
        }
    }
    // Stable by slot key: within a slot, union order — the table's iteration
    // order.
    winners.sort_by_key(|&(slot, _)| slot);

    // Assemble: part one, then the part-two entries not already shipped (the
    // union is deduplicated, so position equality is identifier equality).
    let in_part_one = &mut scratch.in_part_one;
    in_part_one.clear();
    in_part_one.resize(union.len(), false);
    for &position in keep_positions.iter() {
        in_part_one[position as usize] = true;
    }
    let mut message: Vec<Descriptor<A>> = Vec::with_capacity(keep_positions.len() + winners.len());
    message.extend(keep_positions.iter().map(|&p| union[p as usize]));
    message.extend(
        winners
            .iter()
            .filter(|&&(_, p)| !in_part_one[p as usize])
            .map(|&(_, p)| union[p as usize]),
    );
    message
}

/// An upper bound on the size of any message produced by [`create_message`] with
/// the given parameters: the `c` ring-targeted entries plus a full prefix table's
/// worth of prefix-sharing entries (the paper notes the prefix part "is bounded by
/// the size of the full prefix table, and usually is smaller in practice").
pub fn message_size_bound(ring_entries: usize, prefix_capacity: usize) -> usize {
    ring_entries + prefix_capacity
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_util::geometry::TableGeometry;

    fn d(id: u64, addr: u32) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, 0)
    }

    fn setup(own_id: u64) -> (Descriptor<u32>, LeafSet<u32>, PrefixTable<u32>) {
        let own = d(own_id, 0);
        let leaf_set = LeafSet::new(NodeId::new(own_id), 4);
        let table = PrefixTable::new(NodeId::new(own_id), TableGeometry::new(4, 3).unwrap());
        (own, leaf_set, table)
    }

    #[test]
    fn message_contains_closest_entries_to_the_peer() {
        let (own, mut leaf_set, table) = setup(1000);
        leaf_set.update([d(900, 1), d(1100, 2), d(1200, 3), d(800, 4)]);
        let peer = NodeId::new(1150);
        let message = create_message(own, &leaf_set, &table, &[], peer, 2);
        // The two candidates closest to 1150 (1100 and 1200) are always included in
        // the ring-targeted part of the message.
        let ids: Vec<u64> = message.iter().map(|d| d.id().raw()).collect();
        assert!(ids.contains(&1100));
        assert!(ids.contains(&1200));
        // Everything else may still ride along as prefix-useful content, but never
        // beyond the documented bound.
        assert!(message.len() <= message_size_bound(2, table.geometry().capacity()));
    }

    #[test]
    fn message_never_contains_the_peer_itself() {
        let (own, mut leaf_set, table) = setup(1000);
        leaf_set.update([d(1100, 1)]);
        let peer = NodeId::new(1100);
        let message = create_message(own, &leaf_set, &table, &[d(1100, 9)], peer, 10);
        assert!(message.iter().all(|d| d.id() != peer));
        // The sender's own descriptor is eligible content.
        assert!(message.iter().any(|d| d.id() == own.id()));
    }

    #[test]
    fn prefix_sharing_entries_are_appended_beyond_the_ring_budget() {
        let (own, mut leaf_set, mut table) = setup(0x1000_0000_0000_0000);
        // Ring-wise close to the peer: a couple of nearby identifiers.
        leaf_set.update([d(0xF000_0000_0000_0010, 1), d(0xF000_0000_0000_0020, 2)]);
        // Prefix-wise useful for the peer (shares the first digit 0xF) but
        // ring-wise far from it.
        let useful = d(0xF800_0000_0000_0000, 3);
        table.insert(useful);
        let peer = NodeId::new(0xF000_0000_0000_0000);
        let message = create_message(own, &leaf_set, &table, &[], peer, 2);
        assert!(
            message.iter().any(|d| d.id() == useful.id()),
            "prefix-sharing descriptor must be included even past the ring budget"
        );
        // The bound from the paper holds.
        assert!(message.len() <= message_size_bound(2, table.geometry().capacity()));
    }

    #[test]
    fn random_samples_are_eligible_content() {
        let (own, leaf_set, table) = setup(1000);
        let sample = d(1300, 7);
        let message = create_message(own, &leaf_set, &table, &[sample], NodeId::new(1301), 5);
        assert!(message.iter().any(|d| d.id() == sample.id()));
    }

    #[test]
    fn duplicates_are_removed_keeping_freshest() {
        let (own, mut leaf_set, table) = setup(1000);
        leaf_set.update([Descriptor::new(NodeId::new(1100), 1u32, 2)]);
        let stale_copy = Descriptor::new(NodeId::new(1100), 8u32, 1);
        let message = create_message(own, &leaf_set, &table, &[stale_copy], NodeId::new(1101), 10);
        let copies: Vec<_> = message
            .iter()
            .filter(|d| d.id() == NodeId::new(1100))
            .collect();
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].timestamp(), 2, "freshest copy wins");
    }

    /// The original construction: build the temporary peer-keyed LeafSet and
    /// PrefixTable, concatenate, dedup. The optimised `create_message` must be
    /// element-for-element identical to this.
    fn create_message_reference(
        own: Descriptor<u32>,
        leaf_set: &LeafSet<u32>,
        prefix_table: &PrefixTable<u32>,
        random_samples: &[Descriptor<u32>],
        peer_id: NodeId,
        ring_entries: usize,
    ) -> Vec<Descriptor<u32>> {
        let mut union: Vec<Descriptor<u32>> = Vec::new();
        union.push(own);
        union.extend(leaf_set.iter().copied());
        union.extend(random_samples.iter().copied());
        union.extend(prefix_table.iter().copied());
        union.retain(|d| d.id() != peer_id);
        dedup_freshest(&mut union);

        let by_distance: Vec<Descriptor<u32>> = if ring_entries == 0 {
            Vec::new()
        } else {
            let balanced_budget = ring_entries + ring_entries % 2;
            let mut targeted = LeafSet::new(peer_id, balanced_budget);
            targeted.update(union.iter().copied());
            let mut selected = targeted.to_vec();
            selected.truncate(ring_entries);
            selected
        };

        let mut useful_for_peer: PrefixTable<u32> =
            PrefixTable::new(peer_id, prefix_table.geometry());
        useful_for_peer.update(union.iter().copied());

        let mut message = by_distance;
        message.extend(useful_for_peer.iter().copied());
        dedup_freshest(&mut message);
        message
    }

    #[test]
    fn optimised_message_matches_the_reference_construction() {
        use bss_util::rng::SimRng;
        let mut rng = SimRng::seed_from(4242);
        for round in 0..60u64 {
            let own_id = rng.next_u64();
            let own = Descriptor::new(NodeId::new(own_id), 0u32, round);
            let capacity = [2usize, 4, 8, 20][rng.index(4)];
            let mut leaf_set: LeafSet<u32> = LeafSet::new(NodeId::new(own_id), capacity);
            let mut table: PrefixTable<u32> =
                PrefixTable::new(NodeId::new(own_id), TableGeometry::new(4, 3).unwrap());
            let population = rng.index(120) + 1;
            for i in 0..population {
                let descriptor =
                    Descriptor::new(NodeId::new(rng.next_u64()), i as u32, rng.next_u64() % 8);
                leaf_set.update([descriptor]);
                table.insert(descriptor);
            }
            let samples: Vec<Descriptor<u32>> = (0..rng.index(30))
                .map(|i| Descriptor::new(NodeId::new(rng.next_u64()), i as u32, rng.next_u64() % 8))
                .collect();
            // Sometimes target a known identifier, sometimes a stranger.
            let peer_id = if rng.chance(0.3) && !leaf_set.is_empty() {
                leaf_set.to_vec()[rng.index(leaf_set.len())].id()
            } else {
                NodeId::new(rng.next_u64())
            };
            for ring_entries in [0usize, 1, 2, 7, 20] {
                let fast = create_message(own, &leaf_set, &table, &samples, peer_id, ring_entries);
                let reference = create_message_reference(
                    own,
                    &leaf_set,
                    &table,
                    &samples,
                    peer_id,
                    ring_entries,
                );
                assert_eq!(fast, reference, "round {round} ring_entries {ring_entries}");
            }
        }
    }

    #[test]
    fn empty_state_produces_only_the_own_descriptor() {
        let (own, leaf_set, table) = setup(1000);
        let message = create_message(own, &leaf_set, &table, &[], NodeId::new(5), 20);
        assert_eq!(message, vec![own]);
    }

    #[test]
    fn ring_budget_zero_still_sends_prefix_entries() {
        let (own, leaf_set, mut table) = setup(0x1000_0000_0000_0000);
        let useful = d(0xF100_0000_0000_0000, 3);
        table.insert(useful);
        let peer = NodeId::new(0xF000_0000_0000_0000);
        let message = create_message(own, &leaf_set, &table, &[], peer, 0);
        assert!(
            message.iter().any(|d| d.id() == useful.id()),
            "prefix-useful entry must be sent even with a zero ring budget"
        );
        assert!(message.iter().all(|d| d.id() != peer));
    }

    #[test]
    fn size_bound_formula() {
        assert_eq!(message_size_bound(20, 720), 740);
        assert_eq!(message_size_bound(0, 0), 0);
    }
}
