//! Per-node protocol state: the active/passive thread logic of Fig. 2.
//!
//! A [`BootstrapNode`] owns one node's leaf set and prefix table and implements the
//! protocol's node-local operations: peer selection (`SELECTPEER`), message
//! composition (`CREATEMESSAGE`, delegated to [`crate::message`]) and state update
//! on receipt (`UPDATELEAFSET` + `UPDATEPREFIXTABLE`). It is deliberately free of
//! any simulator or network dependency — the same type is driven by the
//! cycle-driven simulator ([`crate::protocol`]), the event-driven simulator and the
//! UDP deployment in `bss-net`.

use crate::leafset::{LeafSet, MergeScratch};
use crate::message::{create_message_with, MessageScratch};
use crate::prefix_table::PrefixTable;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::{Address, Descriptor};
use bss_util::geometry::TableGeometry;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;

/// One node's bootstrapping-service state.
///
/// # Example
///
/// ```rust
/// use bss_core::node::BootstrapNode;
/// use bss_util::config::BootstrapParams;
/// use bss_util::descriptor::Descriptor;
/// use bss_util::id::NodeId;
/// use bss_util::rng::SimRng;
///
/// let params = BootstrapParams::paper_default();
/// let own = Descriptor::new(NodeId::new(42), 0u32, 0);
/// let mut node = BootstrapNode::new(own, &params).unwrap();
///
/// // Seed the leaf set with a few random contacts (the paper's start condition).
/// node.initialize([Descriptor::new(NodeId::new(99), 1u32, 0)]);
/// let mut rng = SimRng::seed_from(1);
/// let peer = node.select_peer(&mut rng).unwrap();
/// assert_eq!(peer.id(), NodeId::new(99));
/// ```
#[derive(Debug, Clone)]
pub struct BootstrapNode<A> {
    own: Descriptor<A>,
    params: BootstrapParams,
    leaf_set: LeafSet<A>,
    prefix_table: PrefixTable<A>,
    exchanges_initiated: u64,
    descriptors_received: u64,
}

impl<A: Address> BootstrapNode<A> {
    /// Creates the state for the node described by `own`.
    ///
    /// # Errors
    ///
    /// Returns the parameter-validation error when `params` is invalid.
    pub fn new(
        own: Descriptor<A>,
        params: &BootstrapParams,
    ) -> Result<Self, bss_util::config::InvalidParams> {
        params.validate()?;
        let geometry = params
            .geometry()
            .expect("geometry validated by params.validate()");
        Ok(BootstrapNode {
            own,
            params: *params,
            leaf_set: LeafSet::new(own.id(), params.leaf_set_size),
            prefix_table: PrefixTable::new(own.id(), geometry),
            exchanges_initiated: 0,
            descriptors_received: 0,
        })
    }

    /// The node's own descriptor.
    pub fn own_descriptor(&self) -> Descriptor<A> {
        self.own
    }

    /// The node's identifier.
    pub fn id(&self) -> NodeId {
        self.own.id()
    }

    /// The protocol parameters this node runs with.
    pub fn params(&self) -> &BootstrapParams {
        &self.params
    }

    /// The table geometry.
    pub fn geometry(&self) -> TableGeometry {
        self.prefix_table.geometry()
    }

    /// The current leaf set.
    pub fn leaf_set(&self) -> &LeafSet<A> {
        &self.leaf_set
    }

    /// The current prefix table.
    pub fn prefix_table(&self) -> &PrefixTable<A> {
        &self.prefix_table
    }

    /// Number of exchanges this node has initiated (active-thread iterations).
    pub fn exchanges_initiated(&self) -> u64 {
        self.exchanges_initiated
    }

    /// Total number of descriptors received in messages so far.
    pub fn descriptors_received(&self) -> u64 {
        self.descriptors_received
    }

    /// Start-up: "all nodes use the peer sampling service to initialize their leaf
    /// sets with a set of random nodes, and clear their prefix table" (§4).
    pub fn initialize(&mut self, random_contacts: impl IntoIterator<Item = Descriptor<A>>) {
        self.leaf_set = LeafSet::new(self.own.id(), self.params.leaf_set_size);
        self.prefix_table = PrefixTable::new(self.own.id(), self.geometry());
        self.leaf_set.update(random_contacts);
    }

    /// `SELECTPEER`: orders the leaf set by ring distance from the own identifier
    /// and picks a random element from the first (closer) half. Returns `None`
    /// when the leaf set is empty.
    ///
    /// Only the closer half is actually put in order (partial selection) — the
    /// picked element is identical to sorting the whole set.
    pub fn select_peer(&self, rng: &mut SimRng) -> Option<Descriptor<A>> {
        self.select_peer_with(rng, &mut Vec::new())
    }

    /// [`BootstrapNode::select_peer`] with a caller-owned candidate buffer —
    /// the allocation-free variant the simulation drivers use on the hot path
    /// (the leaf set content is copied into `candidates` and ranked there).
    pub fn select_peer_with(
        &self,
        rng: &mut SimRng,
        candidates: &mut Vec<Descriptor<A>>,
    ) -> Option<Descriptor<A>> {
        candidates.clear();
        candidates.extend_from_slice(self.leaf_set.as_slice());
        select_peer_in(self.own.id(), candidates, rng)
    }

    /// `CREATEMESSAGE`: composes the message to send to `peer_id`, mixing in the
    /// `cr` random samples obtained from the peer sampling service. Increments the
    /// exchange counter when `initiating` is true (the active thread).
    pub fn create_message(
        &mut self,
        peer_id: NodeId,
        random_samples: &[Descriptor<A>],
        initiating: bool,
    ) -> Vec<Descriptor<A>> {
        self.create_message_with(
            peer_id,
            random_samples,
            initiating,
            &mut MessageScratch::default(),
        )
    }

    /// [`BootstrapNode::create_message`] with caller-owned working memory — the
    /// allocation-free variant the simulation driver uses on the hot path.
    pub fn create_message_with(
        &mut self,
        peer_id: NodeId,
        random_samples: &[Descriptor<A>],
        initiating: bool,
        scratch: &mut MessageScratch<A>,
    ) -> Vec<Descriptor<A>> {
        if initiating {
            self.exchanges_initiated += 1;
        }
        create_message_with(
            scratch,
            self.own,
            &self.leaf_set,
            &self.prefix_table,
            random_samples,
            peer_id,
            self.params.leaf_set_size,
        )
    }

    /// The clock-aware [`BootstrapNode::create_message_with`]: when descriptor
    /// aging is configured, the node first re-stamps its own descriptor with
    /// `now` — this is the heartbeat half of the failure detector: a live node
    /// keeps its circulating descriptor fresh by gossiping, so only departed
    /// nodes' descriptors ever expire. Without an aging bound this is exactly
    /// `create_message_with` (the timestamp is left untouched, keeping the
    /// detector-free byte-identical path).
    pub fn create_message_at(
        &mut self,
        peer_id: NodeId,
        random_samples: &[Descriptor<A>],
        initiating: bool,
        now: u64,
        scratch: &mut MessageScratch<A>,
    ) -> Vec<Descriptor<A>> {
        if self.params.descriptor_max_age.is_some() {
            self.own = self.own.refreshed(now);
        }
        self.create_message_with(peer_id, random_samples, initiating, scratch)
    }

    /// Processes a received message: `UPDATELEAFSET` followed by
    /// `UPDATEPREFIXTABLE` (both the active and the passive thread do exactly
    /// this, Fig. 2).
    ///
    /// Returns whether the message changed the node's tables (leaf-set
    /// membership or prefix-table content) — timestamp-only refreshes do not
    /// count. The convergence tracker uses this to skip re-measuring nodes
    /// whose state is unchanged.
    pub fn receive(&mut self, descriptors: &[Descriptor<A>]) -> bool {
        self.receive_with(descriptors, &mut MergeScratch::default())
    }

    /// [`BootstrapNode::receive`] with caller-owned merge working memory — the
    /// allocation-free variant the simulation drivers use on the hot path.
    pub fn receive_with(
        &mut self,
        descriptors: &[Descriptor<A>],
        scratch: &mut MergeScratch<A>,
    ) -> bool {
        self.descriptors_received += descriptors.len() as u64;
        let leaf_changed = self
            .leaf_set
            .update_with(descriptors.iter().copied(), scratch);
        let inserted = self.prefix_table.update(descriptors.iter().copied());
        leaf_changed || inserted > 0
    }

    /// The clock-aware [`BootstrapNode::receive_with`]: when
    /// `descriptor_max_age` is configured, the merge first evicts every stored
    /// descriptor whose timestamp lags `now` by more than the bound (leaf set
    /// and prefix table alike), rejects expired incoming descriptors, and
    /// refreshes the timestamps of already-known prefix-table entries from
    /// fresher sightings. All work runs on the caller-owned `scratch` and the
    /// structures' own flat storage — the receive path stays allocation-free.
    ///
    /// Without an aging bound this is exactly `receive_with`, leaving the
    /// detector-free simulation byte-identical.
    pub fn receive_at(
        &mut self,
        descriptors: &[Descriptor<A>],
        now: u64,
        scratch: &mut MergeScratch<A>,
    ) -> bool {
        let Some(max_age) = self.params.descriptor_max_age else {
            return self.receive_with(descriptors, scratch);
        };
        self.descriptors_received += descriptors.len() as u64;
        let leaf_evicted = self.leaf_set.evict_expired(now, max_age);
        let prefix_evicted = self.prefix_table.evict_expired(now, max_age) > 0;
        let accepted = descriptors
            .iter()
            .copied()
            .filter(|d| !d.is_expired(now, max_age));
        let leaf_changed = self.leaf_set.update_with(accepted.clone(), scratch);
        let inserted = self.prefix_table.update_refreshing(accepted);
        leaf_evicted || prefix_evicted || leaf_changed || inserted > 0
    }

    /// [`BootstrapNode::receive_at`] behind an authenticity check: descriptors
    /// failing `verify` are rejected before any merge, as if the message never
    /// contained them. This is the enforcement point of the
    /// [`descriptor_verifier`](BootstrapParams::descriptor_verifier)
    /// countermeasure; the caller supplies the check because only it can reach
    /// the identity registry the stamps are validated against. Counts every
    /// received descriptor (accepted or not), so traffic accounting matches
    /// the unverified path.
    pub fn receive_verified_at(
        &mut self,
        descriptors: &[Descriptor<A>],
        now: u64,
        scratch: &mut MergeScratch<A>,
        verify: impl Fn(&Descriptor<A>) -> bool,
    ) -> bool {
        let rejected = descriptors.iter().filter(|d| !verify(d)).count();
        if rejected == 0 {
            return self.receive_at(descriptors, now, scratch);
        }
        let accepted: Vec<Descriptor<A>> =
            descriptors.iter().filter(|d| verify(d)).copied().collect();
        let changed = self.receive_at(&accepted, now, scratch);
        self.descriptors_received += rejected as u64;
        changed
    }

    /// Restores the identity header — own descriptor and activity counters —
    /// when rehydrating a node from the packed store; the tables are restored
    /// through their own raw accessors.
    pub(crate) fn restore_header(
        &mut self,
        own: Descriptor<A>,
        exchanges_initiated: u64,
        descriptors_received: u64,
    ) {
        self.own = own;
        self.exchanges_initiated = exchanges_initiated;
        self.descriptors_received = descriptors_received;
    }

    /// Mutable access to the leaf set for the packed store's restore path.
    pub(crate) fn leaf_set_mut(&mut self) -> &mut LeafSet<A> {
        &mut self.leaf_set
    }

    /// Mutable access to the prefix table for the packed store's restore path.
    pub(crate) fn prefix_table_mut(&mut self) -> &mut PrefixTable<A> {
        &mut self.prefix_table
    }

    /// Removes every trace of a departed peer from the local state (used by the
    /// churn-aware driver; the basic protocol never needs it because stale entries
    /// are simply out-competed).
    pub fn forget(&mut self, id: NodeId) {
        self.prefix_table.remove(id);
        let survivors: Vec<Descriptor<A>> = self
            .leaf_set
            .iter()
            .filter(|d| d.id() != id)
            .copied()
            .collect();
        self.leaf_set = LeafSet::new(self.own.id(), self.params.leaf_set_size);
        self.leaf_set.update(survivors);
    }
}

/// The ranking nucleus of `SELECTPEER`, shared between the fat node state and
/// the protocol's packed store: ranks the closer half of `candidates` by ring
/// distance from `own` (partial selection — identical to sorting the whole
/// set) and picks a uniform element of that half. Consumes exactly one RNG
/// draw when candidates exist, none otherwise.
pub(crate) fn select_peer_in<A: Address>(
    own: NodeId,
    candidates: &mut Vec<Descriptor<A>>,
    rng: &mut SimRng,
) -> Option<Descriptor<A>> {
    if candidates.is_empty() {
        return None;
    }
    let half = (candidates.len() / 2).max(1);
    bss_util::view::rank_top_by(candidates, half, |a, b| {
        own.ring_distance(a.id())
            .cmp(&own.ring_distance(b.id()))
            .then_with(|| a.id().cmp(&b.id()))
    });
    Some(candidates[rng.index(half)])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn descriptor(id: u64, addr: u32) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, 0)
    }

    fn node(id: u64) -> BootstrapNode<u32> {
        let params = BootstrapParams {
            leaf_set_size: 4,
            random_samples: 4,
            ..BootstrapParams::paper_default()
        };
        BootstrapNode::new(descriptor(id, 0), &params).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        let bad = BootstrapParams {
            leaf_set_size: 3,
            ..BootstrapParams::paper_default()
        };
        assert!(BootstrapNode::new(descriptor(1, 0), &bad).is_err());
        let good = BootstrapNode::new(descriptor(1, 0), &BootstrapParams::paper_default());
        assert!(good.is_ok());
    }

    #[test]
    fn initialize_seeds_leafset_and_clears_table() {
        let mut n = node(1000);
        n.receive(&[descriptor(0xF000_0000_0000_0000, 9)]);
        assert!(!n.prefix_table().is_empty());
        n.initialize([descriptor(1500, 1), descriptor(800, 2)]);
        assert_eq!(n.leaf_set().len(), 2);
        assert!(n.prefix_table().is_empty());
        assert_eq!(n.id(), NodeId::new(1000));
        assert_eq!(n.own_descriptor().address(), 0);
        assert_eq!(n.params().leaf_set_size, 4);
    }

    #[test]
    fn select_peer_prefers_the_closer_half() {
        let mut n = node(1000);
        n.initialize([
            descriptor(1001, 1),
            descriptor(999, 2),
            descriptor(5000, 3),
            descriptor(u64::MAX / 2, 4),
        ]);
        let mut rng = SimRng::seed_from(3);
        for _ in 0..100 {
            let peer = n.select_peer(&mut rng).unwrap();
            // Only the two nearest identifiers (1001 and 999) are eligible.
            assert!(peer.id() == NodeId::new(1001) || peer.id() == NodeId::new(999));
        }
    }

    #[test]
    fn select_peer_on_empty_state_returns_none() {
        let n = node(7);
        let mut rng = SimRng::seed_from(1);
        assert!(n.select_peer(&mut rng).is_none());
    }

    #[test]
    fn select_peer_with_single_entry_returns_it() {
        let mut n = node(7);
        n.initialize([descriptor(9, 1)]);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(n.select_peer(&mut rng).unwrap().id(), NodeId::new(9));
    }

    #[test]
    fn receive_updates_both_structures() {
        let mut n = node(0x1234_0000_0000_0000);
        let near = descriptor(0x1234_0000_0000_0005, 1);
        let far = descriptor(0xF000_0000_0000_0000, 2);
        n.receive(&[near, far]);
        assert!(n.leaf_set().contains(near.id()));
        assert!(n.leaf_set().contains(far.id()));
        assert!(n.prefix_table().contains(near.id()));
        assert!(n.prefix_table().contains(far.id()));
        assert_eq!(n.descriptors_received(), 2);
    }

    #[test]
    fn create_message_counts_initiated_exchanges() {
        let mut n = node(1000);
        n.initialize([descriptor(1001, 1)]);
        let message = n.create_message(NodeId::new(2000), &[descriptor(3000, 2)], true);
        assert!(!message.is_empty());
        assert_eq!(n.exchanges_initiated(), 1);
        let _ = n.create_message(NodeId::new(2000), &[], false);
        assert_eq!(
            n.exchanges_initiated(),
            1,
            "passive replies are not counted"
        );
    }

    fn aged_node(id: u64, max_age: u64) -> BootstrapNode<u32> {
        let params = BootstrapParams {
            leaf_set_size: 4,
            random_samples: 4,
            descriptor_max_age: Some(max_age),
            ..BootstrapParams::paper_default()
        };
        BootstrapNode::new(descriptor(id, 0), &params).unwrap()
    }

    #[test]
    fn receive_at_without_aging_matches_receive() {
        let mut clocked = node(1000);
        let mut plain = node(1000);
        let incoming = [
            Descriptor::new(NodeId::new(1001), 1u32, 0),
            Descriptor::new(NodeId::new(0xF000_0000_0000_0000), 2u32, 0),
        ];
        let a = clocked.receive_at(&incoming, 99, &mut MergeScratch::default());
        let b = plain.receive(&incoming);
        assert_eq!(a, b);
        assert_eq!(clocked.leaf_set().to_vec(), plain.leaf_set().to_vec());
        assert_eq!(
            clocked.prefix_table().to_vec(),
            plain.prefix_table().to_vec()
        );
    }

    #[test]
    fn receive_at_rejects_and_evicts_expired_descriptors() {
        let mut n = aged_node(1000, 5);
        // Accepted at cycle 10: stamped 10.
        let near = Descriptor::new(NodeId::new(1001), 1u32, 10);
        let far = Descriptor::new(NodeId::new(0xF000_0000_0000_0000), 2u32, 10);
        assert!(n.receive_at(&[near, far], 10, &mut MergeScratch::default()));
        assert!(n.leaf_set().contains(near.id()));
        assert!(n.prefix_table().contains(far.id()));

        // An expired incoming descriptor is rejected outright.
        let stale = Descriptor::new(NodeId::new(999), 3u32, 2);
        assert!(!n.receive_at(&[stale], 10, &mut MergeScratch::default()));
        assert!(!n.leaf_set().contains(stale.id()));

        // Time passes without refreshes: the merge at cycle 16 evicts both
        // stored entries (age 6 > bound 5) even though the incoming batch is
        // empty of news.
        assert!(n.receive_at(&[], 16, &mut MergeScratch::default()));
        assert!(n.leaf_set().is_empty());
        assert!(n.prefix_table().is_empty());
    }

    #[test]
    fn receive_at_refreshes_prefix_timestamps_of_live_peers() {
        let mut n = aged_node(1000, 5);
        let peer = Descriptor::new(NodeId::new(0xF000_0000_0000_0000), 2u32, 10);
        n.receive_at(&[peer], 10, &mut MergeScratch::default());
        // A fresher sighting arrives at cycle 14; the stored entry refreshes,
        // so at cycle 17 it is still within the bound and survives.
        let fresher = peer.refreshed(14);
        n.receive_at(&[fresher], 14, &mut MergeScratch::default());
        assert!(!n.receive_at(&[], 17, &mut MergeScratch::default()));
        assert!(n.prefix_table().contains(peer.id()));
        // Without the refresh it would have been evicted at age 7.
        assert!(n.receive_at(&[], 20, &mut MergeScratch::default()));
        assert!(!n.prefix_table().contains(peer.id()));
    }

    #[test]
    fn create_message_at_restamps_own_descriptor_only_under_aging() {
        let mut aged = aged_node(1000, 5);
        aged.initialize([descriptor(1001, 1)]);
        let _ = aged.create_message_at(NodeId::new(2000), &[], true, 42, &mut Default::default());
        assert_eq!(aged.own_descriptor().timestamp(), 42);
        assert_eq!(aged.exchanges_initiated(), 1);

        let mut plain = node(1000);
        plain.initialize([descriptor(1001, 1)]);
        let _ = plain.create_message_at(NodeId::new(2000), &[], true, 42, &mut Default::default());
        assert_eq!(
            plain.own_descriptor().timestamp(),
            0,
            "aging off leaves the timestamp untouched"
        );
    }

    #[test]
    fn receive_verified_at_rejects_failing_descriptors_before_merge() {
        let mut n = node(1000);
        let honest = descriptor(1001, 1);
        let forged = descriptor(0xF000_0000_0000_0000, 2);
        let changed =
            n.receive_verified_at(&[honest, forged], 0, &mut MergeScratch::default(), |d| {
                d.id() != forged.id()
            });
        assert!(changed, "the honest descriptor still merges");
        assert!(n.leaf_set().contains(honest.id()));
        assert!(!n.leaf_set().contains(forged.id()));
        assert!(!n.prefix_table().contains(forged.id()));
        assert_eq!(
            n.descriptors_received(),
            2,
            "traffic accounting counts rejected descriptors too"
        );
        // An all-accepting verifier is exactly receive_at.
        let mut verified = node(1000);
        let mut plain = node(1000);
        verified.receive_verified_at(&[honest, forged], 0, &mut MergeScratch::default(), |_| true);
        plain.receive_at(&[honest, forged], 0, &mut MergeScratch::default());
        assert_eq!(verified.leaf_set().to_vec(), plain.leaf_set().to_vec());
        assert_eq!(
            verified.descriptors_received(),
            plain.descriptors_received()
        );
    }

    #[test]
    fn forget_removes_departed_peer_everywhere() {
        let mut n = node(1000);
        let peer = descriptor(1001, 1);
        n.receive(&[peer, descriptor(999, 2)]);
        assert!(n.leaf_set().contains(peer.id()));
        n.forget(peer.id());
        assert!(!n.leaf_set().contains(peer.id()));
        assert!(!n.prefix_table().contains(peer.id()));
        assert!(n.leaf_set().contains(NodeId::new(999)), "others survive");
    }

    #[test]
    fn geometry_matches_parameters() {
        let n = node(1);
        assert_eq!(n.geometry().bits_per_digit(), 4);
        assert_eq!(n.geometry().entries_per_slot(), 3);
    }
}
