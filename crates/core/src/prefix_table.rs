//! The prefix routing table: `UPDATEPREFIXTABLE` and the `(i, j, k)` slot layout.
//!
//! "The prefix table of a given node contains up to k IDs for all pairs (i, j),
//! where i is the length (in digits) of the longest common prefix of the ID and the
//! node's own ID, and j is the first differing digit" (§4). This is exactly the
//! routing table of Pastry, Kademlia (per-bucket view), Tapestry and Bamboo, which
//! is why bootstrapping it bootstraps all those substrates at once.
//!
//! Storage is a flat arena: all descriptors live in one contiguous vector
//! ordered by slot, with a per-slot offset index. Iterating the table — which
//! the message-composition hot path does twice per exchange — is a linear walk
//! over one allocation instead of a pointer chase through nested row/cell
//! vectors, and a table costs two allocations total regardless of how many
//! slots fill up.

use bss_util::descriptor::{Address, Descriptor};
use bss_util::geometry::TableGeometry;
use bss_util::id::NodeId;

/// A prefix routing table under construction.
///
/// `UPDATEPREFIXTABLE` "takes a set of node descriptors and fills in any missing
/// table entries from this set": entries are only ever *added* (up to `k` per
/// slot), never replaced, which makes the table monotonically improving during the
/// bootstrap.
///
/// # Example
///
/// ```rust
/// use bss_core::prefix_table::PrefixTable;
/// use bss_util::descriptor::Descriptor;
/// use bss_util::geometry::TableGeometry;
/// use bss_util::id::NodeId;
///
/// let geometry = TableGeometry::new(4, 3).unwrap();
/// let own = NodeId::new(0xAB00_0000_0000_0000);
/// let mut table: PrefixTable<u32> = PrefixTable::new(own, geometry);
///
/// // A node sharing one digit, differing with digit 0xC, lands in slot (1, 0xC).
/// let other = Descriptor::new(NodeId::new(0xAC00_0000_0000_0000), 7, 0);
/// table.update([other]);
/// assert_eq!(table.slot(1, 0xC).len(), 1);
/// assert_eq!(table.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTable<A> {
    own_id: NodeId,
    geometry: TableGeometry,
    /// All stored descriptors, ordered by slot `(row, column)` and, within a
    /// slot, by insertion order.
    store: Vec<Descriptor<A>>,
    /// Per-slot start offsets into `store`: slot `s` holds
    /// `store[offsets[s]..offsets[s + 1]]`. Length `rows * columns + 1`.
    offsets: Vec<u32>,
}

impl<A: Address> PrefixTable<A> {
    /// Creates an empty table for the node with identifier `own_id`.
    pub fn new(own_id: NodeId, geometry: TableGeometry) -> Self {
        PrefixTable {
            own_id,
            geometry,
            store: Vec::new(),
            offsets: vec![0; geometry.rows() * geometry.columns() + 1],
        }
    }

    /// The linear index of slot `(row, column)`.
    #[inline]
    fn slot_index(&self, row: usize, column: u8) -> usize {
        row * self.geometry.columns() + column as usize
    }

    /// The identifier of the owning node.
    pub fn own_id(&self) -> NodeId {
        self.own_id
    }

    /// The table geometry (`b`, `k`).
    pub fn geometry(&self) -> TableGeometry {
        self.geometry
    }

    /// Total number of descriptors stored.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the table holds no descriptors.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The descriptors stored in slot `(row, column)` (empty when none).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `column` is outside the geometry.
    pub fn slot(&self, row: usize, column: u8) -> &[Descriptor<A>] {
        assert!(row < self.geometry.rows(), "row {row} out of range");
        assert!(
            (column as usize) < self.geometry.columns(),
            "column {column} out of range"
        );
        let slot = self.slot_index(row, column);
        &self.store[self.offsets[slot] as usize..self.offsets[slot + 1] as usize]
    }

    /// Whether the slot that `id` would occupy already holds `k` descriptors (or
    /// `id` is the owner itself, which needs no slot).
    pub fn slot_is_full_for(&self, id: NodeId) -> bool {
        match self.geometry.slot_of(self.own_id, id) {
            None => true,
            Some((row, column)) => self.slot(row, column).len() >= self.geometry.entries_per_slot(),
        }
    }

    /// Whether a descriptor with this identifier is stored anywhere in the table.
    pub fn contains(&self, id: NodeId) -> bool {
        match self.geometry.slot_of(self.own_id, id) {
            None => false,
            Some((row, column)) => self.slot(row, column).iter().any(|d| d.id() == id),
        }
    }

    /// `UPDATEPREFIXTABLE`: for every incoming descriptor, if the slot it belongs
    /// to still has free capacity and does not already contain that identifier,
    /// store it. Returns the number of descriptors actually inserted.
    pub fn update(&mut self, incoming: impl IntoIterator<Item = Descriptor<A>>) -> usize {
        let mut inserted = 0;
        for descriptor in incoming {
            if self.insert(descriptor) {
                inserted += 1;
            }
        }
        inserted
    }

    /// Inserts a single descriptor if its slot has room; returns whether it was
    /// stored.
    pub fn insert(&mut self, descriptor: Descriptor<A>) -> bool {
        let Some((row, column)) = self.geometry.slot_of(self.own_id, descriptor.id()) else {
            return false; // own descriptor
        };
        let capacity = self.geometry.entries_per_slot();
        let slot = self.slot_index(row, column);
        let (start, end) = (self.offsets[slot] as usize, self.offsets[slot + 1] as usize);
        if end - start >= capacity
            || self.store[start..end]
                .iter()
                .any(|d| d.id() == descriptor.id())
        {
            return false;
        }
        // Append at the end of the slot's range (preserving insertion order)
        // and shift every later slot's offset.
        self.store.insert(end, descriptor);
        for offset in &mut self.offsets[slot + 1..] {
            *offset += 1;
        }
        true
    }

    /// `UPDATEPREFIXTABLE` under descriptor aging: like [`PrefixTable::update`],
    /// but an incoming descriptor whose identifier is already stored *refreshes*
    /// the stored copy to the fresher of the two. The plain update never touches
    /// existing entries (the table is add-only during a detector-free
    /// bootstrap); with a failure detector the stored timestamps are the
    /// detector's evidence, so they must track the freshest sighting or a live
    /// node's entry would expire at its insertion age. Returns the number of
    /// descriptors newly inserted (refreshes do not count).
    pub fn update_refreshing(
        &mut self,
        incoming: impl IntoIterator<Item = Descriptor<A>>,
    ) -> usize {
        let mut inserted = 0;
        for descriptor in incoming {
            let Some((row, column)) = self.geometry.slot_of(self.own_id, descriptor.id()) else {
                continue;
            };
            let slot = self.slot_index(row, column);
            let (start, end) = (self.offsets[slot] as usize, self.offsets[slot + 1] as usize);
            if let Some(existing) = self.store[start..end]
                .iter_mut()
                .find(|d| d.id() == descriptor.id())
            {
                *existing = existing.fresher_of(descriptor);
            } else if self.insert(descriptor) {
                inserted += 1;
            }
        }
        inserted
    }

    /// Evicts every descriptor whose timestamp lags `now` by more than
    /// `max_age` cycles (the failure-detecting half of descriptor aging).
    ///
    /// One in-place compaction pass over the flat store — no allocation — with
    /// the per-slot offsets rebuilt as it goes. Returns the number of
    /// descriptors removed.
    pub fn evict_expired(&mut self, now: u64, max_age: u64) -> usize {
        let mut write = 0usize;
        for slot in 0..self.offsets.len() - 1 {
            let (start, end) = (self.offsets[slot] as usize, self.offsets[slot + 1] as usize);
            self.offsets[slot] = write as u32;
            for read in start..end {
                let descriptor = self.store[read];
                if !descriptor.is_expired(now, max_age) {
                    self.store[write] = descriptor;
                    write += 1;
                }
            }
        }
        let removed = self.store.len() - write;
        *self.offsets.last_mut().expect("offsets never empty") = write as u32;
        self.store.truncate(write);
        removed
    }

    /// Raw view of the flat storage for the packed node store: the descriptor
    /// arena (slot order) and the per-slot offsets.
    pub(crate) fn raw_parts(&self) -> (&[Descriptor<A>], &[u32]) {
        (&self.store, &self.offsets)
    }

    /// Rebuilds the table in place from raw parts (the inverse of
    /// [`PrefixTable::raw_parts`]), reusing the existing allocations. The
    /// geometry is left untouched — the packed store only round-trips between
    /// nodes running identical parameters.
    pub(crate) fn restore_from(
        &mut self,
        own_id: NodeId,
        entries: impl IntoIterator<Item = Descriptor<A>>,
        offsets: impl IntoIterator<Item = u32>,
    ) {
        self.own_id = own_id;
        self.store.clear();
        self.store.extend(entries);
        self.offsets.clear();
        self.offsets.extend(offsets);
        debug_assert_eq!(
            self.offsets.len(),
            self.geometry.rows() * self.geometry.columns() + 1,
            "offset table shape must match the geometry"
        );
    }

    /// Removes every descriptor with the given identifier (used when a node learns
    /// that a peer has departed). Returns the number of descriptors removed.
    pub fn remove(&mut self, id: NodeId) -> usize {
        let Some((row, column)) = self.geometry.slot_of(self.own_id, id) else {
            return 0;
        };
        let slot = self.slot_index(row, column);
        let (start, end) = (self.offsets[slot] as usize, self.offsets[slot + 1] as usize);
        let mut removed = 0;
        let mut position = start;
        while position < end - removed {
            if self.store[position].id() == id {
                self.store.remove(position);
                removed += 1;
            } else {
                position += 1;
            }
        }
        for offset in &mut self.offsets[slot + 1..] {
            *offset -= removed as u32;
        }
        removed
    }

    /// Iterates over every stored descriptor, in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &Descriptor<A>> {
        self.store.iter()
    }

    /// Collects every stored descriptor into a vector.
    pub fn to_vec(&self) -> Vec<Descriptor<A>> {
        self.store.clone()
    }

    /// The descriptors "potentially useful for the peer for its prefix table", as
    /// `CREATEMESSAGE` puts it: every stored descriptor whose identifier shares at
    /// least one digit of prefix with `peer_id` (the peer itself is excluded — a
    /// node never needs its own descriptor).
    pub fn entries_useful_for(&self, peer_id: NodeId) -> Vec<Descriptor<A>> {
        let b = self.geometry.bits_per_digit();
        self.iter()
            .filter(|d| d.id() != peer_id && peer_id.common_prefix_len(d.id(), b) >= 1)
            .copied()
            .collect()
    }

    /// Number of non-empty slots.
    pub fn occupied_slots(&self) -> usize {
        self.offsets
            .windows(2)
            .filter(|pair| pair[1] > pair[0])
            .count()
    }

    /// The deepest row (longest common prefix) that currently holds an entry, if
    /// any. In a uniformly random network this hovers around `log_{2^b}(n)`.
    pub fn deepest_occupied_row(&self) -> Option<usize> {
        let columns = self.geometry.columns();
        (0..self.geometry.rows()).rev().find(|&row| {
            let start = self.offsets[row * columns] as usize;
            let end = self.offsets[(row + 1) * columns] as usize;
            end > start
        })
    }

    /// The best stored candidate for routing a message towards `target`: the
    /// descriptor with the longest common prefix with `target`, ties broken by ring
    /// distance. Returns `None` when the table is empty. (This is the core of the
    /// prefix-routing consumers in `bss-overlay`; it is exposed here so the routing
    /// feedback loop described in §4 — "the prefix tables, even before completed,
    /// can already fulfill a kind of routing function" — can also be exercised
    /// directly on the table.)
    pub fn best_route_towards(&self, target: NodeId) -> Option<&Descriptor<A>> {
        let b = self.geometry.bits_per_digit();
        self.iter().max_by(|x, y| {
            let px = target.common_prefix_len(x.id(), b);
            let py = target.common_prefix_len(y.id(), b);
            px.cmp(&py)
                .then_with(|| {
                    target
                        .ring_distance(y.id())
                        .cmp(&target.ring_distance(x.id()))
                })
                .then_with(|| y.id().cmp(&x.id()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> TableGeometry {
        TableGeometry::new(4, 3).unwrap()
    }

    fn own() -> NodeId {
        NodeId::new(0x1234_5678_0000_0000)
    }

    fn d(id: u64, addr: u32) -> Descriptor<u32> {
        Descriptor::new(NodeId::new(id), addr, 0)
    }

    #[test]
    fn entries_land_in_the_defined_slot() {
        let mut table = PrefixTable::new(own(), geometry());
        // Shares "123" then differs with digit 0x9.
        let descriptor = d(0x1239_0000_0000_0000, 1);
        assert_eq!(table.update([descriptor]), 1);
        assert_eq!(table.slot(3, 0x9), &[descriptor]);
        assert!(table.contains(descriptor.id()));
        assert_eq!(table.len(), 1);
        assert_eq!(table.occupied_slots(), 1);
        assert_eq!(table.deepest_occupied_row(), Some(3));
        assert_eq!(table.geometry().bits_per_digit(), 4);
        assert_eq!(table.own_id(), own());
    }

    #[test]
    fn slot_capacity_is_respected() {
        let mut table = PrefixTable::new(own(), geometry());
        // Four different nodes all belonging to slot (0, 0xF).
        let candidates = [
            d(0xF000_0000_0000_0001, 1),
            d(0xF000_0000_0000_0002, 2),
            d(0xF000_0000_0000_0003, 3),
            d(0xF000_0000_0000_0004, 4),
        ];
        let inserted = table.update(candidates);
        assert_eq!(inserted, 3, "only k = 3 descriptors fit in one slot");
        assert_eq!(table.slot(0, 0xF).len(), 3);
        assert!(table.slot_is_full_for(NodeId::new(0xF000_0000_0000_0009)));
        assert!(!table.slot_is_full_for(NodeId::new(0x2000_0000_0000_0000)));
    }

    #[test]
    fn duplicates_and_own_id_are_ignored() {
        let mut table = PrefixTable::new(own(), geometry());
        let descriptor = d(0xAAAA_0000_0000_0000, 1);
        assert_eq!(table.update([descriptor, descriptor]), 1);
        assert_eq!(table.len(), 1);
        // Same identifier, different address: still a duplicate.
        assert!(!table.insert(Descriptor::new(descriptor.id(), 99u32, 5)));
        // The node's own identifier is never stored.
        assert!(!table.insert(Descriptor::new(own(), 1u32, 0)));
        assert!(table.slot_is_full_for(own()));
        assert!(!table.contains(own()));
    }

    #[test]
    fn update_refreshing_keeps_freshest_and_counts_only_insertions() {
        let mut table = PrefixTable::new(own(), geometry());
        let old = Descriptor::new(NodeId::new(0xAAAA_0000_0000_0000), 1u32, 3);
        assert_eq!(table.update_refreshing([old]), 1);
        // A fresher sighting of the same node refreshes in place.
        let fresh = Descriptor::new(old.id(), 2u32, 9);
        assert_eq!(table.update_refreshing([fresh]), 0);
        let stored = table.slot(0, 0xA)[0];
        assert_eq!(stored.timestamp(), 9);
        assert_eq!(stored.address(), 2);
        // A staler sighting does not regress the stored copy.
        let stale = Descriptor::new(old.id(), 7u32, 1);
        assert_eq!(table.update_refreshing([stale]), 0);
        assert_eq!(table.slot(0, 0xA)[0].timestamp(), 9);
        assert_eq!(table.len(), 1);
        // Capacity discipline is unchanged for genuinely new identifiers.
        let more = [
            Descriptor::new(NodeId::new(0xAAAA_0000_0000_0001), 3u32, 5),
            Descriptor::new(NodeId::new(0xAAAA_0000_0000_0002), 4u32, 5),
            Descriptor::new(NodeId::new(0xAAAA_0000_0000_0003), 5u32, 5),
        ];
        assert_eq!(table.update_refreshing(more), 2, "slot capacity is k = 3");
    }

    #[test]
    fn evict_expired_compacts_the_store_and_offsets() {
        let mut table = PrefixTable::new(own(), geometry());
        let entries = [
            Descriptor::new(NodeId::new(0xF000_0000_0000_0001), 1u32, 2), // stale
            Descriptor::new(NodeId::new(0xF000_0000_0000_0002), 2u32, 19), // fresh
            Descriptor::new(NodeId::new(0x1239_0000_0000_0000), 3u32, 1), // stale, row 3
            Descriptor::new(NodeId::new(0xAAAA_0000_0000_0000), 4u32, 20), // fresh
        ];
        assert_eq!(table.update(entries), 4);
        // now = 20, max_age = 10: timestamps 1 and 2 expire.
        assert_eq!(table.evict_expired(20, 10), 2);
        assert_eq!(table.len(), 2);
        assert!(!table.contains(NodeId::new(0xF000_0000_0000_0001)));
        assert!(table.contains(NodeId::new(0xF000_0000_0000_0002)));
        assert!(!table.contains(NodeId::new(0x1239_0000_0000_0000)));
        assert!(table.contains(NodeId::new(0xAAAA_0000_0000_0000)));
        // Slot lookups still work against the rebuilt offsets.
        assert_eq!(table.slot(0, 0xF).len(), 1);
        assert_eq!(table.slot(3, 0x9).len(), 0);
        assert_eq!(table.slot(0, 0xA).len(), 1);
        // The vacated slot accepts new entries again.
        assert!(table.insert(Descriptor::new(
            NodeId::new(0x1239_0000_0000_0001),
            9u32,
            20
        )));
        assert_eq!(table.evict_expired(20, 10), 0, "nothing stale remains");
    }

    #[test]
    fn remove_deletes_all_copies_of_an_identifier() {
        let mut table = PrefixTable::new(own(), geometry());
        let descriptor = d(0xBBBB_0000_0000_0000, 1);
        table.insert(descriptor);
        assert_eq!(table.remove(descriptor.id()), 1);
        assert_eq!(table.len(), 0);
        assert!(!table.contains(descriptor.id()));
        // Removing something absent (or the own identifier) is a no-op.
        assert_eq!(table.remove(descriptor.id()), 0);
        assert_eq!(table.remove(own()), 0);
    }

    #[test]
    fn iteration_covers_every_entry() {
        let mut table = PrefixTable::new(own(), geometry());
        let descriptors = [
            d(0xF000_0000_0000_0000, 1),
            d(0x1300_0000_0000_0000, 2),
            d(0x1235_0000_0000_0000, 3),
        ];
        table.update(descriptors);
        assert_eq!(table.len(), 3);
        let collected = table.to_vec();
        assert_eq!(collected.len(), 3);
        for descriptor in descriptors {
            assert!(collected.contains(&descriptor));
        }
        assert!(!table.is_empty());
    }

    #[test]
    fn entries_useful_for_requires_shared_prefix() {
        let mut table = PrefixTable::new(own(), geometry());
        let sharing = d(0x1239_0000_0000_0000, 1); // shares "123" with own and peer below
        let not_sharing = d(0xF000_0000_0000_0000, 2); // shares nothing with the peer
        table.update([sharing, not_sharing]);

        let peer = NodeId::new(0x1230_0000_0000_0000);
        let useful = table.entries_useful_for(peer);
        assert_eq!(useful, vec![sharing]);

        // The peer's own descriptor is never "useful for the peer".
        let mut table = PrefixTable::new(own(), geometry());
        let peer_descriptor = Descriptor::new(peer, 9u32, 0);
        table.insert(peer_descriptor);
        assert!(table.entries_useful_for(peer).is_empty());
    }

    #[test]
    fn best_route_prefers_longer_prefix_then_ring_distance() {
        let mut table = PrefixTable::new(own(), geometry());
        let coarse = d(0x1200_0000_0000_0000, 1);
        let fine = d(0x1234_5000_0000_0000, 2);
        table.update([coarse, fine]);
        let target = NodeId::new(0x1234_5679_0000_0000);
        assert_eq!(table.best_route_towards(target).unwrap().id(), fine.id());

        let empty: PrefixTable<u32> = PrefixTable::new(own(), geometry());
        assert!(empty.best_route_towards(target).is_none());
    }

    #[test]
    fn empty_table_accessors() {
        let table: PrefixTable<u32> = PrefixTable::new(own(), geometry());
        assert!(table.is_empty());
        assert_eq!(table.len(), 0);
        assert_eq!(table.occupied_slots(), 0);
        assert!(table.deepest_occupied_row().is_none());
        assert!(table.slot(0, 0).is_empty());
        assert!(table.to_vec().is_empty());
        assert!(table.entries_useful_for(NodeId::new(1)).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_row_bounds_are_checked() {
        let table: PrefixTable<u32> = PrefixTable::new(own(), geometry());
        let _ = table.slot(16, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slot_column_bounds_are_checked() {
        let table: PrefixTable<u32> = PrefixTable::new(own(), geometry());
        let _ = table.slot(0, 16);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn descriptor() -> impl Strategy<Value = Descriptor<u32>> {
            (any::<u64>(), any::<u32>(), any::<u64>())
                .prop_map(|(id, addr, ts)| Descriptor::new(NodeId::new(id), addr, ts))
        }

        proptest! {
            #[test]
            fn every_entry_sits_in_its_defined_slot_and_k_is_never_exceeded(
                own in any::<u64>(),
                bits in prop::sample::select(vec![1u8, 2, 4]),
                entries_per_slot in 1usize..4,
                incoming in prop::collection::vec(descriptor(), 0..160),
            ) {
                let own = NodeId::new(own);
                let geometry = TableGeometry::new(bits, entries_per_slot).unwrap();
                let mut table = PrefixTable::new(own, geometry);
                let inserted = table.update(incoming.iter().copied());

                prop_assert!(inserted <= incoming.len());
                prop_assert_eq!(table.len(), table.iter().count());
                prop_assert!(!table.contains(own));

                for row in 0..geometry.rows() {
                    for column in 0..geometry.columns() as u8 {
                        let slot = table.slot(row, column);
                        prop_assert!(
                            slot.len() <= entries_per_slot,
                            "slot ({row}, {column}) holds {} > k = {entries_per_slot}",
                            slot.len(),
                        );
                        for stored in slot {
                            // The slot that stores a descriptor is exactly the
                            // (prefix-length, digit) pair its identifier defines.
                            prop_assert_eq!(
                                geometry.slot_of(own, stored.id()),
                                Some((row, column)),
                                "descriptor {:?} misfiled in slot ({row}, {column})",
                                stored.id(),
                            );
                        }
                        // No identifier is stored twice within a slot.
                        let unique: std::collections::HashSet<NodeId> =
                            slot.iter().map(|d| d.id()).collect();
                        prop_assert_eq!(unique.len(), slot.len());
                    }
                }
            }

            #[test]
            fn update_only_adds_and_replay_is_a_no_op(
                own in any::<u64>(),
                first_wave in prop::collection::vec(descriptor(), 0..80),
                second_wave in prop::collection::vec(descriptor(), 0..80),
            ) {
                let own = NodeId::new(own);
                let geometry = TableGeometry::paper_default();
                let mut table = PrefixTable::new(own, geometry);
                table.update(first_wave.iter().copied());
                let before = table.to_vec();

                // Monotone: a later update never evicts an earlier entry.
                table.update(second_wave.iter().copied());
                for earlier in &before {
                    prop_assert!(table.contains(earlier.id()));
                }

                // Replaying everything already stored inserts nothing.
                let replayed = table.update(table.to_vec());
                prop_assert_eq!(replayed, 0);
            }
        }
    }

    #[test]
    fn works_with_binary_digits() {
        let geometry = TableGeometry::new(1, 1).unwrap();
        let own = NodeId::new(0);
        let mut table: PrefixTable<u32> = PrefixTable::new(own, geometry);
        // With b = 1 every other node's slot column is always 1.
        let descriptor = Descriptor::new(NodeId::new(u64::MAX), 1u32, 0);
        assert!(table.insert(descriptor));
        assert_eq!(table.slot(0, 1).len(), 1);
        let deep = Descriptor::new(NodeId::new(1), 2u32, 0);
        assert!(table.insert(deep));
        assert_eq!(table.slot(63, 1).len(), 1);
        assert_eq!(table.deepest_occupied_row(), Some(63));
    }
}
