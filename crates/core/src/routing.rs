//! The one routing-step implementation shared by every lookup consumer.
//!
//! Three routing substrates read the bootstrapped tables: Pastry-style greedy
//! prefix descent, Kademlia-style XOR descent, and Chord-style clockwise
//! finger chasing. Historically each lived in `bss-overlay` and only ran over
//! a frozen post-run [`PopulationSnapshot`]; the live traffic subsystem
//! ([`crate::traffic`]) routes the same way against nodes' *current* tables
//! mid-run. To keep the two byte-identical this module holds the per-hop
//! decision functions once — `bss_overlay`'s `next_hop` / `xor_next_hop` are
//! thin wrappers over [`next_hop`] here — plus the [`TableSource`] abstraction
//! and the shared iterative [`route`] loop that walks either a snapshot or the
//! live packed population.

use crate::experiment::PopulationSnapshot;
use crate::node::BootstrapNode;
use bss_sim::network::NodeIndex;
use bss_util::id::NodeId;
use std::fmt;

/// Which routing substrate interprets the bootstrapped tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Greedy prefix routing in the style of Pastry/Bamboo.
    Pastry,
    /// Greedy XOR-metric descent in the style of Kademlia.
    Kademlia,
    /// Clockwise greedy routing in the style of Chord's finger chasing.
    Chord,
}

impl RouterKind {
    /// All router kinds, in evaluation order.
    pub const ALL: [RouterKind; 3] = [RouterKind::Pastry, RouterKind::Kademlia, RouterKind::Chord];

    /// A short machine-readable name (used in report JSON and TSV columns).
    pub fn label(&self) -> &'static str {
        match self {
            RouterKind::Pastry => "pastry",
            RouterKind::Kademlia => "kademlia",
            RouterKind::Chord => "chord",
        }
    }
}

impl fmt::Display for RouterKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A routable reference to a node: the identifier the tables advertise plus
/// the registry address the descriptor carried. Live routing resolves by
/// address and checks the answering node really holds `id` — a forged
/// descriptor (the id-spray attack) advertises an identifier its address does
/// not answer to, and the lookup fails at that hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Contact {
    /// The advertised identifier.
    pub id: NodeId,
    /// The registry address the descriptor pointed at.
    pub address: NodeIndex,
}

/// Chooses the next hop from `node` towards `target` under `kind`'s rules.
/// Returns `None` when no known contact improves on the node itself. This is
/// THE routing step: `bss_overlay`'s snapshot routers and the live traffic
/// driver both call it, so their per-hop decisions cannot drift apart.
pub fn next_hop(
    kind: RouterKind,
    node: &BootstrapNode<NodeIndex>,
    target: NodeId,
) -> Option<Contact> {
    match kind {
        RouterKind::Pastry => pastry_next_hop(node, target),
        RouterKind::Kademlia => kademlia_next_hop(node, target),
        RouterKind::Chord => chord_next_hop(node, target),
    }
}

/// Pastry's three rules: deliver to an exactly-known contact, else descend the
/// prefix table, else (the "rare case") hop to any strictly closer contact.
fn pastry_next_hop(node: &BootstrapNode<NodeIndex>, target: NodeId) -> Option<Contact> {
    let own = node.id();
    if own == target {
        return None;
    }
    let bits = node.geometry().bits_per_digit();

    // Rule 1: the exact target is already a known contact.
    if let Some(d) = node
        .leaf_set()
        .iter()
        .chain(node.prefix_table().iter())
        .find(|d| d.id() == target)
    {
        return Some(Contact {
            id: target,
            address: d.address(),
        });
    }

    // Rule 2: the slot the target belongs to holds an entry sharing a strictly
    // longer prefix with the target than we do.
    let own_prefix = own.common_prefix_len(target, bits);
    let row = own_prefix;
    let column = target.digit(row, bits);
    if let Some(entry) = node.prefix_table().slot(row, column).first() {
        return Some(Contact {
            id: entry.id(),
            address: entry.address(),
        });
    }

    // Rule 3 (the "rare case" in Pastry): any known contact that is strictly
    // closer to the target than the current node — longer shared prefix, or equal
    // prefix but numerically closer on the ring.
    let own_distance = own.ring_distance(target);
    node.leaf_set()
        .iter()
        .chain(node.prefix_table().iter())
        .filter(|d| {
            let prefix = d.id().common_prefix_len(target, bits);
            prefix > own_prefix
                || (prefix == own_prefix && d.id().ring_distance(target) < own_distance)
        })
        .min_by_key(|d| {
            (
                usize::MAX - d.id().common_prefix_len(target, bits),
                d.id().ring_distance(target),
            )
        })
        .map(|d| Contact {
            id: d.id(),
            address: d.address(),
        })
}

/// Kademlia's rule: the known contact XOR-closest to the target, provided it
/// is strictly closer than the node itself.
fn kademlia_next_hop(node: &BootstrapNode<NodeIndex>, target: NodeId) -> Option<Contact> {
    let own_distance = node.id().xor_distance(target);
    node.leaf_set()
        .iter()
        .chain(node.prefix_table().iter())
        .filter(|d| d.id().xor_distance(target) < own_distance)
        .min_by_key(|d| d.id().xor_distance(target))
        .map(|d| Contact {
            id: d.id(),
            address: d.address(),
        })
}

/// Chord's rule over live tables: the known contact that advances furthest
/// clockwise without overshooting the target. Every hop strictly shrinks the
/// remaining clockwise distance, so the descent terminates. (The ideal-ring
/// baseline with global fingers lives in `bss_overlay::ChordRing`; this is
/// what a Chord node can do with only its own bootstrapped tables.)
fn chord_next_hop(node: &BootstrapNode<NodeIndex>, target: NodeId) -> Option<Contact> {
    let own = node.id();
    if own == target {
        return None;
    }
    let to_target = own.clockwise_distance(target);
    node.leaf_set()
        .iter()
        .chain(node.prefix_table().iter())
        .filter(|d| {
            let advance = own.clockwise_distance(d.id());
            advance > 0 && advance <= to_target
        })
        .max_by_key(|d| own.clockwise_distance(d.id()))
        .map(|d| Contact {
            id: d.id(),
            address: d.address(),
        })
}

/// Where the iterative [`route`] loop reads node tables from: the live packed
/// population mid-run, or a frozen [`PopulationSnapshot`] after it. The
/// closure shape (instead of returning a reference) lets the live source
/// rehydrate packed state into one reusable scratch node per call.
pub trait TableSource {
    /// Runs `f` over the current table state of the node `contact` points at,
    /// or returns `None` when the contact resolves to nothing that answers to
    /// `contact.id` (a dead node, an uninitialised slot, or a forged
    /// identifier) — the hop fails and the lookup with it.
    fn with_node<R>(
        &mut self,
        contact: Contact,
        f: impl FnOnce(&BootstrapNode<NodeIndex>) -> R,
    ) -> Option<R>;
}

/// A [`TableSource`] over a frozen post-run snapshot: contacts resolve by
/// identifier, exactly like `bss_overlay`'s snapshot routers.
#[derive(Debug)]
pub struct SnapshotTables<'a>(pub &'a PopulationSnapshot);

impl TableSource for SnapshotTables<'_> {
    fn with_node<R>(
        &mut self,
        contact: Contact,
        f: impl FnOnce(&BootstrapNode<NodeIndex>) -> R,
    ) -> Option<R> {
        self.0.node_by_id(contact.id).map(f)
    }
}

/// The terminal state of one routed lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteEnd {
    /// The lookup reached the node owning the target identifier.
    Delivered,
    /// A hop resolved to nothing answering to the advertised identifier — a
    /// dead node, an uninitialised slot or a forged descriptor.
    DeadContact,
    /// Routing stopped at a node with no better next hop.
    Stuck,
    /// The next hop was already on the path; honest greedy descent never
    /// revisits a node (every step strictly improves the metric), so a cycle
    /// means poisoned tables — the lookup is dropped instead of orbiting.
    Cycle,
    /// The hop budget was exhausted.
    HopLimit,
}

/// One routed lookup: how it ended and how far it travelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Routed {
    /// The terminal state.
    pub end: RouteEnd,
    /// Hops taken before terminating (path length minus one).
    pub hops: u64,
}

impl Routed {
    /// Whether the lookup reached its destination.
    pub fn delivered(&self) -> bool {
        self.end == RouteEnd::Delivered
    }
}

/// The default hop budget (matches `bss_overlay`'s snapshot routers).
pub const DEFAULT_MAX_HOPS: usize = 64;

/// Routes one lookup for `target` starting at `source` over whatever
/// `tables` resolves, taking per-hop decisions from [`next_hop`]. The
/// traversed path (source first) is built in the caller-owned `path` buffer,
/// so sustained traffic routes without allocating.
pub fn route<T: TableSource>(
    tables: &mut T,
    kind: RouterKind,
    source: Contact,
    target: NodeId,
    max_hops: usize,
    path: &mut Vec<Contact>,
) -> Routed {
    path.clear();
    path.push(source);
    let end = loop {
        let hops = (path.len() - 1) as u64;
        let current = *path.last().expect("path holds at least the source");
        let step = tables.with_node(current, |node| {
            if node.id() == target {
                None
            } else {
                Some(next_hop(kind, node, target))
            }
        });
        break match step {
            None => RouteEnd::DeadContact,
            Some(None) => RouteEnd::Delivered,
            Some(Some(None)) => RouteEnd::Stuck,
            Some(Some(Some(next))) => {
                if hops as usize >= max_hops {
                    RouteEnd::HopLimit
                } else if path.iter().any(|c| c.id == next.id) {
                    RouteEnd::Cycle
                } else {
                    path.push(next);
                    continue;
                }
            }
        };
    };
    Routed {
        end,
        hops: (path.len() - 1) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{Experiment, ExperimentConfig};

    fn snapshot(size: usize, seed: u64) -> PopulationSnapshot {
        let config = ExperimentConfig::builder()
            .network_size(size)
            .seed(seed)
            .max_cycles(80)
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(
            outcome.converged(),
            "routing tests need a converged overlay"
        );
        snapshot
    }

    fn contact_at(population: &PopulationSnapshot, position: usize) -> Contact {
        let node = population.node_at(position).unwrap();
        Contact {
            id: node.id(),
            address: node.own_descriptor().address(),
        }
    }

    #[test]
    fn every_router_delivers_everything_on_a_converged_snapshot() {
        let population = snapshot(96, 17);
        let mut tables = SnapshotTables(&population);
        let mut path = Vec::new();
        for kind in RouterKind::ALL {
            for source in 0..population.len() {
                for target in [0, population.len() / 2, population.len() - 1] {
                    let routed = route(
                        &mut tables,
                        kind,
                        contact_at(&population, source),
                        population.node_at(target).unwrap().id(),
                        DEFAULT_MAX_HOPS,
                        &mut path,
                    );
                    assert!(
                        routed.delivered(),
                        "{kind}: {source} -> {target} ended {:?}",
                        routed.end
                    );
                }
            }
        }
    }

    #[test]
    fn self_lookup_takes_zero_hops() {
        let population = snapshot(32, 18);
        let mut tables = SnapshotTables(&population);
        let mut path = Vec::new();
        let source = contact_at(&population, 0);
        for kind in RouterKind::ALL {
            let routed = route(&mut tables, kind, source, source.id, 8, &mut path);
            assert!(routed.delivered(), "{kind}");
            assert_eq!(routed.hops, 0, "{kind}");
        }
    }

    #[test]
    fn chord_descent_strictly_shrinks_the_clockwise_distance() {
        let population = snapshot(64, 19);
        for source in 0..population.len() {
            let node = population.node_at(source).unwrap();
            for target_pos in (0..population.len()).step_by(7) {
                let target = population.node_at(target_pos).unwrap().id();
                if node.id() == target {
                    continue;
                }
                let next = next_hop(RouterKind::Chord, node, target)
                    .expect("a converged node always advances");
                assert!(
                    next.id.clockwise_distance(target) < node.id().clockwise_distance(target),
                    "{} -> {} via {} does not advance",
                    node.id(),
                    target,
                    next.id
                );
            }
        }
    }

    #[test]
    fn hop_budget_and_dead_contacts_terminate_the_loop() {
        let population = snapshot(64, 20);
        let mut tables = SnapshotTables(&population);
        let mut path = Vec::new();
        // A zero-hop budget can only deliver self-lookups.
        let source = contact_at(&population, 0);
        let far = population.node_at(32).unwrap().id();
        let routed = route(&mut tables, RouterKind::Pastry, source, far, 0, &mut path);
        assert_eq!(routed.end, RouteEnd::HopLimit);
        assert_eq!(routed.hops, 0);
        // A source not present in the snapshot fails on its first resolve.
        let ghost = Contact {
            id: NodeId::new(0xdead_beef),
            address: NodeIndex::new(0),
        };
        let routed = route(&mut tables, RouterKind::Pastry, ghost, far, 8, &mut path);
        assert_eq!(routed.end, RouteEnd::DeadContact);
    }
}
