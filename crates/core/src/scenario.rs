//! Engine-agnostic scenario descriptions.
//!
//! The paper evaluates the bootstrapping service under a fixed menu of adverse
//! conditions — uniform message loss (Figure 4), continuous churn, catastrophic
//! failure of up to 70 % of the nodes, massive joins and network partitions
//! that later merge (§1–2, §5). Historically each condition was a flat scalar
//! knob on `ExperimentConfig` and only the synchronous cycle engine could run
//! it. This module replaces the knobs with a *composable timeline*:
//!
//! * a [`Scenario`] is an ordered list of [`ScenarioEvent`]s, each either a
//!   one-shot (catastrophic failure, massive join) or a [`Phase`]-windowed
//!   condition (loss window, churn burst, partition);
//! * an [`Engine`] selects the execution model — the sequential cycle engine,
//!   the deterministic parallel cycle engine, or the discrete-event engine
//!   with a per-link [`LatencyModel`];
//! * an [`Observer`] receives per-cycle convergence measurements and scenario
//!   transitions, replacing the ad-hoc closures and `MetricRecorder` plumbing
//!   that each driver used to reinvent.
//!
//! The legacy scalar knobs survive as builder sugar on
//! [`ExperimentConfig`](crate::experiment::ExperimentConfig): setting a drop
//! probability desugars into a single whole-run loss window, which compiles to
//! a transport that consumes the exact RNG stream of the old `DropTransport`
//! path — cycle-engine outputs through the compatibility path are
//! byte-identical to the pre-scenario code.

use crate::convergence::NetworkConvergence;
use bss_sim::churn::{
    ByzantineConversion, CatastrophicFailure, ChurnModel, CompositeChurn, MassiveJoin, ReBootstrap,
    UniformChurn, WindowedChurn,
};
use bss_sim::link::{ConstantLink, LinkModel, LinkTransport, UniformLink, WanLink};
use bss_sim::observer::MetricRecorder;
use bss_sim::transport::TimelineTransport;
use bss_util::config::InvalidParams;
use bss_util::coords::Placement;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

pub use bss_sim::adversary::{AdversaryBehavior, AdversaryModel};
pub use bss_sim::link::WanParams;
pub use bss_util::coords::PlacementSpec;

/// A `[start, end)` window of cycles during which a scenario condition holds.
///
/// `end = u64::MAX` means "until the run ends" ([`Phase::whole_run`] and
/// [`Phase::from`] produce such open windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// First cycle of the window (inclusive).
    pub start: u64,
    /// End of the window (exclusive).
    pub end: u64,
}

impl Phase {
    /// A window covering `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        Phase { start, end }
    }

    /// A window covering the entire run.
    pub fn whole_run() -> Self {
        Phase {
            start: 0,
            end: u64::MAX,
        }
    }

    /// An open window starting at `start` and lasting until the run ends.
    pub fn from(start: u64) -> Self {
        Phase {
            start,
            end: u64::MAX,
        }
    }

    /// Whether `cycle` lies inside the window.
    pub fn contains(&self, cycle: u64) -> bool {
        cycle >= self.start && cycle < self.end
    }

    /// Whether this window shares at least one cycle with `other`.
    pub fn overlaps(&self, other: &Phase) -> bool {
        self.start < other.end && other.start < self.end
    }

    fn validate(&self, field: &'static str) -> Result<(), InvalidParams> {
        if self.start >= self.end {
            return Err(InvalidParams::EmptyWindow {
                field,
                start: self.start,
                end: self.end,
            });
        }
        Ok(())
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.end == u64::MAX {
            write!(f, "[{}, ∞)", self.start)
        } else {
            write!(f, "[{}, {})", self.start, self.end)
        }
    }
}

/// How a partition event splits the network into groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionSpec {
    /// Even node indices form one group, odd indices the other. Both halves
    /// span the whole identifier space, which is the interesting case for
    /// merging prefix tables (the `merge_split` experiment).
    IndexParity,
    /// An explicit map from node index to group; indices beyond the vector
    /// (later joiners) belong to group 0.
    Explicit(Vec<u32>),
}

impl PartitionSpec {
    /// Materialises the group map for a network of `network_size` initial nodes.
    pub fn group_map(&self, network_size: usize) -> Vec<u32> {
        match self {
            PartitionSpec::IndexParity => (0..network_size as u32).map(|i| i % 2).collect(),
            PartitionSpec::Explicit(groups) => groups.clone(),
        }
    }
}

/// How a traffic phase picks the keys it looks up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every alive node's identifier is equally likely.
    Uniform,
    /// Zipf-distributed popularity over the alive population: the node at
    /// alive-list position `r` is looked up with probability proportional to
    /// `1 / (r + 1)^exponent`. Position 0 is the hottest key — deliberately
    /// the same node the id-spray adversary targets by default, so skewed
    /// traffic and the eclipse attack compose into one experiment.
    Zipf {
        /// The skew exponent (must be positive and finite; ~1.0 is web-like).
        exponent: f64,
    },
}

impl KeyDist {
    fn validate(&self) -> Result<(), InvalidParams> {
        if let KeyDist::Zipf { exponent } = *self {
            if !exponent.is_finite() || exponent <= 0.0 {
                return Err(InvalidParams::from_message(format!(
                    "zipf exponent must be positive and finite, got {exponent}"
                )));
            }
        }
        Ok(())
    }

    /// A short machine-readable name (used in report JSON and TSV columns).
    pub fn label(&self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipf { .. } => "zipf",
        }
    }
}

impl fmt::Display for KeyDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyDist::Uniform => write!(f, "uniform"),
            KeyDist::Zipf { exponent } => write!(f, "zipf({exponent})"),
        }
    }
}

/// One entry of a scenario timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioEvent {
    /// Uniform message loss during a window: every message offered to the
    /// transport while the window is active is dropped independently with
    /// `probability` (the paper's Figure 4 uses 0.2 for the whole run).
    LossWindow {
        /// When the loss applies.
        phase: Phase,
        /// Per-message drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Continuous replacement churn during a window: each cycle inside the
    /// window, `rate` of the alive nodes departs and the same number of fresh
    /// nodes joins (§5's churn claim).
    ChurnBurst {
        /// When the churn applies.
        phase: Phase,
        /// Per-cycle replacement fraction in `[0, 1]`.
        rate: f64,
    },
    /// A one-shot simultaneous failure of a fraction of the alive nodes (the
    /// paper's sampling layer is designed to survive up to 70 %).
    CatastrophicFailure {
        /// The cycle at which the failure strikes.
        at_cycle: u64,
        /// Fraction of the alive nodes that dies, in `[0, 1]`.
        fraction: f64,
    },
    /// A one-shot batch join of fresh nodes (the "flash crowd" scenario of §1).
    MassiveJoin {
        /// The cycle at which the batch joins.
        at_cycle: u64,
        /// Number of joining nodes (must be positive).
        count: usize,
    },
    /// A one-shot recovery order: a fraction of the alive nodes re-initialises
    /// its bootstrap state from the peer sampling service, exactly as at
    /// start-up (§4's start condition re-applied to survivors). Schedule this
    /// a few cycles after a [`ScenarioEvent::CatastrophicFailure`] — combined
    /// with descriptor aging
    /// ([`BootstrapParams::descriptor_max_age`](bss_util::config::BootstrapParams))
    /// it is what makes a post-catastrophe overlay actually re-converge
    /// instead of gossiping the dead forever. Membership is untouched.
    ReBootstrap {
        /// The cycle at which the survivors re-initialise.
        at_cycle: u64,
        /// Fraction of the alive nodes that re-bootstraps, in `[0, 1]`
        /// (1.0 = every survivor).
        fraction: f64,
    },
    /// A network partition during a window: messages crossing group boundaries
    /// are dropped while the window is active, and the partitions merge when
    /// it ends (§1–2's split/merge scenario).
    Partition {
        /// When the partition is in force; its end is the merge.
        phase: Phase,
        /// How nodes are assigned to partition groups.
        groups: PartitionSpec,
    },
    /// A Byzantine conversion: at the window's start, `fraction` of the alive
    /// nodes turns adversarial and plays `behavior` for every cycle inside the
    /// window. Membership is untouched — converted nodes keep gossiping, they
    /// just lie. Conversion is sticky (the set is drawn once, at the window
    /// start) but the behaviour deactivates when the window closes, so a run
    /// that outlives the attack shows whether the overlay heals.
    ByzantineConvert {
        /// When the adversarial behaviour is active; conversion happens at
        /// `phase.start`.
        phase: Phase,
        /// Fraction of the alive nodes converted, in `[0, 1]`.
        fraction: f64,
        /// What the converted nodes do while the window is active.
        behavior: AdversaryBehavior,
    },
    /// Sustained lookup traffic during a window: every cycle inside the
    /// window, `lookups_per_cycle` key lookups are routed iteratively against
    /// the nodes' *current* tables (open-loop arrival; the router is selected
    /// by [`ExperimentConfig::traffic_router`](crate::experiment::ExperimentConfig)).
    /// The phase is condition-neutral — it kills nobody and corrupts nothing —
    /// but it composes with every other event on the timeline: lookups routed
    /// through a churn burst or an id-spray window measure what users
    /// experience *while* the overlay degrades and recovers.
    TrafficPhase {
        /// When lookups are issued.
        phase: Phase,
        /// Lookups issued per cycle (must be positive).
        lookups_per_cycle: u32,
        /// How lookup keys are drawn from the alive population.
        key_dist: KeyDist,
    },
    /// A regional outage during a window: every message with an endpoint in
    /// `region` is dropped independently with probability `loss` while the
    /// window is active. Connectivity-only — nodes stay alive, so the region
    /// re-joins the overlay the moment the window closes. Requires a
    /// [`LatencyModel::Wan`] link model (regions come from its placement);
    /// lookups from or to the region fail with the same probability while the
    /// outage lasts.
    RegionalOutage {
        /// When the outage is in force.
        phase: Phase,
        /// The affected region id (must exist in the placement).
        region: u32,
        /// Per-message drop probability in `[0, 1]` for touched links.
        loss: f64,
    },
    /// Degraded links during a window: the latency of every matching link
    /// (an endpoint in `region`, or all links when `region` is `None`) is
    /// multiplied by `factor`. Connectivity-only; only the event engine and
    /// the traffic latency accounting feel it, since the cycle engines never
    /// consult latency. Requires a [`LatencyModel::Wan`] link model.
    SlowLinks {
        /// When the slowdown is in force.
        phase: Phase,
        /// The affected region id, or `None` to slow every link.
        region: Option<u32>,
        /// Latency multiplier (must be at least 1.0 and finite).
        factor: f64,
    },
}

impl ScenarioEvent {
    /// The cycle at which this event first takes effect.
    pub fn starts_at(&self) -> u64 {
        match self {
            ScenarioEvent::LossWindow { phase, .. }
            | ScenarioEvent::ChurnBurst { phase, .. }
            | ScenarioEvent::Partition { phase, .. }
            | ScenarioEvent::ByzantineConvert { phase, .. }
            | ScenarioEvent::TrafficPhase { phase, .. }
            | ScenarioEvent::RegionalOutage { phase, .. }
            | ScenarioEvent::SlowLinks { phase, .. } => phase.start,
            ScenarioEvent::CatastrophicFailure { at_cycle, .. }
            | ScenarioEvent::MassiveJoin { at_cycle, .. }
            | ScenarioEvent::ReBootstrap { at_cycle, .. } => *at_cycle,
        }
    }

    /// The last cycle boundary at which this event changes the run's
    /// conditions: the window end for phased events (the heal/calm
    /// transition), the firing cycle for one-shots. Open windows never end.
    fn last_transition(&self) -> u64 {
        match self {
            ScenarioEvent::LossWindow { phase, .. }
            | ScenarioEvent::ChurnBurst { phase, .. }
            | ScenarioEvent::Partition { phase, .. }
            | ScenarioEvent::ByzantineConvert { phase, .. }
            | ScenarioEvent::TrafficPhase { phase, .. }
            | ScenarioEvent::RegionalOutage { phase, .. }
            | ScenarioEvent::SlowLinks { phase, .. } => {
                if phase.end == u64::MAX {
                    phase.start
                } else {
                    phase.end
                }
            }
            ScenarioEvent::CatastrophicFailure { at_cycle, .. }
            | ScenarioEvent::MassiveJoin { at_cycle, .. }
            | ScenarioEvent::ReBootstrap { at_cycle, .. } => *at_cycle,
        }
    }

    /// Whether this event changes the network's membership (as opposed to its
    /// connectivity). Membership-stable scenarios allow the runner to keep one
    /// convergence oracle for the whole run.
    pub fn perturbs_membership(&self) -> bool {
        matches!(
            self,
            ScenarioEvent::ChurnBurst { .. }
                | ScenarioEvent::CatastrophicFailure { .. }
                | ScenarioEvent::MassiveJoin { .. }
        )
    }

    /// Whether this event can degrade already-built tables (membership changes
    /// do, and so does a re-bootstrap, which wipes survivor state without
    /// touching membership). The runner resets a recorded convergence cycle
    /// when a table-perturbing event can strike.
    pub fn perturbs_tables(&self) -> bool {
        self.perturbs_membership() || matches!(self, ScenarioEvent::ReBootstrap { .. })
    }

    /// Whether this event can kill nodes (churn replaces them, a catastrophe
    /// removes them). Only scenarios containing such an event can ever produce
    /// a dead descriptor, so the runner skips the per-cycle dead-descriptor
    /// table walk entirely when none is present (a massive join perturbs
    /// membership but can never create a dead node).
    pub fn can_kill_nodes(&self) -> bool {
        matches!(
            self,
            ScenarioEvent::ChurnBurst { .. } | ScenarioEvent::CatastrophicFailure { .. }
        )
    }

    fn validate(&self) -> Result<(), InvalidParams> {
        let in_unit = |field: &'static str, value: f64| {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(InvalidParams::OutOfRange {
                    field,
                    value,
                    min: 0.0,
                    max: 1.0,
                })
            }
        };
        match self {
            ScenarioEvent::LossWindow { phase, probability } => {
                phase.validate("loss")?;
                in_unit("loss probability", *probability)
            }
            ScenarioEvent::ChurnBurst { phase, rate } => {
                phase.validate("churn")?;
                in_unit("churn rate", *rate)
            }
            ScenarioEvent::CatastrophicFailure { fraction, .. } => {
                in_unit("failure fraction", *fraction)
            }
            ScenarioEvent::ReBootstrap { fraction, .. } => {
                in_unit("re-bootstrap fraction", *fraction)
            }
            ScenarioEvent::MassiveJoin { count, .. } => {
                if *count == 0 {
                    Err(InvalidParams::from_message(
                        "massive join count must be positive",
                    ))
                } else {
                    Ok(())
                }
            }
            ScenarioEvent::Partition { phase, groups } => {
                phase.validate("partition")?;
                if matches!(groups, PartitionSpec::Explicit(map) if map.is_empty()) {
                    return Err(InvalidParams::from_message(
                        "explicit partition group map must not be empty",
                    ));
                }
                Ok(())
            }
            ScenarioEvent::ByzantineConvert {
                phase, fraction, ..
            } => {
                phase.validate("byzantine")?;
                in_unit("byzantine fraction", *fraction)
            }
            ScenarioEvent::TrafficPhase {
                phase,
                lookups_per_cycle,
                key_dist,
            } => {
                phase.validate("traffic")?;
                if *lookups_per_cycle == 0 {
                    return Err(InvalidParams::from_message(
                        "traffic lookups_per_cycle must be positive",
                    ));
                }
                key_dist.validate()
            }
            ScenarioEvent::RegionalOutage { phase, loss, .. } => {
                phase.validate("regional outage")?;
                in_unit("regional outage loss", *loss)
            }
            ScenarioEvent::SlowLinks { phase, factor, .. } => {
                phase.validate("slow links")?;
                if !factor.is_finite() || *factor < 1.0 {
                    return Err(InvalidParams::OutOfRange {
                        field: "slow links factor",
                        value: *factor,
                        min: 1.0,
                        max: f64::MAX,
                    });
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for ScenarioEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioEvent::LossWindow { phase, probability } => {
                write!(f, "{:.0}% message loss during {phase}", probability * 100.0)
            }
            ScenarioEvent::ChurnBurst { phase, rate } => {
                write!(f, "{:.1}%/cycle churn during {phase}", rate * 100.0)
            }
            ScenarioEvent::CatastrophicFailure { at_cycle, fraction } => {
                write!(
                    f,
                    "catastrophic failure of {:.0}% at cycle {at_cycle}",
                    fraction * 100.0
                )
            }
            ScenarioEvent::MassiveJoin { at_cycle, count } => {
                write!(f, "massive join of {count} nodes at cycle {at_cycle}")
            }
            ScenarioEvent::ReBootstrap { at_cycle, fraction } => {
                write!(
                    f,
                    "re-bootstrap of {:.0}% of survivors at cycle {at_cycle}",
                    fraction * 100.0
                )
            }
            ScenarioEvent::Partition { phase, .. } => {
                write!(f, "network partition during {phase}")
            }
            ScenarioEvent::ByzantineConvert {
                phase,
                fraction,
                behavior,
            } => {
                write!(
                    f,
                    "byzantine conversion of {:.0}% playing {} during {phase}",
                    fraction * 100.0,
                    behavior.label()
                )
            }
            ScenarioEvent::TrafficPhase {
                phase,
                lookups_per_cycle,
                key_dist,
            } => {
                write!(
                    f,
                    "{lookups_per_cycle} {key_dist} lookups/cycle during {phase}"
                )
            }
            ScenarioEvent::RegionalOutage {
                phase,
                region,
                loss,
            } => {
                write!(
                    f,
                    "{:.0}% outage of region {region} during {phase}",
                    loss * 100.0
                )
            }
            ScenarioEvent::SlowLinks {
                phase,
                region,
                factor,
            } => match region {
                Some(region) => {
                    write!(f, "{factor}x slow links in region {region} during {phase}")
                }
                None => write!(f, "{factor}x slow links everywhere during {phase}"),
            },
        }
    }
}

/// A composable timeline of [`ScenarioEvent`]s describing everything that
/// happens *to* the network during a run.
///
/// # Example
///
/// ```rust
/// use bss_core::scenario::{Phase, Scenario, ScenarioEvent};
///
/// // 20% loss for the first 10 cycles, then a catastrophe, then a flash crowd.
/// let scenario = Scenario::calm()
///     .with(ScenarioEvent::LossWindow {
///         phase: Phase::new(0, 10),
///         probability: 0.2,
///     })
///     .with(ScenarioEvent::CatastrophicFailure { at_cycle: 12, fraction: 0.5 })
///     .with(ScenarioEvent::MassiveJoin { at_cycle: 20, count: 256 });
/// assert!(scenario.validate().is_ok());
/// assert!(scenario.perturbs_membership());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    events: Vec<ScenarioEvent>,
}

impl Scenario {
    /// The empty timeline: no loss, no churn, no failures (Figure 3's setting).
    pub fn calm() -> Self {
        Scenario::default()
    }

    /// Appends an event to the timeline (builder style). Within one cycle,
    /// membership events apply in timeline order.
    #[must_use]
    pub fn with(mut self, event: ScenarioEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Sugar: uniform message loss over the whole run (the legacy
    /// `drop_probability` knob). A probability of zero yields a calm timeline.
    pub fn uniform_loss(probability: f64) -> Self {
        let mut scenario = Scenario::calm();
        scenario.set_whole_run_loss(probability);
        scenario
    }

    /// Sugar: continuous replacement churn over the whole run (the legacy
    /// `churn_rate` knob). A rate of zero yields a calm timeline.
    pub fn uniform_churn(rate: f64) -> Self {
        let mut scenario = Scenario::calm();
        scenario.set_whole_run_churn(rate);
        scenario
    }

    /// Replaces any whole-run loss window with one of `probability` (removing
    /// it entirely when `probability == 0`). This is what the legacy
    /// `drop_probability` builder setter desugars to; scoped loss windows are
    /// left untouched.
    pub fn set_whole_run_loss(&mut self, probability: f64) {
        self.events.retain(|event| {
            !matches!(event, ScenarioEvent::LossWindow { phase, .. } if *phase == Phase::whole_run())
        });
        if probability != 0.0 {
            self.events.push(ScenarioEvent::LossWindow {
                phase: Phase::whole_run(),
                probability,
            });
        }
    }

    /// Replaces any whole-run churn burst with one of `rate` (removing it
    /// entirely when `rate == 0`). This is what the legacy `churn_rate`
    /// builder setter desugars to.
    pub fn set_whole_run_churn(&mut self, rate: f64) {
        self.events.retain(|event| {
            !matches!(event, ScenarioEvent::ChurnBurst { phase, .. } if *phase == Phase::whole_run())
        });
        if rate != 0.0 {
            self.events.push(ScenarioEvent::ChurnBurst {
                phase: Phase::whole_run(),
                rate,
            });
        }
    }

    /// The timeline entries, in application order.
    pub fn events(&self) -> &[ScenarioEvent] {
        &self.events
    }

    /// Whether the timeline is empty.
    pub fn is_calm(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether any event changes the network's membership (churn, failure,
    /// join). When false, one convergence oracle serves the whole run.
    pub fn perturbs_membership(&self) -> bool {
        self.events.iter().any(ScenarioEvent::perturbs_membership)
    }

    /// Whether any event can degrade already-built tables — membership changes
    /// or re-bootstrap orders. When false, a reached perfection can never
    /// degrade, so the runner keeps the first recorded convergence cycle.
    pub fn perturbs_tables(&self) -> bool {
        self.events.iter().any(ScenarioEvent::perturbs_tables)
    }

    /// Whether any event can kill nodes — the precondition for a dead
    /// descriptor to ever exist. When false, the dead-descriptor fraction is
    /// structurally zero and the runner records it without walking any table.
    pub fn can_kill_nodes(&self) -> bool {
        self.events.iter().any(ScenarioEvent::can_kill_nodes)
    }

    /// Whether the timeline converts any nodes to Byzantine behaviour. When
    /// false the runner skips every attack-metric walk (poisoned descriptors,
    /// eclipse fraction) — the adversarial analogue of the dead-descriptor
    /// early-out.
    pub fn has_adversary(&self) -> bool {
        self.events
            .iter()
            .any(|event| matches!(event, ScenarioEvent::ByzantineConvert { .. }))
    }

    /// Whether the timeline issues lookup traffic. When false the runner
    /// builds no traffic driver and the report carries no traffic series —
    /// non-traffic runs pay nothing (the analogue of the dead-descriptor and
    /// attack-metric early-outs).
    pub fn has_traffic(&self) -> bool {
        self.events
            .iter()
            .any(|event| matches!(event, ScenarioEvent::TrafficPhase { .. }))
    }

    /// Whether the timeline contains regional connectivity events (outages or
    /// slow links). Such timelines require a [`LatencyModel::Wan`] link model,
    /// since regions only exist under a node placement.
    pub fn has_regional_events(&self) -> bool {
        self.events.iter().any(|event| {
            matches!(
                event,
                ScenarioEvent::RegionalOutage { .. } | ScenarioEvent::SlowLinks { .. }
            )
        })
    }

    /// The regional outages on the timeline, as `(phase, region, loss)`
    /// triples in timeline order. The traffic layer replays these to fail
    /// lookups touching an outaged region at service level.
    pub fn regional_outages(&self) -> impl Iterator<Item = (Phase, u32, f64)> + '_ {
        self.events.iter().filter_map(|event| match event {
            ScenarioEvent::RegionalOutage {
                phase,
                region,
                loss,
            } => Some((*phase, *region, *loss)),
            _ => None,
        })
    }

    /// The slow-link windows on the timeline, as `(phase, region, factor)`
    /// triples in timeline order (`region == None` slows every link).
    pub fn slow_link_windows(&self) -> impl Iterator<Item = (Phase, Option<u32>, f64)> + '_ {
        self.events.iter().filter_map(|event| match event {
            ScenarioEvent::SlowLinks {
                phase,
                region,
                factor,
            } => Some((*phase, *region, *factor)),
            _ => None,
        })
    }

    /// The traffic phases on the timeline, as `(phase, lookups_per_cycle,
    /// key_dist)` triples in timeline order.
    pub fn traffic_phases(&self) -> impl Iterator<Item = (Phase, u32, KeyDist)> + '_ {
        self.events.iter().filter_map(|event| match event {
            ScenarioEvent::TrafficPhase {
                phase,
                lookups_per_cycle,
                key_dist,
            } => Some((*phase, *lookups_per_cycle, *key_dist)),
            _ => None,
        })
    }

    /// The Byzantine conversion on the timeline compiled to an
    /// [`AdversaryModel`] (its converted set still empty — the churn layer
    /// fills it when the conversion fires), or `None` on honest timelines.
    pub fn build_adversary(&self) -> Option<AdversaryModel> {
        self.events.iter().find_map(|event| match event {
            ScenarioEvent::ByzantineConvert {
                phase, behavior, ..
            } => Some(AdversaryModel::new(phase.start, phase.end, *behavior)),
            _ => None,
        })
    }

    /// The probability of a whole-run loss window, if one is on the timeline
    /// (the value the legacy `drop_probability` accessor reports).
    pub fn whole_run_loss(&self) -> f64 {
        self.events
            .iter()
            .find_map(|event| match event {
                ScenarioEvent::LossWindow { phase, probability }
                    if *phase == Phase::whole_run() =>
                {
                    Some(*probability)
                }
                _ => None,
            })
            .unwrap_or(0.0)
    }

    /// The rate of a whole-run churn burst, if one is on the timeline (the
    /// value the legacy `churn_rate` accessor reports).
    pub fn whole_run_churn(&self) -> f64 {
        self.events
            .iter()
            .find_map(|event| match event {
                ScenarioEvent::ChurnBurst { phase, rate } if *phase == Phase::whole_run() => {
                    Some(*rate)
                }
                _ => None,
            })
            .unwrap_or(0.0)
    }

    /// Whether any scenario transition (a one-shot firing, a window opening or
    /// a finite window closing) still lies strictly after `cycle`. The runner
    /// refuses to stop at perfection while this holds — a network that
    /// converges at cycle 8 must still face the catastrophe scheduled for
    /// cycle 12.
    pub fn changes_after(&self, cycle: u64) -> bool {
        self.events
            .iter()
            .any(|event| event.last_transition() > cycle && event.last_transition() != u64::MAX)
    }

    /// The events that first take effect exactly at `cycle` (used for
    /// [`Observer::on_scenario_event`] notifications).
    pub fn events_starting_at(&self, cycle: u64) -> impl Iterator<Item = &ScenarioEvent> {
        self.events
            .iter()
            .filter(move |event| event.starts_at() == cycle)
    }

    /// Validates every event and the mutual-exclusion rules: loss windows must
    /// not overlap each other (the active probability would be ambiguous), and
    /// partition windows must not overlap each other.
    ///
    /// # Errors
    ///
    /// Returns the typed [`InvalidParams`] variant describing the first
    /// violation: [`InvalidParams::OutOfRange`] for probabilities, rates and
    /// fractions outside `[0, 1]`, [`InvalidParams::EmptyWindow`] for windows
    /// with `start >= end`, and [`InvalidParams::OverlappingPhases`] for
    /// overlapping exclusive windows.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        for event in &self.events {
            event.validate()?;
        }
        self.check_exclusive("loss", |event| {
            matches!(event, ScenarioEvent::LossWindow { .. })
        })?;
        self.check_exclusive("partition", |event| {
            matches!(event, ScenarioEvent::Partition { .. })
        })?;
        // Overlapping traffic phases would make the active arrival rate
        // ambiguous, exactly like overlapping loss windows.
        self.check_exclusive("traffic", |event| {
            matches!(event, ScenarioEvent::TrafficPhase { .. })
        })?;
        // A run has one adversary model: two conversions with different
        // behaviours would need per-node behaviour tracking the engines do not
        // (yet) implement, so reject the ambiguity outright.
        if self
            .events
            .iter()
            .filter(|event| matches!(event, ScenarioEvent::ByzantineConvert { .. }))
            .count()
            > 1
        {
            return Err(InvalidParams::from_message(
                "at most one byzantine conversion per scenario",
            ));
        }
        Ok(())
    }

    fn check_exclusive(
        &self,
        kind: &'static str,
        select: impl Fn(&ScenarioEvent) -> bool,
    ) -> Result<(), InvalidParams> {
        let phases: Vec<Phase> = self
            .events
            .iter()
            .filter(|event| select(event))
            .map(|event| match event {
                ScenarioEvent::LossWindow { phase, .. }
                | ScenarioEvent::ChurnBurst { phase, .. }
                | ScenarioEvent::Partition { phase, .. }
                | ScenarioEvent::TrafficPhase { phase, .. } => *phase,
                _ => unreachable!("one-shot events are never exclusive-window kinds"),
            })
            .collect();
        for (i, first) in phases.iter().enumerate() {
            for second in &phases[i + 1..] {
                if first.overlaps(second) {
                    return Err(InvalidParams::OverlappingPhases {
                        kind,
                        first: (first.start, first.end),
                        second: (second.start, second.end),
                    });
                }
            }
        }
        Ok(())
    }

    /// Compiles the timeline's connectivity events (loss and partition
    /// windows) into a [`TimelineTransport`] for a network of `network_size`
    /// initial nodes. The engines drive the transport's clock through
    /// [`Transport::advance_to_cycle`](bss_sim::transport::Transport::advance_to_cycle).
    pub fn build_transport(&self, network_size: usize) -> TimelineTransport {
        let mut transport = TimelineTransport::new();
        for event in &self.events {
            match event {
                ScenarioEvent::LossWindow { phase, probability } => {
                    transport = transport.with_loss_window(phase.start, phase.end, *probability);
                }
                ScenarioEvent::Partition { phase, groups } => {
                    transport = transport.with_partition_window(
                        phase.start,
                        phase.end,
                        groups.group_map(network_size),
                    );
                }
                _ => {}
            }
        }
        transport
    }

    /// Compiles the full per-link transport both engines now run on: the
    /// scripted timeline of [`Scenario::build_transport`] composed with the
    /// link model of `latency` and the timeline's regional outage / slow-link
    /// windows. With a trivial link model and no regional events the result
    /// consumes exactly the legacy RNG streams (see `bss_sim::link`).
    ///
    /// `placement` must be the shared value of
    /// [`LatencyModel::build_placement`] for this run (or `None` for the
    /// placement-free models).
    pub fn build_link_transport(
        &self,
        network_size: usize,
        latency: &LatencyModel,
        placement: Option<&Arc<Placement>>,
        seed: u64,
    ) -> LinkTransport {
        let link = latency.build_link(placement, seed);
        let mut transport = LinkTransport::new(self.build_transport(network_size), link);
        if let Some(placement) = placement {
            transport = transport.with_placement(Arc::clone(placement));
        }
        for (phase, region, loss) in self.regional_outages() {
            transport = transport.with_outage_window(phase.start, phase.end, region, loss);
        }
        for (phase, region, factor) in self.slow_link_windows() {
            transport = transport.with_slow_window(phase.start, phase.end, region, factor);
        }
        transport
    }

    /// Compiles the timeline's membership and recovery events into a churn
    /// model, or `None` when neither kind is present. Models are composed in
    /// timeline order, so within one cycle a join listed before a failure
    /// exposes the joiners to that failure — exactly as in the legacy
    /// `CompositeChurn` usage — and a re-bootstrap listed after a failure
    /// re-initialises only the survivors.
    pub fn build_churn(&self) -> Option<Box<dyn ChurnModel>> {
        if !self.perturbs_tables() && !self.has_adversary() {
            return None;
        }
        let mut composite = CompositeChurn::new();
        for event in &self.events {
            match event {
                ScenarioEvent::ChurnBurst { phase, rate } => {
                    composite = composite.with(Box::new(WindowedChurn::new(
                        phase.start,
                        phase.end,
                        UniformChurn::new(*rate),
                    )));
                }
                ScenarioEvent::CatastrophicFailure { at_cycle, fraction } => {
                    composite =
                        composite.with(Box::new(CatastrophicFailure::new(*at_cycle, *fraction)));
                }
                ScenarioEvent::MassiveJoin { at_cycle, count } => {
                    composite = composite.with(Box::new(MassiveJoin::new(*at_cycle, *count)));
                }
                ScenarioEvent::ReBootstrap { at_cycle, fraction } => {
                    composite = composite.with(Box::new(ReBootstrap::new(*at_cycle, *fraction)));
                }
                ScenarioEvent::ByzantineConvert {
                    phase, fraction, ..
                } => {
                    composite =
                        composite.with(Box::new(ByzantineConversion::new(phase.start, *fraction)));
                }
                _ => {}
            }
        }
        Some(Box::new(composite))
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.events.is_empty() {
            return write!(f, "calm");
        }
        for (position, event) in self.events.iter().enumerate() {
            if position > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{event}")?;
        }
        Ok(())
    }
}

/// The per-link latency (and topology) model consulted by every engine.
///
/// `Constant` and `Uniform` are the historical global models: one latency
/// distribution for every link, no geography. `Wan` places every node on a
/// 2-D plane ([`PlacementSpec`]) and derives each link's latency from
/// coordinate distance ([`WanParams`]) — which also unlocks the regional
/// scenario events ([`ScenarioEvent::RegionalOutage`],
/// [`ScenarioEvent::SlowLinks`]) and the per-region report series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every delivered message takes exactly `millis` milliseconds.
    Constant {
        /// The fixed latency in milliseconds.
        millis: u64,
    },
    /// Uniformly random latency in `[min_millis, max_millis]` milliseconds.
    Uniform {
        /// Smallest latency (inclusive).
        min_millis: u64,
        /// Largest latency (inclusive).
        max_millis: u64,
    },
    /// Distance-dependent WAN latency over a seeded node placement, with
    /// deterministic per-pair jitter and asymmetric inter-region loss.
    Wan {
        /// How nodes are placed on the plane (and partitioned into regions).
        placement: PlacementSpec,
        /// The distance-to-milliseconds conversion and loss parameters.
        params: WanParams,
    },
}

impl LatencyModel {
    /// The latency bounds as a `(min, max)` pair. For `Wan` the maximum is
    /// derived from the placement's maximum pairwise distance.
    pub fn bounds(&self) -> (u64, u64) {
        match *self {
            LatencyModel::Constant { millis } => (millis, millis),
            LatencyModel::Uniform {
                min_millis,
                max_millis,
            } => (min_millis, max_millis),
            LatencyModel::Wan { placement, params } => {
                let max_propagation =
                    (placement.max_distance() * params.millis_per_unit).round() as u64;
                (
                    params.base_millis.max(1),
                    (params.base_millis + max_propagation + params.jitter_millis).max(1),
                )
            }
        }
    }

    /// Whether this model carries a node placement (regional events and
    /// per-region series require one).
    pub fn is_wan(&self) -> bool {
        matches!(self, LatencyModel::Wan { .. })
    }

    /// The placement spec, when this model has one.
    pub fn placement_spec(&self) -> Option<PlacementSpec> {
        match *self {
            LatencyModel::Wan { placement, .. } => Some(placement),
            _ => None,
        }
    }

    /// A short machine-readable name (used in bench TSV columns).
    pub fn label(&self) -> &'static str {
        match self {
            LatencyModel::Constant { .. } => "constant",
            LatencyModel::Uniform { .. } => "uniform",
            LatencyModel::Wan { .. } => "wan",
        }
    }

    /// Generates the node placement for a network of `size` initial nodes,
    /// or `None` for the placement-free models. Coordinates come from a
    /// salted private stream, so this never perturbs the run's main RNG.
    pub fn build_placement(&self, size: usize, seed: u64) -> Option<Arc<Placement>> {
        self.placement_spec()
            .map(|spec| Arc::new(spec.generate(size, seed)))
    }

    /// Compiles this model into the [`LinkModel`] the transports consult.
    /// `placement` must be the value of [`LatencyModel::build_placement`]
    /// (shared so the measurement layer sees the same coordinates).
    pub fn build_link(&self, placement: Option<&Arc<Placement>>, seed: u64) -> Box<dyn LinkModel> {
        match *self {
            LatencyModel::Constant { millis } => Box::new(ConstantLink::new(millis)),
            LatencyModel::Uniform {
                min_millis,
                max_millis,
            } => Box::new(UniformLink::new(min_millis, max_millis)),
            LatencyModel::Wan { params, .. } => {
                let placement = placement
                    .expect("a Wan latency model always builds a placement")
                    .clone();
                Box::new(WanLink::new(placement, params, seed))
            }
        }
    }

    /// Validates the model: the latency range must not be inverted, and a WAN
    /// model's placement and parameters must each pass their own validation.
    ///
    /// # Errors
    ///
    /// Returns the typed [`InvalidParams::OutOfRange`] naming the offending
    /// field.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        let (min, max) = self.bounds();
        if min > max {
            // Typed rather than stringly: an inverted range means min_millis
            // exceeds the inclusive ceiling max_millis sets.
            return Err(InvalidParams::OutOfRange {
                field: "latency min_millis",
                value: min as f64,
                min: 0.0,
                max: max as f64,
            });
        }
        if let LatencyModel::Wan { placement, params } = self {
            placement.validate()?;
            params.validate()?;
        }
        Ok(())
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant { millis: 1 }
    }
}

/// Which simulation engine drives a run. All three engines execute the same
/// protocol over the same [`Scenario`] timeline behind the same
/// [`run_scenario`](crate::experiment::run_scenario) entry point.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Engine {
    /// The sequential cycle-driven engine — the execution model under which
    /// all of the paper's results were produced (PeerSim's cycle mode).
    #[default]
    Cycle,
    /// The deterministic parallel cycle engine: bit-for-bit identical output
    /// to [`Engine::Cycle`] at any thread count, faster wall-clock on
    /// multi-core hosts.
    ParallelCycle {
        /// Number of worker threads (must be positive; 1 is the sequential
        /// engine).
        threads: usize,
    },
    /// The discrete-event engine: nodes wake on timers at random phases
    /// within Δ, messages travel with per-link latency, replies can arrive
    /// cycles after their request. Used to confirm the protocol's behaviour
    /// is not an artifact of the synchronous cycle abstraction.
    Event {
        /// The per-link latency model.
        latency: LatencyModel,
    },
}

impl Engine {
    /// Sugar mapping a thread count to an engine: 1 is the sequential cycle
    /// engine, more is the parallel one.
    pub fn with_threads(threads: usize) -> Self {
        if threads == 1 {
            Engine::Cycle
        } else {
            Engine::ParallelCycle { threads }
        }
    }

    /// The worker thread count this engine uses (1 for `Cycle` and `Event`).
    pub fn threads(&self) -> usize {
        match *self {
            Engine::ParallelCycle { threads } => threads,
            _ => 1,
        }
    }

    /// A short machine-readable name (used in report JSON and artifacts).
    pub fn label(&self) -> &'static str {
        match self {
            Engine::Cycle => "cycle",
            Engine::ParallelCycle { .. } => "parallel_cycle",
            Engine::Event { .. } => "event",
        }
    }

    /// Validates the selection.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParams`] for a zero thread count or an inverted
    /// latency range.
    pub fn validate(&self) -> Result<(), InvalidParams> {
        match self {
            Engine::Cycle => Ok(()),
            Engine::ParallelCycle { threads } => {
                if *threads == 0 {
                    Err(InvalidParams::from_message("threads must be positive"))
                } else {
                    Ok(())
                }
            }
            Engine::Event { latency } => latency.validate(),
        }
    }
}

/// A pluggable run observer: the one interface behind which the closure
/// observers of `CycleEngine::run_with_observer`, the `MetricRecorder`
/// plumbing and the benchmark binaries' ad-hoc series collection all unified.
///
/// Every measured cycle produces one [`Observer::on_cycle`] call (the cadence
/// is [`ExperimentConfig::measure_every`](crate::experiment::ExperimentConfig));
/// scenario transitions produce [`Observer::on_scenario_event`] calls. Both
/// engines drive observers identically.
pub trait Observer {
    /// Called after every measured cycle with the network-wide convergence
    /// state. Return [`ControlFlow::Break`] to stop the run early.
    fn on_cycle(&mut self, cycle: u64, measured: &NetworkConvergence) -> ControlFlow<()> {
        let _ = (cycle, measured);
        ControlFlow::Continue(())
    }

    /// Called when a scenario event first takes effect (a window opens or a
    /// one-shot fires).
    fn on_scenario_event(&mut self, cycle: u64, event: &ScenarioEvent) {
        let _ = (cycle, event);
    }
}

/// The do-nothing observer.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl Observer for NullObserver {}

/// Every closure over `(cycle, measurement)` is an observer — this is the
/// migration path for the old `run_with_observer` call sites.
impl<F> Observer for F
where
    F: FnMut(u64, &NetworkConvergence) -> ControlFlow<()>,
{
    fn on_cycle(&mut self, cycle: u64, measured: &NetworkConvergence) -> ControlFlow<()> {
        self(cycle, measured)
    }
}

/// A `MetricRecorder` is an observer: it collects the two missing-entry series
/// under their canonical names and records scenario events as zero-one spikes
/// under `scenario_events`.
impl Observer for MetricRecorder {
    fn on_cycle(&mut self, cycle: u64, measured: &NetworkConvergence) -> ControlFlow<()> {
        self.record(
            cycle,
            "missing_leafset_proportion",
            measured.leaf_proportion(),
        );
        self.record(
            cycle,
            "missing_prefix_proportion",
            measured.prefix_proportion(),
        );
        ControlFlow::Continue(())
    }

    fn on_scenario_event(&mut self, cycle: u64, _event: &ScenarioEvent) {
        self.record(cycle, "scenario_events", 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_know_their_geometry() {
        let phase = Phase::new(5, 10);
        assert!(phase.contains(5));
        assert!(phase.contains(9));
        assert!(!phase.contains(10));
        assert!(phase.overlaps(&Phase::new(9, 20)));
        assert!(!phase.overlaps(&Phase::new(10, 20)));
        assert!(Phase::whole_run().contains(u64::MAX - 1));
        assert_eq!(Phase::from(3), Phase::new(3, u64::MAX));
        assert_eq!(Phase::new(0, 4).to_string(), "[0, 4)");
        assert_eq!(Phase::from(2).to_string(), "[2, ∞)");
    }

    #[test]
    fn sugar_constructors_desugar_to_whole_run_windows() {
        let loss = Scenario::uniform_loss(0.2);
        assert_eq!(loss.whole_run_loss(), 0.2);
        assert_eq!(loss.whole_run_churn(), 0.0);
        assert!(!loss.perturbs_membership());

        let churn = Scenario::uniform_churn(0.01);
        assert_eq!(churn.whole_run_churn(), 0.01);
        assert!(churn.perturbs_membership());

        // Zero knobs produce a calm timeline (so no RNG is ever drawn).
        assert!(Scenario::uniform_loss(0.0).is_calm());
        assert!(Scenario::uniform_churn(0.0).is_calm());

        // Setting the knob twice replaces, like the old scalar field.
        let mut replaced = Scenario::uniform_loss(0.5);
        replaced.set_whole_run_loss(0.1);
        assert_eq!(replaced.whole_run_loss(), 0.1);
        assert_eq!(replaced.events().len(), 1);
        replaced.set_whole_run_loss(0.0);
        assert!(replaced.is_calm());
    }

    #[test]
    fn validation_rejects_bad_timelines() {
        // Out-of-range probability: the old code silently clamped this.
        let too_lossy = Scenario::uniform_loss(1.5);
        assert_eq!(
            too_lossy.validate(),
            Err(InvalidParams::OutOfRange {
                field: "loss probability",
                value: 1.5,
                min: 0.0,
                max: 1.0,
            })
        );
        // Zero-length window.
        let empty = Scenario::calm().with(ScenarioEvent::ChurnBurst {
            phase: Phase::new(7, 7),
            rate: 0.1,
        });
        assert_eq!(
            empty.validate(),
            Err(InvalidParams::EmptyWindow {
                field: "churn",
                start: 7,
                end: 7,
            })
        );
        // Overlapping exclusive loss windows.
        let overlapping = Scenario::calm()
            .with(ScenarioEvent::LossWindow {
                phase: Phase::new(0, 10),
                probability: 0.1,
            })
            .with(ScenarioEvent::LossWindow {
                phase: Phase::new(9, 20),
                probability: 0.4,
            });
        assert_eq!(
            overlapping.validate(),
            Err(InvalidParams::OverlappingPhases {
                kind: "loss",
                first: (0, 10),
                second: (9, 20),
            })
        );
        // Adjacent windows are fine.
        let adjacent = Scenario::calm()
            .with(ScenarioEvent::LossWindow {
                phase: Phase::new(0, 10),
                probability: 0.1,
            })
            .with(ScenarioEvent::LossWindow {
                phase: Phase::new(10, 20),
                probability: 0.4,
            });
        assert!(adjacent.validate().is_ok());
        // Churn bursts may stack (they compose additively).
        let stacked = Scenario::calm()
            .with(ScenarioEvent::ChurnBurst {
                phase: Phase::whole_run(),
                rate: 0.01,
            })
            .with(ScenarioEvent::ChurnBurst {
                phase: Phase::new(5, 10),
                rate: 0.2,
            });
        assert!(stacked.validate().is_ok());
        // Degenerate one-shots.
        assert!(Scenario::calm()
            .with(ScenarioEvent::MassiveJoin {
                at_cycle: 3,
                count: 0
            })
            .validate()
            .is_err());
        assert!(Scenario::calm()
            .with(ScenarioEvent::CatastrophicFailure {
                at_cycle: 3,
                fraction: -0.1
            })
            .validate()
            .is_err());
        assert!(Scenario::calm()
            .with(ScenarioEvent::Partition {
                phase: Phase::new(0, 5),
                groups: PartitionSpec::Explicit(Vec::new()),
            })
            .validate()
            .is_err());
    }

    #[test]
    fn rebootstrap_perturbs_tables_but_not_membership() {
        let scenario = Scenario::calm().with(ScenarioEvent::ReBootstrap {
            at_cycle: 12,
            fraction: 1.0,
        });
        assert!(!scenario.perturbs_membership(), "membership is untouched");
        assert!(scenario.perturbs_tables(), "survivor state is wiped");
        assert!(
            scenario.build_churn().is_some(),
            "the recovery order still needs a model at cycle boundaries"
        );
        assert!(scenario.changes_after(11));
        assert!(!scenario.changes_after(12));
        // Validation: the fraction must lie in the unit interval.
        assert!(scenario.validate().is_ok());
        assert_eq!(
            Scenario::calm()
                .with(ScenarioEvent::ReBootstrap {
                    at_cycle: 3,
                    fraction: 1.5,
                })
                .validate(),
            Err(InvalidParams::OutOfRange {
                field: "re-bootstrap fraction",
                value: 1.5,
                min: 0.0,
                max: 1.0,
            })
        );
        // Display names the event for RunReport event logs.
        let text = scenario.events()[0].to_string();
        assert!(text.contains("re-bootstrap"), "{text}");
        assert!(text.contains("100%"), "{text}");
        assert!(text.contains("cycle 12"), "{text}");
    }

    #[test]
    fn byzantine_conversion_is_membership_neutral_but_builds_a_model() {
        let scenario = Scenario::calm().with(ScenarioEvent::ByzantineConvert {
            phase: Phase::new(5, 45),
            fraction: 0.2,
            behavior: AdversaryBehavior::IdSpray { target: 7 },
        });
        assert!(scenario.validate().is_ok());
        assert!(!scenario.perturbs_membership());
        assert!(!scenario.perturbs_tables());
        assert!(!scenario.can_kill_nodes());
        assert!(scenario.has_adversary());
        assert!(
            scenario.build_churn().is_some(),
            "the conversion still fires at a cycle boundary"
        );
        let model = scenario.build_adversary().expect("model compiled");
        assert_eq!(model.start(), 5);
        assert_eq!(model.target(), Some(bss_sim::network::NodeIndex::new(7)));
        assert_eq!(model.converted_count(), 0, "conversion happens at runtime");
        // The attack window gates the perfection stop like any finite window.
        assert!(scenario.changes_after(44));
        assert!(!scenario.changes_after(45));
        // Display names the behaviour for RunReport event logs.
        let text = scenario.events()[0].to_string();
        assert!(text.contains("byzantine"), "{text}");
        assert!(text.contains("20%"), "{text}");
        assert!(text.contains("id_spray"), "{text}");
        // Validation still applies inside the new arm.
        assert!(Scenario::calm()
            .with(ScenarioEvent::ByzantineConvert {
                phase: Phase::new(5, 5),
                fraction: 0.2,
                behavior: AdversaryBehavior::ForgeDescriptors,
            })
            .validate()
            .is_err());
        assert!(Scenario::calm()
            .with(ScenarioEvent::ByzantineConvert {
                phase: Phase::from(0),
                fraction: 1.2,
                behavior: AdversaryBehavior::HubAttack,
            })
            .validate()
            .is_err());
        // At most one conversion per scenario.
        assert!(scenario
            .clone()
            .with(ScenarioEvent::ByzantineConvert {
                phase: Phase::from(50),
                fraction: 0.1,
                behavior: AdversaryBehavior::HubAttack,
            })
            .validate()
            .is_err());
    }

    #[test]
    fn traffic_phases_are_condition_neutral_but_gate_the_stop() {
        let scenario = Scenario::calm().with(ScenarioEvent::TrafficPhase {
            phase: Phase::new(20, 40),
            lookups_per_cycle: 100,
            key_dist: KeyDist::Uniform,
        });
        assert!(scenario.validate().is_ok());
        assert!(scenario.has_traffic());
        assert!(!scenario.perturbs_membership());
        assert!(!scenario.perturbs_tables());
        assert!(!scenario.can_kill_nodes());
        assert!(!scenario.has_adversary());
        assert!(
            scenario.build_churn().is_none(),
            "traffic alone needs no churn model"
        );
        // A finite traffic window keeps a converged run alive until it closes.
        assert!(scenario.changes_after(19));
        assert!(scenario.changes_after(39));
        assert!(!scenario.changes_after(40));
        let phases: Vec<_> = scenario.traffic_phases().collect();
        assert_eq!(phases, vec![(Phase::new(20, 40), 100, KeyDist::Uniform)]);
        // Display names the workload for RunReport event logs.
        let text = scenario.events()[0].to_string();
        assert!(text.contains("100 uniform lookups/cycle"), "{text}");
        assert_eq!(KeyDist::Zipf { exponent: 1.2 }.to_string(), "zipf(1.2)");
        assert_eq!(KeyDist::Zipf { exponent: 1.2 }.label(), "zipf");
        // Validation: zero arrivals, bad zipf exponents and overlapping
        // windows are rejected.
        assert!(Scenario::calm()
            .with(ScenarioEvent::TrafficPhase {
                phase: Phase::new(0, 5),
                lookups_per_cycle: 0,
                key_dist: KeyDist::Uniform,
            })
            .validate()
            .is_err());
        assert!(Scenario::calm()
            .with(ScenarioEvent::TrafficPhase {
                phase: Phase::new(0, 5),
                lookups_per_cycle: 1,
                key_dist: KeyDist::Zipf { exponent: 0.0 },
            })
            .validate()
            .is_err());
        assert!(scenario
            .clone()
            .with(ScenarioEvent::TrafficPhase {
                phase: Phase::new(30, 50),
                lookups_per_cycle: 1,
                key_dist: KeyDist::Uniform,
            })
            .validate()
            .is_err());
    }

    #[test]
    fn pending_changes_gate_the_perfection_stop() {
        let scenario = Scenario::calm()
            .with(ScenarioEvent::CatastrophicFailure {
                at_cycle: 12,
                fraction: 0.5,
            })
            .with(ScenarioEvent::Partition {
                phase: Phase::new(0, 25),
                groups: PartitionSpec::IndexParity,
            });
        assert!(scenario.changes_after(0), "failure and heal still ahead");
        assert!(scenario.changes_after(11));
        assert!(scenario.changes_after(24), "the heal at 25 is a change");
        assert!(!scenario.changes_after(25));
        // Whole-run windows never block the stop (compatibility path).
        assert!(!Scenario::uniform_loss(0.2).changes_after(0));
        assert!(!Scenario::uniform_churn(0.05).changes_after(0));
    }

    #[test]
    fn compilation_splits_connectivity_from_membership() {
        let scenario = Scenario::calm()
            .with(ScenarioEvent::LossWindow {
                phase: Phase::new(0, 10),
                probability: 0.2,
            })
            .with(ScenarioEvent::Partition {
                phase: Phase::new(5, 15),
                groups: PartitionSpec::IndexParity,
            })
            .with(ScenarioEvent::MassiveJoin {
                at_cycle: 8,
                count: 16,
            });
        let transport = scenario.build_transport(4);
        assert_eq!(transport.active_loss(), 0.2);
        assert!(!transport.partition_active(), "partition starts at 5");
        assert!(scenario.build_churn().is_some());
        assert!(Scenario::uniform_loss(0.3).build_churn().is_none());
    }

    #[test]
    fn engine_selection_validates_and_labels() {
        assert_eq!(Engine::default(), Engine::Cycle);
        assert_eq!(Engine::with_threads(1), Engine::Cycle);
        assert_eq!(
            Engine::with_threads(4),
            Engine::ParallelCycle { threads: 4 }
        );
        assert_eq!(Engine::Cycle.threads(), 1);
        assert_eq!(Engine::ParallelCycle { threads: 8 }.threads(), 8);
        assert_eq!(Engine::Cycle.label(), "cycle");
        assert_eq!(
            Engine::Event {
                latency: LatencyModel::default()
            }
            .label(),
            "event"
        );
        assert!(Engine::ParallelCycle { threads: 0 }.validate().is_err());
        assert!(Engine::Event {
            latency: LatencyModel::Uniform {
                min_millis: 9,
                max_millis: 3
            }
        }
        .validate()
        .is_err());
        assert_eq!(LatencyModel::Constant { millis: 7 }.bounds(), (7, 7));
    }

    #[test]
    fn observers_compose_with_recorders_and_closures() {
        let mut recorder = MetricRecorder::new();
        let convergence = NetworkConvergence::default();
        assert!(recorder.on_cycle(0, &convergence).is_continue());
        recorder.on_scenario_event(
            3,
            &ScenarioEvent::MassiveJoin {
                at_cycle: 3,
                count: 5,
            },
        );
        assert_eq!(
            recorder.series("missing_leafset_proportion").unwrap().len(),
            1
        );
        assert_eq!(recorder.series("scenario_events").unwrap().len(), 1);

        let mut seen = Vec::new();
        let mut closure = |cycle: u64, _m: &NetworkConvergence| {
            seen.push(cycle);
            if cycle >= 1 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        };
        assert!(Observer::on_cycle(&mut closure, 0, &convergence).is_continue());
        assert!(Observer::on_cycle(&mut closure, 1, &convergence).is_break());
        assert_eq!(seen, vec![0, 1]);
        let _ = NullObserver.on_cycle(9, &convergence);
    }

    #[test]
    fn event_displays_are_informative() {
        let text = Scenario::calm()
            .with(ScenarioEvent::CatastrophicFailure {
                at_cycle: 2,
                fraction: 0.7,
            })
            .events()[0]
            .to_string();
        assert!(text.contains("70%"));
        assert!(text.contains("cycle 2"));
        assert!(ScenarioEvent::LossWindow {
            phase: Phase::whole_run(),
            probability: 0.2
        }
        .to_string()
        .contains("20%"));
    }
}
