//! Live lookup traffic over the bootstrapping overlay.
//!
//! The paper's argument is that the bootstrapped tables are *useful*: once the
//! service has built everyone's leaf set and prefix table, a routing substrate
//! can serve key lookups over them. `bss_overlay::LookupEvaluator` proves that
//! for a frozen post-run snapshot; this module proves it *during* the run.
//! [`LookupTraffic`] drives an open-loop workload — a configured number of
//! lookups per cycle, keys drawn uniformly or Zipf-skewed — and resolves every
//! lookup iteratively against nodes' **current** tables through
//! [`BootstrapProtocol::unpack_node_into`], so routing quality degrades when a
//! churn burst or an id-spray attack corrupts the tables and recovers as the
//! protocol repairs them.
//!
//! Per measured cycle the driver folds its window counters into six series on
//! the [`RunReport`](crate::experiment::RunReport): lookup success rate, hop
//! mean and max, and latency percentiles p50/p95/p99 computed by charging each
//! hop through the run's link model
//! ([`ExperimentConfig::link_model`](crate::experiment::ExperimentConfig)).
//! Under a [`LatencyModel::Wan`] link model the driver additionally keeps one
//! window per placement region (keyed by the *client*'s region), charges each
//! delivered lookup along its actual hop path at the pure per-link WAN
//! latency, and replays the scenario's regional outages at the service level:
//! a lookup issued from — or targeting — an outaged region fails before
//! routing starts. Everything is capability-gated on
//! [`Scenario::has_traffic`](crate::scenario::Scenario): runs without a
//! traffic phase build no driver, draw no random numbers and emit no traffic
//! series, so their reports stay byte-identical.
//!
//! Determinism: the driver owns a private [`SimRng`] stream seeded from
//! `config.seed ^ TRAFFIC_SALT`, never touching the engine or protocol
//! streams. Lookups run in the sequential observer phase of every engine, so
//! the parallel cycle engine stays bit-for-bit identical at any thread count.

use crate::experiment::ExperimentConfig;
use crate::node::BootstrapNode;
use crate::protocol::BootstrapProtocol;
use crate::routing::{route, Contact, RouterKind, TableSource, DEFAULT_MAX_HOPS};
use crate::scenario::{KeyDist, LatencyModel, Phase};
use bss_sampling::sampler::PeerSampler;
use bss_sim::engine::cycle::EngineContext;
use bss_sim::link::WanLink;
use bss_sim::network::{Network, NodeIndex};
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use bss_util::stats::{Series, StreamingHistogram};

/// XOR-folded into the experiment seed for the traffic RNG stream, so lookup
/// draws never perturb the protocol or engine streams (ASCII "traffic!").
/// Public so parity tests can replay the exact lookup sequence a run issued.
pub const TRAFFIC_SALT: u64 = 0x7472_6166_6669_6321;

/// A [`TableSource`] over the live packed population: contacts resolve by
/// registry address and must answer to the identifier the descriptor
/// advertised — a node that is dead, uninitialised, or holds a different
/// identifier (a forged id-spray descriptor) fails the hop.
struct LiveTables<'a, S: PeerSampler> {
    protocol: &'a BootstrapProtocol<S>,
    network: &'a Network,
    scratch: &'a mut BootstrapNode<NodeIndex>,
}

impl<S: PeerSampler> TableSource for LiveTables<'_, S> {
    fn with_node<R>(
        &mut self,
        contact: Contact,
        f: impl FnOnce(&BootstrapNode<NodeIndex>) -> R,
    ) -> Option<R> {
        if !self.network.is_alive(contact.address)
            || !self
                .protocol
                .unpack_node_into(contact.address, self.scratch)
            || self.scratch.id() != contact.id
        {
            return None;
        }
        Some(f(self.scratch))
    }
}

/// Counters accumulated over one measurement window (and, separately, over the
/// whole run).
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    issued: u64,
    delivered: u64,
    hops_sum: u64,
    hops_max: u64,
}

impl Counters {
    fn absorb(&mut self, delivered: bool, hops: u64) {
        self.issued += 1;
        if delivered {
            self.delivered += 1;
            self.hops_sum += hops;
            self.hops_max = self.hops_max.max(hops);
        }
    }

    fn success_rate(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.delivered as f64 / self.issued as f64
        }
    }

    fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered as f64
        }
    }
}

/// Per-region window state of a WAN traffic run: counters and latency
/// histogram over the lookups *issued by* clients of one placement region,
/// flushed into per-region series on measured cycles.
#[derive(Debug)]
struct RegionWindow {
    window: Counters,
    latency: StreamingHistogram,
    success_series: Series,
    p50_series: Series,
    p99_series: Series,
}

/// WAN-only traffic state: a pure link model over the run's shared placement
/// (for path-distance charging), the scenario's regional windows replayed at
/// the service level, and one [`RegionWindow`] per placement region.
#[derive(Debug)]
struct WanTraffic {
    link: WanLink,
    outages: Vec<(Phase, u32, f64)>,
    slowdowns: Vec<(Phase, Option<u32>, f64)>,
    regions: Vec<RegionWindow>,
}

impl WanTraffic {
    /// Builds the WAN state when `latency` is a WAN model; `None` otherwise.
    fn for_config(
        config: &ExperimentConfig,
        latency: &LatencyModel,
        bucket_width: u64,
    ) -> Option<Self> {
        let LatencyModel::Wan { params, .. } = *latency else {
            return None;
        };
        let placement = config
            .placement()
            .expect("a wan latency model always builds a placement");
        let regions = (0..placement.region_count())
            .map(|region| RegionWindow {
                window: Counters::default(),
                latency: StreamingHistogram::with_buckets(bucket_width, DEFAULT_MAX_HOPS + 2),
                success_series: Series::new(format!("lookup_success_r{region}")),
                p50_series: Series::new(format!("lookup_latency_p50_r{region}")),
                p99_series: Series::new(format!("lookup_latency_p99_r{region}")),
            })
            .collect();
        Some(WanTraffic {
            link: WanLink::new(placement, params, config.seed),
            outages: config.scenario.regional_outages().collect(),
            slowdowns: config.scenario.slow_link_windows().collect(),
            regions,
        })
    }

    /// Placement region of a node's registry address.
    fn region_of(&self, node: NodeIndex) -> u32 {
        self.link.placement().region(node.as_usize())
    }

    /// Service-level outage gate: one loss coin per active outage window
    /// touching the client's or the target's region, mirroring what
    /// [`LinkTransport`](bss_sim::link::LinkTransport) does per message.
    fn outage_drops(&self, cycle: u64, src: u32, tgt: u32, rng: &mut SimRng) -> bool {
        for &(phase, region, loss) in &self.outages {
            if phase.contains(cycle)
                && loss > 0.0
                && (src == region || tgt == region)
                && rng.chance(loss)
            {
                return true;
            }
        }
        false
    }

    /// Total latency of one delivered lookup along `path`: each consecutive
    /// hop charged at the pure per-link WAN latency, scaled by every active
    /// slow-link window matching that hop. Draws nothing.
    fn charge_path(&self, cycle: u64, path: &[Contact]) -> u64 {
        let mut total = 0u64;
        for pair in path.windows(2) {
            let (from, to) = (pair[0].address, pair[1].address);
            let base = self.link.link_latency(from, to);
            let mut factor = 1.0f64;
            for &(phase, region, window_factor) in &self.slowdowns {
                if phase.contains(cycle) {
                    let matches = match region {
                        None => true,
                        Some(r) => self.region_of(from) == r || self.region_of(to) == r,
                    };
                    if matches {
                        factor *= window_factor;
                    }
                }
            }
            total += if factor == 1.0 {
                base
            } else {
                ((base as f64) * factor).round() as u64
            }
            .max(1);
        }
        total
    }
}

/// The per-run lookup traffic driver. Built by the measurement layer only when
/// the scenario carries a [`TrafficPhase`](crate::scenario::ScenarioEvent);
/// every other run pays nothing.
#[derive(Debug)]
pub struct LookupTraffic {
    router: RouterKind,
    phases: Vec<(Phase, u32, KeyDist)>,
    latency: LatencyModel,
    rng: SimRng,
    scratch: BootstrapNode<NodeIndex>,
    path: Vec<Contact>,
    /// The alive population, rebuilt each active cycle in ascending registry
    /// order (so Zipf rank 0 is registry index 0 — the id-spray attack's
    /// default victim, letting skewed traffic compose with the attack).
    alive: Vec<Contact>,
    /// Cumulative Zipf weights over `alive` positions (empty under uniform
    /// keys).
    zipf_cumulative: Vec<f64>,
    window: Counters,
    totals: Counters,
    window_latency: StreamingHistogram,
    /// WAN-only state (placement, path charging, regional windows); `None`
    /// under the placement-free link models.
    wan: Option<WanTraffic>,
    success_series: Series,
    hop_mean_series: Series,
    hop_max_series: Series,
    p50_series: Series,
    p95_series: Series,
    p99_series: Series,
}

impl LookupTraffic {
    /// Builds the driver for `config`, or `None` when its scenario schedules
    /// no traffic phase — the capability gate that keeps every other run free
    /// of traffic costs.
    pub fn for_config(config: &ExperimentConfig) -> Option<Self> {
        if !config.scenario.has_traffic() {
            return None;
        }
        let latency = config.link_model();
        // One bucket per possible hop at the per-hop latency ceiling keeps the
        // window histogram exact for constant latency and allocation-free
        // either way; anything past the ceiling saturates into the last
        // bucket.
        let (_, max_millis) = latency.bounds();
        let bucket_width = max_millis.max(1);
        let placeholder = Descriptor::new(NodeId::new(0), NodeIndex::new(0), 0);
        let scratch =
            BootstrapNode::new(placeholder, &config.params).expect("config validated by builder");
        Some(LookupTraffic {
            router: config.traffic_router,
            phases: config.scenario.traffic_phases().collect(),
            wan: WanTraffic::for_config(config, &latency, bucket_width),
            latency,
            rng: SimRng::seed_from(config.seed ^ TRAFFIC_SALT),
            scratch,
            path: Vec::with_capacity(DEFAULT_MAX_HOPS + 1),
            alive: Vec::with_capacity(config.network_size),
            zipf_cumulative: Vec::new(),
            window: Counters::default(),
            totals: Counters::default(),
            window_latency: StreamingHistogram::with_buckets(bucket_width, DEFAULT_MAX_HOPS + 2),
            success_series: Series::new("lookup_success"),
            hop_mean_series: Series::new("lookup_hop_mean"),
            hop_max_series: Series::new("lookup_hop_max"),
            p50_series: Series::new("lookup_latency_p50"),
            p95_series: Series::new("lookup_latency_p95"),
            p99_series: Series::new("lookup_latency_p99"),
        })
    }

    /// The workload scheduled for `cycle`, if any.
    fn active(&self, cycle: u64) -> Option<(u32, KeyDist)> {
        self.phases
            .iter()
            .find(|(phase, _, _)| phase.contains(cycle))
            .map(|&(_, rate, dist)| (rate, dist))
    }

    /// Issues this cycle's lookups against the live tables. Runs every cycle a
    /// traffic phase is active (not just measured ones), so the totals really
    /// are the sustained workload.
    pub fn drive_cycle<S: PeerSampler>(
        &mut self,
        protocol: &BootstrapProtocol<S>,
        ctx: &EngineContext,
        cycle: u64,
    ) {
        let Some((rate, dist)) = self.active(cycle) else {
            return;
        };
        self.alive.clear();
        self.alive
            .extend(ctx.network.alive_indices().map(|node| Contact {
                id: ctx.network.id(node),
                address: node,
            }));
        if self.alive.is_empty() {
            return;
        }
        if let KeyDist::Zipf { exponent } = dist {
            self.zipf_cumulative.clear();
            let mut total = 0.0;
            for rank in 0..self.alive.len() {
                total += 1.0 / ((rank + 1) as f64).powf(exponent);
                self.zipf_cumulative.push(total);
            }
        }
        let LookupTraffic {
            router,
            latency,
            rng,
            scratch,
            path,
            alive,
            zipf_cumulative,
            window,
            totals,
            window_latency,
            wan,
            ..
        } = self;
        let mut tables = LiveTables {
            protocol,
            network: &ctx.network,
            scratch,
        };
        for _ in 0..rate {
            let source = alive[rng.index(alive.len())];
            let target = match dist {
                KeyDist::Uniform => alive[rng.index(alive.len())],
                KeyDist::Zipf { .. } => {
                    let total = *zipf_cumulative.last().expect("population is non-empty");
                    let draw = rng.unit_f64() * total;
                    let position = zipf_cumulative.partition_point(|&cum| cum < draw);
                    alive[position.min(alive.len() - 1)]
                }
            };
            // Service-level regional outages: a lookup issued from — or
            // targeting — an outaged region fails before routing starts, the
            // way a real client behind a dead uplink would time out.
            let src_region = wan.as_ref().map(|state| state.region_of(source.address));
            if let (Some(state), Some(src)) = (wan.as_ref(), src_region) {
                let tgt = state.region_of(target.address);
                if state.outage_drops(cycle, src, tgt, rng) {
                    window.absorb(false, 0);
                    totals.absorb(false, 0);
                    wan.as_mut().expect("checked above").regions[src as usize]
                        .window
                        .absorb(false, 0);
                    continue;
                }
            }
            let routed = route(
                &mut tables,
                *router,
                source,
                target.id,
                DEFAULT_MAX_HOPS,
                path,
            );
            window.absorb(routed.delivered(), routed.hops);
            totals.absorb(routed.delivered(), routed.hops);
            let millis = if routed.delivered() {
                Some(match wan.as_ref() {
                    Some(state) => state.charge_path(cycle, path),
                    None => charge(latency, rng, routed.hops),
                })
            } else {
                None
            };
            if let Some(millis) = millis {
                window_latency.record(millis);
            }
            if let (Some(state), Some(src)) = (wan.as_mut(), src_region) {
                let bucket = &mut state.regions[src as usize];
                bucket.window.absorb(routed.delivered(), routed.hops);
                if let Some(millis) = millis {
                    bucket.latency.record(millis);
                }
            }
        }
    }

    /// Folds the current window into the per-cycle series (measured cycles
    /// only). Windows in which no lookup was issued push nothing, so calm
    /// stretches outside the traffic phase leave no points.
    pub fn flush_window(&mut self, cycle: u64) {
        if let Some(state) = self.wan.as_mut() {
            for bucket in &mut state.regions {
                if bucket.window.issued == 0 {
                    continue;
                }
                bucket
                    .success_series
                    .push(cycle, bucket.window.success_rate());
                bucket
                    .p50_series
                    .push(cycle, bucket.latency.percentile(0.50));
                bucket
                    .p99_series
                    .push(cycle, bucket.latency.percentile(0.99));
                bucket.window = Counters::default();
                bucket.latency.reset();
            }
        }
        if self.window.issued == 0 {
            return;
        }
        self.success_series.push(cycle, self.window.success_rate());
        self.hop_mean_series.push(cycle, self.window.mean_hops());
        self.hop_max_series.push(cycle, self.window.hops_max as f64);
        self.p50_series
            .push(cycle, self.window_latency.percentile(0.50));
        self.p95_series
            .push(cycle, self.window_latency.percentile(0.95));
        self.p99_series
            .push(cycle, self.window_latency.percentile(0.99));
        self.window = Counters::default();
        self.window_latency.reset();
    }

    /// Freezes the driver into the report-side summary.
    pub fn into_report(self) -> LookupTrafficReport {
        let (region_success_series, region_p50_series, region_p99_series) = match self.wan {
            Some(state) => {
                let mut success = Vec::with_capacity(state.regions.len());
                let mut p50 = Vec::with_capacity(state.regions.len());
                let mut p99 = Vec::with_capacity(state.regions.len());
                for bucket in state.regions {
                    success.push(bucket.success_series);
                    p50.push(bucket.p50_series);
                    p99.push(bucket.p99_series);
                }
                (success, p50, p99)
            }
            None => (Vec::new(), Vec::new(), Vec::new()),
        };
        LookupTrafficReport {
            router: self.router,
            issued: self.totals.issued,
            delivered: self.totals.delivered,
            hops_sum: self.totals.hops_sum,
            hops_max: self.totals.hops_max,
            success_series: self.success_series,
            hop_mean_series: self.hop_mean_series,
            hop_max_series: self.hop_max_series,
            p50_series: self.p50_series,
            p95_series: self.p95_series,
            p99_series: self.p99_series,
            region_success_series,
            region_p50_series,
            region_p99_series,
        }
    }
}

/// Total latency of one delivered lookup under the placement-free models:
/// each hop charged through the run's [`LatencyModel`]. A constant model
/// draws no randomness (hops × millis); a uniform model draws one latency per
/// hop from the traffic stream. WAN runs never reach this — they charge along
/// the actual hop path (see [`WanTraffic::charge_path`]).
fn charge(latency: &LatencyModel, rng: &mut SimRng, hops: u64) -> u64 {
    match *latency {
        LatencyModel::Constant { millis } => hops * millis,
        LatencyModel::Uniform {
            min_millis,
            max_millis,
        } => {
            if min_millis == max_millis {
                hops * min_millis
            } else {
                (0..hops)
                    .map(|_| rng.range_u64(min_millis, max_millis + 1))
                    .sum()
            }
        }
        LatencyModel::Wan { .. } => {
            unreachable!("wan lookups charge by path distance, not per-hop draws")
        }
    }
}

/// The traffic summary a [`RunReport`](crate::experiment::RunReport) carries
/// for runs that scheduled a traffic phase: run totals plus the six
/// per-measured-cycle series.
#[derive(Debug, Clone)]
pub struct LookupTrafficReport {
    router: RouterKind,
    issued: u64,
    delivered: u64,
    hops_sum: u64,
    hops_max: u64,
    success_series: Series,
    hop_mean_series: Series,
    hop_max_series: Series,
    p50_series: Series,
    p95_series: Series,
    p99_series: Series,
    region_success_series: Vec<Series>,
    region_p50_series: Vec<Series>,
    region_p99_series: Vec<Series>,
}

impl LookupTrafficReport {
    /// The router kind that resolved the lookups.
    pub fn router(&self) -> RouterKind {
        self.router
    }

    /// Total lookups issued over the run.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Total lookups that reached the node owning the target identifier.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Delivered over issued (1.0 when no lookup was issued).
    pub fn success_rate(&self) -> f64 {
        if self.issued == 0 {
            1.0
        } else {
            self.delivered as f64 / self.issued as f64
        }
    }

    /// Mean hops over delivered lookups (0 when none were delivered).
    pub fn mean_hops(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.delivered as f64
        }
    }

    /// The longest delivered lookup, in hops.
    pub fn max_hops(&self) -> u64 {
        self.hops_max
    }

    /// Per measured cycle, delivered / issued within the window.
    pub fn success_series(&self) -> &Series {
        &self.success_series
    }

    /// Per measured cycle, mean hops over the window's delivered lookups.
    pub fn hop_mean_series(&self) -> &Series {
        &self.hop_mean_series
    }

    /// Per measured cycle, the window's longest delivered lookup in hops.
    pub fn hop_max_series(&self) -> &Series {
        &self.hop_max_series
    }

    /// Per measured cycle, the median delivered-lookup latency in
    /// milliseconds.
    pub fn latency_p50_series(&self) -> &Series {
        &self.p50_series
    }

    /// Per measured cycle, the 95th-percentile delivered-lookup latency in
    /// milliseconds.
    pub fn latency_p95_series(&self) -> &Series {
        &self.p95_series
    }

    /// Per measured cycle, the 99th-percentile delivered-lookup latency in
    /// milliseconds.
    pub fn latency_p99_series(&self) -> &Series {
        &self.p99_series
    }

    /// Per placement region, the window success rate of lookups issued by
    /// that region's clients. Empty under the placement-free link models;
    /// with a WAN model, position `r` is region `r`.
    pub fn region_success_series(&self) -> &[Series] {
        &self.region_success_series
    }

    /// Per placement region, the median delivered-lookup latency of that
    /// region's clients (empty without a WAN link model).
    pub fn region_p50_series(&self) -> &[Series] {
        &self.region_p50_series
    }

    /// Per placement region, the 99th-percentile delivered-lookup latency of
    /// that region's clients (empty without a WAN link model).
    pub fn region_p99_series(&self) -> &[Series] {
        &self.region_p99_series
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioEvent};

    fn traffic_config(dist: KeyDist) -> ExperimentConfig {
        ExperimentConfig::builder()
            .network_size(64)
            .seed(11)
            .max_cycles(40)
            .scenario(Scenario::calm().with(ScenarioEvent::TrafficPhase {
                phase: Phase::new(20, 30),
                lookups_per_cycle: 50,
                key_dist: dist,
            }))
            .build()
            .unwrap()
    }

    #[test]
    fn the_capability_gate_builds_no_driver_for_calm_runs() {
        let calm = ExperimentConfig::builder().build().unwrap();
        assert!(LookupTraffic::for_config(&calm).is_none());
        assert!(LookupTraffic::for_config(&traffic_config(KeyDist::Uniform)).is_some());
    }

    #[test]
    fn constant_latency_charges_hops_times_millis_without_randomness() {
        let mut rng = SimRng::seed_from(1);
        let before = rng.clone();
        assert_eq!(
            charge(&LatencyModel::Constant { millis: 7 }, &mut rng, 3),
            21
        );
        assert_eq!(rng, before, "constant latency must not advance the stream");
        let total = charge(
            &LatencyModel::Uniform {
                min_millis: 10,
                max_millis: 20,
            },
            &mut rng,
            4,
        );
        assert!((40..=80).contains(&total), "{total}");
        assert_ne!(rng, before, "uniform latency draws per hop");
    }

    #[test]
    fn zipf_draws_favour_the_first_alive_position() {
        let config = traffic_config(KeyDist::Zipf { exponent: 1.2 });
        let mut traffic = LookupTraffic::for_config(&config).unwrap();
        // Build the cumulative table the way drive_cycle does and sample it.
        let population = 64usize;
        let mut total = 0.0;
        for rank in 0..population {
            total += 1.0 / ((rank + 1) as f64).powf(1.2);
            traffic.zipf_cumulative.push(total);
        }
        let mut hits = vec![0u64; population];
        for _ in 0..20_000 {
            let draw = traffic.rng.unit_f64() * total;
            let position = traffic.zipf_cumulative.partition_point(|&cum| cum < draw);
            hits[position.min(population - 1)] += 1;
        }
        assert!(
            hits[0] > hits[population / 2] * 10,
            "rank 0 ({}) should dwarf rank {} ({})",
            hits[0],
            population / 2,
            hits[population / 2]
        );
        assert!(hits.iter().all(|&h| h < 20_000), "not degenerate");
    }

    #[test]
    fn empty_windows_push_no_points() {
        let config = traffic_config(KeyDist::Uniform);
        let mut traffic = LookupTraffic::for_config(&config).unwrap();
        traffic.flush_window(3);
        assert!(traffic.success_series.is_empty());
        // A window with traffic pushes exactly one point per series.
        traffic.window.absorb(true, 2);
        traffic.window_latency.record(2);
        traffic.flush_window(21);
        assert_eq!(traffic.success_series.points(), &[(21, 1.0)]);
        assert_eq!(traffic.hop_mean_series.points(), &[(21, 2.0)]);
        assert_eq!(traffic.p50_series.points(), &[(21, 2.0)]);
        // ... and the flush resets the window.
        assert_eq!(traffic.window.issued, 0);
        assert_eq!(traffic.window_latency.count(), 0);
    }
}
