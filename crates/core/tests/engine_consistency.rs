//! Cycle-vs-event engine consistency: the bootstrap protocol's result must not
//! be an artifact of the synchronous cycle abstraction.
//!
//! The same scenario is run on the cycle engine and on the discrete-event
//! engine with zero latency jitter (a constant per-link latency). The two
//! traces are *not* byte-identical — the event engine interleaves exchanges by
//! wall-clock time and answers arrive after their requests — but both engines
//! must reach the same converged membership: perfect tables at every node, and
//! since perfect leaf sets are uniquely determined by the membership, the same
//! leaf-set content node for node.

use bss_core::experiment::{Experiment, ExperimentConfig};
use bss_core::scenario::{Engine, LatencyModel, Phase, Scenario, ScenarioEvent};

#[test]
fn both_engines_reach_the_same_converged_membership_at_512_nodes() {
    // Both engines route delivery through the same explicit `Uniform` link
    // model: the cycle engine never consults per-link latency (so its trace
    // is the legacy one), while the event engine draws every delivery from
    // it — membership agreement must survive the spread.
    let mut builder = ExperimentConfig::builder();
    builder
        .network_size(512)
        .seed(42)
        .max_cycles(80)
        .link_model(LatencyModel::Uniform {
            min_millis: 1,
            max_millis: 9,
        });
    let cycle_config = builder.engine(Engine::Cycle).build().unwrap();
    let event_config = builder
        .engine(Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        })
        .build()
        .unwrap();

    let (cycle_report, cycle_population) = Experiment::new(cycle_config).run_with_snapshot();
    let (event_report, event_population) = Experiment::new(event_config).run_with_snapshot();

    assert!(cycle_report.converged(), "cycle engine: {cycle_report}");
    assert!(event_report.converged(), "event engine: {event_report}");
    assert!(cycle_report.final_state().is_perfect());
    assert!(event_report.final_state().is_perfect());

    // Same membership: the seed fixes the identifier population, and neither
    // engine lost or added nodes in a calm scenario.
    let mut cycle_ids: Vec<u64> = cycle_population.ids().map(|id| id.raw()).collect();
    let mut event_ids: Vec<u64> = event_population.ids().map(|id| id.raw()).collect();
    cycle_ids.sort_unstable();
    event_ids.sort_unstable();
    assert_eq!(cycle_ids.len(), 512);
    assert_eq!(cycle_ids, event_ids);

    // Perfect leaf sets are uniquely determined by the membership, so the two
    // engines must agree on every node's leaf-set content (timestamps and
    // traces differ; the converged structure does not).
    for id in cycle_population.ids() {
        let from_cycle = cycle_population.node_by_id(id).unwrap();
        let from_event = event_population.node_by_id(id).unwrap();
        let mut leaf_cycle: Vec<u64> = from_cycle.leaf_set().iter().map(|d| d.id().raw()).collect();
        let mut leaf_event: Vec<u64> = from_event.leaf_set().iter().map(|d| d.id().raw()).collect();
        leaf_cycle.sort_unstable();
        leaf_event.sort_unstable();
        assert_eq!(leaf_cycle, leaf_event, "leaf sets diverged at node {id}");
    }

    // Both engines really exchanged traffic with the unified accounting.
    assert!(cycle_report.traffic().requests_sent > 0);
    assert!(event_report.traffic().requests_sent > 0);
    assert!(event_report.traffic().answers_delivered > 0);
}

#[test]
fn event_engine_converges_under_latency_jitter_and_loss() {
    // Latency jitter wider than the cycle period plus 20% loss: replies now
    // arrive whole cycles after their requests, which is exactly the regime
    // the synchronous engine cannot express. The protocol must still converge.
    let config = ExperimentConfig::builder()
        .network_size(256)
        .seed(7)
        .max_cycles(120)
        .scenario(Scenario::uniform_loss(0.2))
        .engine(Engine::Event {
            latency: LatencyModel::Uniform {
                min_millis: 10,
                max_millis: 1500,
            },
        })
        .build()
        .unwrap();
    let report = Experiment::new(config).run();
    assert!(report.converged(), "{report}");
    assert!(
        report.traffic().answers_delivered < report.traffic().answers_sent,
        "loss must be visible in the unified traffic accounting"
    );
}

#[test]
fn cycle_zero_joiners_start_exactly_once() {
    // Regression: membership events effective at cycle 0 (here a flash crowd;
    // the legacy whole-run churn_rate sugar hits the same path) start their
    // joiners via start_node before the engine's own deferred start phase
    // runs. A double start would give those nodes two self-rescheduling
    // exchange-timer chains — observable as roughly twice as many initiated
    // exchanges as executed cycles.
    let cycles = 20;
    let config = ExperimentConfig::builder()
        .network_size(64)
        .seed(5)
        .max_cycles(cycles)
        .stop_when_perfect(false)
        .event(ScenarioEvent::MassiveJoin {
            at_cycle: 0,
            count: 32,
        })
        .engine(Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        })
        .build()
        .unwrap();
    let (report, population) = Experiment::new(config).run_with_snapshot();
    assert_eq!(report.cycles_executed(), cycles);
    assert_eq!(population.len(), 96);
    for position in 0..population.len() {
        let node = population.node_at(position).unwrap();
        assert!(
            node.exchanges_initiated() <= cycles + 1,
            "node {} initiated {} exchanges in {} cycles: started twice?",
            node.id(),
            node.exchanges_initiated(),
            cycles
        );
    }
}

#[test]
fn event_engine_runs_scenario_timelines() {
    // A full timeline — loss window, partition that merges, flash crowd —
    // executed event-driven. The run must survive every transition and
    // converge after the last one.
    let config = ExperimentConfig::builder()
        .network_size(128)
        .seed(11)
        .max_cycles(120)
        .event(ScenarioEvent::LossWindow {
            phase: Phase::new(0, 10),
            probability: 0.3,
        })
        .event(ScenarioEvent::Partition {
            phase: Phase::new(0, 15),
            groups: bss_core::scenario::PartitionSpec::IndexParity,
        })
        .event(ScenarioEvent::MassiveJoin {
            at_cycle: 20,
            count: 64,
        })
        .engine(Engine::Event {
            latency: LatencyModel::Constant { millis: 5 },
        })
        .build()
        .unwrap();
    let (report, population) = Experiment::new(config).run_with_snapshot();
    assert!(report.converged(), "{report}");
    assert!(report.convergence_cycle().unwrap() >= 20, "after the join");
    assert_eq!(population.len(), 192, "the flash crowd joined event-driven");
    assert_eq!(report.events_fired().len(), 3);
}
