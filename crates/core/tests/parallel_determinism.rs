//! The deterministic parallel engine must be bit-for-bit equivalent to the
//! sequential engine at every thread count, for every scenario: samplers,
//! message loss, churn, perfection-stop on and off.
//!
//! `threads = 1` runs the plain sequential engine; `threads >= 2` runs the
//! wave-scheduled parallel engine, so comparing the two exercises the whole
//! plan → execute → commit machinery on every run.

use bss_core::experiment::{Experiment, ExperimentConfig, PopulationSnapshot, SamplerChoice};
use bss_core::scenario::{AdversaryBehavior, Engine, Phase, ScenarioEvent};
use bss_util::config::{BootstrapParams, NewscastParams};
use proptest::prelude::*;

/// Everything observable about a finished run, in comparable form.
#[derive(Debug, PartialEq)]
struct RunTrace {
    leaf_series: Vec<(u64, f64)>,
    prefix_series: Vec<(u64, f64)>,
    poisoned_series: Vec<(u64, f64)>,
    eclipse_series: Vec<(u64, f64)>,
    time_to_eclipse: Option<u64>,
    convergence_cycle: Option<u64>,
    cycles_executed: u64,
    requests_sent: u64,
    requests_delivered: u64,
    answers_sent: u64,
    answers_delivered: u64,
    max_message_size: u64,
    mean_message_size: f64,
    nodes: Vec<NodeDigest>,
}

#[derive(Debug, PartialEq)]
struct NodeDigest {
    id: u64,
    leaf: Vec<(u64, u64)>,
    prefix: Vec<(u64, u64)>,
    exchanges_initiated: u64,
    descriptors_received: u64,
}

fn run(config: &ExperimentConfig, threads: usize) -> RunTrace {
    run_with(config, threads, false).0
}

fn run_with(
    config: &ExperimentConfig,
    threads: usize,
    profile: bool,
) -> (RunTrace, Option<bss_sim::PhaseProfile>) {
    let mut config = config.clone();
    config.engine = Engine::with_threads(threads);
    config.profile = profile;
    let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
    let phase_profile = outcome.phase_profile().copied();
    let trace = RunTrace {
        leaf_series: outcome.leaf_series().points().to_vec(),
        prefix_series: outcome.prefix_series().points().to_vec(),
        poisoned_series: outcome.poisoned_series().points().to_vec(),
        eclipse_series: outcome.eclipse_series().points().to_vec(),
        time_to_eclipse: outcome.time_to_eclipse(),
        convergence_cycle: outcome.convergence_cycle(),
        cycles_executed: outcome.cycles_executed(),
        requests_sent: outcome.traffic().requests_sent,
        requests_delivered: outcome.traffic().requests_delivered,
        answers_sent: outcome.traffic().answers_sent,
        answers_delivered: outcome.traffic().answers_delivered,
        max_message_size: outcome.traffic().max_message_size(),
        mean_message_size: outcome.traffic().mean_message_size(),
        nodes: digest_nodes(&snapshot),
    };
    (trace, phase_profile)
}

fn digest_nodes(snapshot: &PopulationSnapshot) -> Vec<NodeDigest> {
    (0..snapshot.len())
        .map(|i| {
            let node = snapshot.node_at(i).unwrap();
            NodeDigest {
                id: node.id().raw(),
                leaf: node
                    .leaf_set()
                    .iter()
                    .map(|d| (d.id().raw(), d.timestamp()))
                    .collect(),
                prefix: node
                    .prefix_table()
                    .iter()
                    .map(|d| (d.id().raw(), d.timestamp()))
                    .collect(),
                exchanges_initiated: node.exchanges_initiated(),
                descriptors_received: node.descriptors_received(),
            }
        })
        .collect()
}

fn assert_thread_invariant(config: ExperimentConfig) {
    let sequential = run(&config, 1);
    for threads in [2usize, 8] {
        let parallel = run(&config, threads);
        assert_eq!(
            sequential, parallel,
            "trace diverged at {threads} threads for {config:?}"
        );
    }
}

#[test]
fn oracle_run_is_thread_count_invariant() {
    let config = ExperimentConfig::builder()
        .network_size(300)
        .seed(11)
        .max_cycles(40)
        .build()
        .unwrap();
    assert_thread_invariant(config);
}

#[test]
fn lossy_run_is_thread_count_invariant() {
    let config = ExperimentConfig::builder()
        .network_size(250)
        .seed(12)
        .drop_probability(0.2)
        .max_cycles(60)
        .build()
        .unwrap();
    assert_thread_invariant(config);
}

#[test]
fn churned_newscast_run_is_thread_count_invariant() {
    // The hardest setting: a stateful sampler gossiping under the protocol
    // (sampler steps consume RNG and mutate views during planning) plus
    // membership churn at every cycle boundary.
    let config = ExperimentConfig::builder()
        .network_size(200)
        .seed(13)
        .sampler(SamplerChoice::Newscast(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            ..NewscastParams::paper_default()
        }))
        .churn_rate(0.02)
        .drop_probability(0.1)
        .max_cycles(25)
        .stop_when_perfect(false)
        .build()
        .unwrap();
    assert_thread_invariant(config);
}

#[test]
fn profiling_does_not_perturb_the_simulation() {
    // The per-phase profiler is observational: with it enabled — on the
    // sequential engine and on the worker pool — the simulation trace must
    // stay bit-identical to the unprofiled sequential run, and the profile
    // itself must cover every executed cycle.
    let config = ExperimentConfig::builder()
        .network_size(200)
        .seed(21)
        .drop_probability(0.1)
        .max_cycles(30)
        .build()
        .unwrap();
    let baseline = run(&config, 1);
    for threads in [1usize, 2, 8] {
        let (profiled, profile) = run_with(&config, threads, true);
        assert_eq!(
            baseline, profiled,
            "profiling changed the trace at {threads} threads"
        );
        let profile = profile.expect("profile requested but absent at {threads} threads");
        assert_eq!(profile.cycles, profiled.cycles_executed);
        assert!(
            profile.total() > std::time::Duration::ZERO,
            "profile accumulated no time at {threads} threads"
        );
    }
    // Unprofiled runs must not grow a profile.
    let (_, no_profile) = run_with(&config, 2, false);
    assert!(no_profile.is_none());
}

#[test]
fn adversarial_runs_are_thread_count_invariant() {
    // Every adversarial behaviour, with the countermeasures both off and on:
    // the attack mutations happen in the deterministic plan pass (honest RNG
    // draws first, overrides after), so the parallel engine must replay them
    // bit-identically at any thread count — including the attack metrics.
    let behaviors = [
        AdversaryBehavior::ForgeDescriptors,
        AdversaryBehavior::IdSpray { target: 3 },
        AdversaryBehavior::HubAttack,
    ];
    for behavior in behaviors {
        for defended in [false, true] {
            let config = ExperimentConfig::builder()
                .network_size(128)
                .seed(17)
                .max_cycles(20)
                .stop_when_perfect(false)
                .params(BootstrapParams {
                    descriptor_verifier: defended.then_some(0xb0b),
                    ..BootstrapParams::paper_default()
                })
                .sampler(SamplerChoice::Newscast(NewscastParams {
                    view_size: 15,
                    period_millis: 1000,
                    view_diversity_quota: defended.then_some(2),
                    ..NewscastParams::paper_default()
                }))
                .event(ScenarioEvent::ByzantineConvert {
                    phase: Phase::new(3, 18),
                    fraction: 0.15,
                    behavior,
                })
                .build()
                .unwrap();
            assert_thread_invariant(config);
        }
    }
}

#[test]
fn traffic_series_are_thread_count_invariant() {
    // The lookup-traffic driver rides in the sequential observer phase with
    // its own salted RNG stream, so a run serving traffic — including through
    // churn, where the alive list shifts under the lookups — must produce a
    // byte-identical RunReport JSON at every thread count. Only the engine
    // label and the threads tag themselves may differ.
    use bss_core::scenario::KeyDist;
    let config = ExperimentConfig::builder()
        .network_size(256)
        .seed(23)
        .max_cycles(30)
        .stop_when_perfect(false)
        .churn_rate(0.02)
        .descriptor_max_age(Some(8))
        .event(ScenarioEvent::TrafficPhase {
            phase: Phase::new(0, 30),
            lookups_per_cycle: 50,
            key_dist: KeyDist::Zipf { exponent: 1.1 },
        })
        .build()
        .unwrap();
    let normalized_json = |threads: usize| {
        let mut config = config.clone();
        config.engine = Engine::with_threads(threads);
        Experiment::new(config)
            .run()
            .to_json()
            .lines()
            .filter(|line| {
                !line.trim_start().starts_with("\"engine\":")
                    && !line.trim_start().starts_with("\"threads\":")
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let sequential = normalized_json(1);
    assert!(
        sequential.contains("\"lookup_traffic\""),
        "traffic summary missing from the report"
    );
    assert!(sequential.contains("\"lookup_success_series\""));
    for threads in [2usize, 8] {
        assert_eq!(
            sequential,
            normalized_json(threads),
            "traffic JSON diverged at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary small scenarios: the parallel engine at 2 and 8 threads
    /// produces snapshots identical to the sequential engine.
    #[test]
    fn parallel_engine_matches_sequential_on_arbitrary_scenarios(
        size in 50usize..200,
        seed in any::<u64>(),
        drop_permille in 0u32..300,
        churn_permille in 0u32..30,
        newscast in any::<bool>(),
        cycles in 5u64..20,
    ) {
        let mut builder = ExperimentConfig::builder();
        builder
            .network_size(size)
            .seed(seed)
            .drop_probability(f64::from(drop_permille) / 1000.0)
            .churn_rate(f64::from(churn_permille) / 1000.0)
            .max_cycles(cycles)
            .stop_when_perfect(false);
        if newscast {
            builder.sampler(SamplerChoice::Newscast(NewscastParams {
                view_size: 15,
                period_millis: 1000,
                ..NewscastParams::paper_default()
            }));
        }
        let config = builder.build().unwrap();
        let sequential = run(&config, 1);
        for threads in [2usize, 8] {
            prop_assert_eq!(&sequential, &run(&config, threads), "threads {}", threads);
        }
    }
}
