//! Live-vs-snapshot routing parity.
//!
//! The live traffic driver routes lookups against nodes' *current* tables
//! mid-run; `bss_overlay`'s evaluator routes against a frozen post-run
//! snapshot. Both walk the shared step in `bss_core::routing`, so on a calm
//! converged overlay — where the tables the lookups saw are exactly the tables
//! the final snapshot froze — replaying the run's lookup stream over the
//! snapshot must reproduce the live hop counts *exactly*, window by window, on
//! the cycle engine and the event engine alike. A drift here means the two
//! routing paths diverged.

use bss_core::experiment::{Experiment, ExperimentConfig, PopulationSnapshot, RunReport};
use bss_core::routing::{route, Contact, RouteEnd, RouterKind, SnapshotTables, DEFAULT_MAX_HOPS};
use bss_core::scenario::{Engine, KeyDist, LatencyModel, Phase, Scenario, ScenarioEvent};
use bss_core::traffic::TRAFFIC_SALT;
use bss_util::rng::SimRng;
use proptest::prelude::*;
use std::sync::OnceLock;

const SIZE: usize = 512;
const SEED: u64 = 42;
const CYCLES: u64 = 40;
const TRAFFIC_START: u64 = 30;
const RATE: u32 = 100;

fn traffic_scenario() -> Scenario {
    Scenario::calm().with(ScenarioEvent::TrafficPhase {
        phase: Phase::new(TRAFFIC_START, CYCLES),
        lookups_per_cycle: RATE,
        key_dist: KeyDist::Uniform,
    })
}

fn run(engine: Engine, router: RouterKind) -> (RunReport, PopulationSnapshot) {
    let config = ExperimentConfig::builder()
        .network_size(SIZE)
        .seed(SEED)
        .max_cycles(CYCLES)
        .stop_when_perfect(false)
        .scenario(traffic_scenario())
        .traffic_router(router)
        .engine(engine)
        .build()
        .expect("valid parity configuration");
    Experiment::new(config).run_with_snapshot()
}

fn contact_at(population: &PopulationSnapshot, position: usize) -> Contact {
    let node = population.node_at(position).expect("position in range");
    Contact {
        id: node.id(),
        address: node.own_descriptor().address(),
    }
}

/// What the replay reconstructs: the run totals and the three per-window hop
/// series, computed with the same arithmetic as the live driver.
#[derive(Debug, PartialEq)]
struct Replay {
    issued: u64,
    delivered: u64,
    mean_hops: f64,
    max_hops: u64,
    success: Vec<(u64, f64)>,
    hop_mean: Vec<(u64, f64)>,
    hop_max: Vec<(u64, f64)>,
}

/// Replays the exact lookup stream a run issued — same salted RNG stream, same
/// draw order — over the frozen snapshot. On a calm run every node is alive
/// and initialised for the whole traffic phase, so snapshot position `i` is
/// the live driver's alive-list position `i` and the sequences coincide.
fn replay(snapshot: &PopulationSnapshot, router: RouterKind) -> Replay {
    assert_eq!(snapshot.len(), SIZE, "calm run keeps everyone alive");
    let mut rng = SimRng::seed_from(SEED ^ TRAFFIC_SALT);
    let mut tables = SnapshotTables(snapshot);
    let mut path = Vec::new();
    let (mut issued, mut delivered, mut hops_sum, mut max_hops) = (0u64, 0u64, 0u64, 0u64);
    let (mut success, mut hop_mean, mut hop_max) = (Vec::new(), Vec::new(), Vec::new());
    for cycle in TRAFFIC_START..CYCLES {
        let (mut w_delivered, mut w_hops_sum, mut w_hops_max) = (0u64, 0u64, 0u64);
        for _ in 0..RATE {
            let source = contact_at(snapshot, rng.index(SIZE));
            let target = snapshot
                .node_at(rng.index(SIZE))
                .expect("position in range")
                .id();
            let routed = route(
                &mut tables,
                router,
                source,
                target,
                DEFAULT_MAX_HOPS,
                &mut path,
            );
            issued += 1;
            if routed.delivered() {
                delivered += 1;
                hops_sum += routed.hops;
                max_hops = max_hops.max(routed.hops);
                w_delivered += 1;
                w_hops_sum += routed.hops;
                w_hops_max = w_hops_max.max(routed.hops);
            }
        }
        success.push((cycle, w_delivered as f64 / f64::from(RATE)));
        let window_mean = if w_delivered == 0 {
            0.0
        } else {
            w_hops_sum as f64 / w_delivered as f64
        };
        hop_mean.push((cycle, window_mean));
        hop_max.push((cycle, w_hops_max as f64));
    }
    Replay {
        issued,
        delivered,
        mean_hops: hops_sum as f64 / delivered as f64,
        max_hops,
        success,
        hop_mean,
        hop_max,
    }
}

fn assert_parity(engine: Engine, engine_name: &str) {
    for router in RouterKind::ALL {
        let (report, snapshot) = run(engine, router);
        assert!(
            report
                .convergence_cycle()
                .is_some_and(|c| c < TRAFFIC_START),
            "{engine_name}/{router}: overlay must converge before traffic starts"
        );
        let live = report.lookups().expect("traffic phase was scheduled");
        let replayed = replay(&snapshot, router);
        assert_eq!(live.issued(), replayed.issued, "{engine_name}/{router}");
        assert_eq!(
            live.delivered(),
            replayed.delivered,
            "{engine_name}/{router}"
        );
        assert_eq!(
            live.mean_hops(),
            replayed.mean_hops,
            "{engine_name}/{router}"
        );
        assert_eq!(live.max_hops(), replayed.max_hops, "{engine_name}/{router}");
        assert_eq!(
            live.success_series().points(),
            replayed.success.as_slice(),
            "{engine_name}/{router}"
        );
        assert_eq!(
            live.hop_mean_series().points(),
            replayed.hop_mean.as_slice(),
            "{engine_name}/{router}"
        );
        assert_eq!(
            live.hop_max_series().points(),
            replayed.hop_max.as_slice(),
            "{engine_name}/{router}"
        );
        // A calm converged overlay serves everything.
        assert_eq!(live.delivered(), live.issued(), "{engine_name}/{router}");
    }
}

#[test]
fn live_routing_matches_snapshot_routing_on_the_cycle_engine() {
    assert_parity(Engine::Cycle, "cycle");
}

#[test]
fn live_routing_matches_snapshot_routing_on_the_event_engine() {
    assert_parity(
        Engine::Event {
            latency: LatencyModel::Constant { millis: 1 },
        },
        "event",
    );
}

/// A converged honest snapshot, shared across proptest cases.
fn proptest_snapshot() -> &'static PopulationSnapshot {
    static SNAPSHOT: OnceLock<PopulationSnapshot> = OnceLock::new();
    SNAPSHOT.get_or_init(|| {
        let config = ExperimentConfig::builder()
            .network_size(128)
            .seed(7)
            .max_cycles(60)
            .build()
            .expect("valid proptest configuration");
        let (report, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(report.converged(), "proptest needs a converged overlay");
        snapshot
    })
}

proptest! {
    /// Greedy descent strictly improves its metric every hop, so an honest
    /// lookup can never visit the same node twice — for any source, target
    /// and router.
    #[test]
    fn a_lookup_never_visits_the_same_node_twice(
        source in 0usize..128,
        target in 0usize..128,
        router in prop::sample::select(RouterKind::ALL.to_vec()),
    ) {
        let snapshot = proptest_snapshot();
        let mut tables = SnapshotTables(snapshot);
        let mut path = Vec::new();
        let routed = route(
            &mut tables,
            router,
            contact_at(snapshot, source),
            snapshot.node_at(target).expect("position in range").id(),
            DEFAULT_MAX_HOPS,
            &mut path,
        );
        prop_assert!(routed.end != RouteEnd::Cycle, "{router}: honest tables cycled");
        prop_assert_eq!(routed.hops as usize, path.len() - 1);
        for (i, a) in path.iter().enumerate() {
            for b in &path[i + 1..] {
                prop_assert!(a.id != b.id, "{}: {} revisited", router, a.id);
            }
        }
    }
}
