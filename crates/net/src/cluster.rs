//! A supervised localhost cluster of UDP peers.
//!
//! [`Cluster::spawn`] binds `size` peers on loopback, gives each a random contact
//! list (standing in for the peer sampling service) and lets them bootstrap. The
//! convergence check reuses the simulator's
//! [`ConvergenceOracle`](bss_core::convergence::ConvergenceOracle), so "perfect"
//! means exactly what it means in the paper's figures.

use crate::node::{UdpPeer, UdpPeerConfig};
use bss_core::convergence::{ConvergenceOracle, NetworkConvergence};
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use std::io;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Configuration of a localhost cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of peers to spawn.
    pub size: usize,
    /// Bootstrapping-service parameters. The default shortens Δ to 50 ms so a
    /// laptop cluster converges in a couple of seconds.
    pub params: BootstrapParams,
    /// How many random contacts every peer receives at start-up.
    pub contacts_per_peer: usize,
    /// Seed for identifier assignment and contact-list sampling.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            size: 8,
            params: BootstrapParams {
                leaf_set_size: 6,
                random_samples: 8,
                cycle_millis: 50,
                ..BootstrapParams::paper_default()
            },
            contacts_per_peer: 4,
            seed: 1,
        }
    }
}

/// A running cluster of UDP peers.
#[derive(Debug)]
pub struct Cluster {
    peers: Vec<UdpPeer>,
    params: BootstrapParams,
}

impl Cluster {
    /// Spawns the cluster: binds every peer, then distributes contact lists.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while binding sockets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the parameters are invalid.
    pub fn spawn(config: ClusterConfig) -> io::Result<Self> {
        assert!(config.size > 0, "a cluster needs at least one peer");
        config.params.validate().expect("invalid parameters");
        let mut rng = SimRng::seed_from(config.seed);
        let ids: Vec<NodeId> = rng
            .distinct_u64(config.size)
            .into_iter()
            .map(NodeId::new)
            .collect();

        // Two-phase start: first bind every peer with an empty contact list in a
        // paused state is unnecessary — instead we spawn peers in order and give
        // each a contact list drawn from the peers already running plus, for the
        // earliest peers, from peers that will start momentarily. To keep it simple
        // and fully connected we spawn all peers first with no contacts, collect
        // their addresses, and then... peers cannot be reseeded after spawn, so we
        // instead pre-allocate ports by spawning in two waves: the first peer has no
        // contacts, every later peer gets contacts among the already-spawned ones.
        let mut peers: Vec<UdpPeer> = Vec::with_capacity(config.size);
        for (position, &id) in ids.iter().enumerate() {
            let contacts: Vec<Descriptor<SocketAddr>> = if peers.is_empty() {
                Vec::new()
            } else {
                let existing: Vec<Descriptor<SocketAddr>> =
                    peers.iter().map(UdpPeer::descriptor).collect();
                rng.sample(&existing, config.contacts_per_peer.min(existing.len()))
            };
            let peer = UdpPeer::spawn(UdpPeerConfig {
                id,
                params: config.params,
                contacts,
                seed: config.seed ^ (position as u64 + 1),
            })?;
            peers.push(peer);
        }
        Ok(Cluster {
            peers,
            params: config.params,
        })
    }

    /// Number of peers in the cluster.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether the cluster has no peers (never true for a spawned cluster).
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The peers.
    pub fn peers(&self) -> &[UdpPeer] {
        &self.peers
    }

    /// Measures the cluster against the convergence oracle right now.
    pub fn measure(&self) -> NetworkConvergence {
        let oracle = ConvergenceOracle::new(self.peers.iter().map(UdpPeer::id), &self.params);
        let mut aggregate = NetworkConvergence::default();
        for peer in &self.peers {
            let snapshot = peer.state_snapshot();
            aggregate.accumulate(oracle.measure_node(&snapshot));
        }
        aggregate
    }

    /// Polls the cluster until every peer has perfect tables or `timeout` expires.
    /// Returns whether convergence was reached.
    pub fn wait_for_convergence(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.measure().is_perfect() {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Stops every peer.
    pub fn shutdown(self) {
        for peer in self.peers {
            peer.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_cluster_bootstraps_over_real_sockets() {
        let cluster = match Cluster::spawn(ClusterConfig {
            size: 8,
            seed: 42,
            ..ClusterConfig::default()
        }) {
            Ok(cluster) => cluster,
            // Environments without loopback UDP (heavily sandboxed CI) cannot run
            // this test; binding failure is the only acceptable excuse.
            Err(error) => {
                eprintln!("skipping UDP cluster test: {error}");
                return;
            }
        };
        assert_eq!(cluster.len(), 8);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.peers().len(), 8);
        let converged = cluster.wait_for_convergence(Duration::from_secs(20));
        let state = cluster.measure();
        assert!(
            converged,
            "cluster did not converge over UDP: leaf missing {}, prefix missing {}",
            state.leaf_missing, state.prefix_missing
        );
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_sized_clusters_are_rejected() {
        let _ = Cluster::spawn(ClusterConfig {
            size: 0,
            ..ClusterConfig::default()
        });
    }
}
