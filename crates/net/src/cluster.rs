//! A supervised localhost cluster of UDP peers.
//!
//! [`Cluster::spawn`] brings up `size` peers on loopback in one of two
//! transport modes — a thread and socket per peer, or every peer multiplexed
//! over one batched poll loop ([`crate::driver::NetDriver`]) — gives each a
//! random contact list (seeding its sampling-gossip pool, from which the
//! sampling layer takes over) and lets them bootstrap. The convergence check reuses the simulator's
//! [`ConvergenceOracle`](bss_core::convergence::ConvergenceOracle), so
//! "perfect" means exactly what it means in the paper's figures, and
//! [`Cluster::monitor`] renders a whole run as a RunReport-shaped
//! [`NetReport`].

use crate::driver::{DriverConfig, NetDriver};
use crate::node::{BoundUdpPeer, PeerHandle, UdpPeer};
use crate::report::{NetReport, NetStats};
use bss_core::convergence::{ConvergenceOracle, NetworkConvergence};
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use std::collections::HashSet;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a cluster runs its peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClusterMode {
    /// One OS thread and blocking socket per peer — faithful to a real
    /// multi-process deployment, practical up to a few hundred peers.
    #[default]
    ThreadPerPeer,
    /// Every peer multiplexed over one batched poll loop — the way to run
    /// hundreds-to-thousands of in-process peers.
    Driver,
}

impl ClusterMode {
    /// Short machine-readable label (used in reports and bench output).
    pub fn label(&self) -> &'static str {
        match self {
            ClusterMode::ThreadPerPeer => "thread",
            ClusterMode::Driver => "driver",
        }
    }
}

/// Configuration of a localhost cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of peers to spawn.
    pub size: usize,
    /// Bootstrapping-service parameters. The default shortens Δ to 50 ms so a
    /// laptop cluster converges in a couple of seconds.
    pub params: BootstrapParams,
    /// How many random contacts every peer receives at start-up.
    pub contacts_per_peer: usize,
    /// Seed for identifier assignment and contact-list sampling.
    pub seed: u64,
    /// Transport mode.
    pub mode: ClusterMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            size: 8,
            params: BootstrapParams {
                leaf_set_size: 6,
                random_samples: 8,
                cycle_millis: 50,
                ..BootstrapParams::paper_default()
            },
            contacts_per_peer: 4,
            seed: 1,
            mode: ClusterMode::ThreadPerPeer,
        }
    }
}

/// What actually runs the peers, per mode.
#[derive(Debug)]
enum Runtime {
    /// Thread-per-peer: the peers own their threads; kept alive here.
    Threads(Vec<UdpPeer>),
    /// Single-loop driver on one supervisor-owned thread.
    Driver {
        running: Arc<AtomicBool>,
        thread: Option<JoinHandle<()>>,
    },
}

/// A running cluster of UDP peers.
#[derive(Debug)]
pub struct Cluster {
    handles: Vec<PeerHandle>,
    params: BootstrapParams,
    mode: ClusterMode,
    seed: u64,
    stats: Arc<NetStats>,
    started: Instant,
    runtime: Runtime,
}

impl Cluster {
    /// Spawns the cluster: binds every peer, then distributes contact lists.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while binding sockets.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the parameters are invalid.
    pub fn spawn(config: ClusterConfig) -> io::Result<Self> {
        assert!(config.size > 0, "a cluster needs at least one peer");
        config.params.validate().expect("invalid parameters");
        match config.mode {
            ClusterMode::ThreadPerPeer => Cluster::spawn_threads(config),
            ClusterMode::Driver => Cluster::spawn_driver(config),
        }
    }

    fn spawn_threads(config: ClusterConfig) -> io::Result<Self> {
        let mut rng = SimRng::seed_from(config.seed);
        let ids: Vec<NodeId> = rng
            .distinct_u64(config.size)
            .into_iter()
            .map(NodeId::new)
            .collect();

        // Two-phase start. Phase one: bind every peer's socket without starting
        // any protocol thread, so all addresses are known before any gossip
        // flows. Phase two: sample every peer's contact list from the *other*
        // peers' bound descriptors — the first-bound peer included, so nobody
        // starts passively isolated — then start all the protocol threads.
        let bound: Vec<BoundUdpPeer> = ids
            .iter()
            .enumerate()
            .map(|(position, &id)| {
                BoundUdpPeer::bind(id, config.params, config.seed ^ (position as u64 + 1))
            })
            .collect::<io::Result<_>>()?;
        let descriptors: Vec<Descriptor<SocketAddr>> =
            bound.iter().map(BoundUdpPeer::descriptor).collect();

        let stats = Arc::new(NetStats::new());
        let mut peers = Vec::with_capacity(config.size);
        for (position, peer) in bound.into_iter().enumerate() {
            let others: Vec<Descriptor<SocketAddr>> = descriptors
                .iter()
                .enumerate()
                .filter(|&(index, _)| index != position)
                .map(|(_, &descriptor)| descriptor)
                .collect();
            let contacts = rng.sample(&others, config.contacts_per_peer.min(others.len()));
            peers.push(peer.start(contacts, Arc::clone(&stats))?);
        }

        Ok(Cluster {
            handles: peers.iter().map(|peer| peer.handle().clone()).collect(),
            params: config.params,
            mode: ClusterMode::ThreadPerPeer,
            seed: config.seed,
            stats,
            started: Instant::now(),
            runtime: Runtime::Threads(peers),
        })
    }

    fn spawn_driver(config: ClusterConfig) -> io::Result<Self> {
        let driver = NetDriver::bind(DriverConfig {
            size: config.size,
            params: config.params,
            contacts_per_peer: config.contacts_per_peer,
            seed: config.seed,
        })?;
        let handles = driver.handles();
        let stats = driver.stats();
        let running = Arc::new(AtomicBool::new(true));
        let loop_flag = Arc::clone(&running);
        let thread = std::thread::Builder::new()
            .name("bss-driver".to_owned())
            .spawn(move || driver.run(loop_flag))?;
        Ok(Cluster {
            handles,
            params: config.params,
            mode: ClusterMode::Driver,
            seed: config.seed,
            stats,
            started: Instant::now(),
            runtime: Runtime::Driver {
                running,
                thread: Some(thread),
            },
        })
    }

    /// Number of peers in the cluster (alive or killed).
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the cluster has no peers (never true for a spawned cluster).
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// The transport mode.
    pub fn mode(&self) -> ClusterMode {
        self.mode
    }

    /// The peers, as cheap cloneable handles (both modes).
    pub fn peers(&self) -> &[PeerHandle] {
        &self.handles
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// Measures the alive peers against the convergence oracle right now.
    /// Killed peers are neither measured nor expected in anyone's tables.
    pub fn measure(&self) -> NetworkConvergence {
        let alive: Vec<&PeerHandle> = self.handles.iter().filter(|h| h.is_alive()).collect();
        let oracle = ConvergenceOracle::new(alive.iter().map(|h| h.id()), &self.params);
        let mut aggregate = NetworkConvergence::default();
        for handle in alive {
            aggregate.accumulate(oracle.measure_node(&handle.state_snapshot()));
        }
        aggregate
    }

    /// The fraction of descriptors stored by alive peers (leaf sets and prefix
    /// tables) that name killed peers — the wire-side recovery metric: with
    /// descriptor aging on, it must fall back to 0 after a kill because dead
    /// peers stop heartbeating and age out of every table.
    pub fn dead_descriptor_fraction(&self) -> f64 {
        let dead: HashSet<NodeId> = self
            .handles
            .iter()
            .filter(|h| !h.is_alive())
            .map(PeerHandle::id)
            .collect();
        if dead.is_empty() {
            return 0.0;
        }
        let mut total = 0u64;
        let mut stale = 0u64;
        for handle in self.handles.iter().filter(|h| h.is_alive()) {
            let snapshot = handle.state_snapshot();
            for descriptor in snapshot.leaf_set().iter() {
                total += 1;
                if dead.contains(&descriptor.id()) {
                    stale += 1;
                }
            }
            for descriptor in snapshot.prefix_table().iter() {
                total += 1;
                if dead.contains(&descriptor.id()) {
                    stale += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            stale as f64 / total as f64
        }
    }

    /// Kills `fraction` of the alive peers (chosen by `seed`), leaving at
    /// least one survivor. Killed peers stop sending and answering immediately
    /// — in thread mode their loops exit, in driver mode the loop skips them —
    /// but their descriptors keep circulating until aging evicts them.
    /// Returns the killed identifiers.
    pub fn kill(&self, fraction: f64, seed: u64) -> Vec<NodeId> {
        let alive: Vec<&PeerHandle> = self.handles.iter().filter(|h| h.is_alive()).collect();
        let count = ((alive.len() as f64 * fraction).round() as usize).min(alive.len() - 1);
        let indices: Vec<usize> = (0..alive.len()).collect();
        let mut rng = SimRng::seed_from(seed);
        let chosen = rng.sample(&indices, count);
        let mut killed = Vec::with_capacity(count);
        for index in chosen {
            alive[index].mark_dead();
            killed.push(alive[index].id());
        }
        killed
    }

    /// Polls the cluster until every alive peer has perfect tables or
    /// `timeout` expires. Returns whether convergence was reached.
    pub fn wait_for_convergence(&self, timeout: Duration) -> bool {
        self.wait_until(timeout, |cluster| cluster.measure().is_perfect())
    }

    /// Polls until the cluster has both purged every dead descriptor and
    /// re-converged among the survivors, or `timeout` expires.
    pub fn wait_for_recovery(&self, timeout: Duration) -> bool {
        self.wait_until(timeout, |cluster| {
            cluster.dead_descriptor_fraction() == 0.0 && cluster.measure().is_perfect()
        })
    }

    fn wait_until(&self, timeout: Duration, done: impl Fn(&Cluster) -> bool) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if done(self) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Watches the cluster until it converges or `timeout` expires, sampling
    /// the convergence series every `poll_every`, and renders the run as a
    /// RunReport-shaped [`NetReport`]. Elapsed times are measured from cluster
    /// start, so a monitor attached late still reports absolute progress.
    pub fn monitor(&self, poll_every: Duration, timeout: Duration) -> NetReport {
        let deadline = Instant::now() + timeout;
        let mut leaf_series = Vec::new();
        let mut prefix_series = Vec::new();
        let mut dead_series = Vec::new();
        let mut convergence_millis = None;
        let (mut state, mut dead_fraction);
        loop {
            state = self.measure();
            dead_fraction = self.dead_descriptor_fraction();
            let elapsed = self.started.elapsed().as_millis() as u64;
            leaf_series.push((elapsed, state.leaf_proportion()));
            prefix_series.push((elapsed, state.prefix_proportion()));
            dead_series.push((elapsed, dead_fraction));
            if state.is_perfect() && convergence_millis.is_none() {
                convergence_millis = Some(elapsed);
            }
            if convergence_millis.is_some() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(poll_every);
        }
        NetReport {
            mode: self.mode.label(),
            nodes: self.handles.len(),
            seed: self.seed,
            converged: convergence_millis.is_some(),
            convergence_millis,
            elapsed_millis: self.started.elapsed().as_millis() as u64,
            final_missing_leaf: state.leaf_proportion(),
            final_missing_prefix: state.prefix_proportion(),
            dead_descriptor_fraction: dead_fraction,
            traffic: self.stats.snapshot(),
            leaf_series,
            prefix_series,
            dead_series,
        }
    }

    /// Stops every peer and joins all transport threads. Stop flags are raised
    /// for the whole cluster *before* any join, so thread-mode teardown costs
    /// one read-timeout across the cluster rather than one per peer, and the
    /// driver loop (which checks its flag every sweep) exits within about a
    /// millisecond.
    pub fn shutdown(self) {
        // Drop runs the teardown; the consuming signature is the public
        // contract ("a shut-down cluster cannot be used again").
    }

    fn stop(&mut self) {
        for handle in &self.handles {
            handle.mark_dead();
        }
        match &mut self.runtime {
            Runtime::Threads(peers) => {
                // Every loop has already been flagged; the drops just join.
                peers.clear();
            }
            Runtime::Driver { running, thread } => {
                running.store(false, Ordering::Relaxed);
                if let Some(thread) = thread.take() {
                    let _ = thread.join();
                }
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spawn_or_skip(config: ClusterConfig) -> Option<Cluster> {
        match Cluster::spawn(config) {
            Ok(cluster) => Some(cluster),
            // Environments without loopback UDP (heavily sandboxed CI) cannot
            // run these tests; binding failure is the only acceptable excuse.
            Err(error) => {
                eprintln!("skipping UDP cluster test: {error}");
                None
            }
        }
    }

    #[test]
    fn a_small_cluster_bootstraps_over_real_sockets() {
        let Some(cluster) = spawn_or_skip(ClusterConfig {
            size: 8,
            seed: 42,
            ..ClusterConfig::default()
        }) else {
            return;
        };
        assert_eq!(cluster.len(), 8);
        assert!(!cluster.is_empty());
        assert_eq!(cluster.peers().len(), 8);
        assert_eq!(cluster.mode(), ClusterMode::ThreadPerPeer);
        let converged = cluster.wait_for_convergence(Duration::from_secs(20));
        let state = cluster.measure();
        assert!(
            converged,
            "cluster did not converge over UDP: leaf missing {}, prefix missing {}",
            state.leaf_missing, state.prefix_missing
        );
        let traffic = cluster.stats().snapshot();
        assert!(traffic.datagrams_sent > 0);
        cluster.shutdown();
    }

    #[test]
    fn a_driver_cluster_bootstraps_and_reports() {
        let Some(cluster) = spawn_or_skip(ClusterConfig {
            size: 16,
            seed: 42,
            mode: ClusterMode::Driver,
            params: BootstrapParams {
                cycle_millis: 20,
                ..ClusterConfig::default().params
            },
            ..ClusterConfig::default()
        }) else {
            return;
        };
        assert_eq!(cluster.mode(), ClusterMode::Driver);
        let report = cluster.monitor(Duration::from_millis(25), Duration::from_secs(30));
        assert!(
            report.converged,
            "driver cluster did not converge: missing leaf {:.3}, missing prefix {:.3}",
            report.final_missing_leaf, report.final_missing_prefix
        );
        assert_eq!(report.mode, "driver");
        assert_eq!(report.nodes, 16);
        assert!(report.convergence_millis.is_some());
        assert!(!report.leaf_series.is_empty());
        assert!(report.traffic.datagrams_sent > 0);
        assert!(report.datagrams_per_second() > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn repeated_spawn_and_teardown_is_prompt_in_both_modes() {
        // The shutdown audit: stop flags are raised cluster-wide before any
        // join, so teardown must not cost a read-timeout per peer, and the
        // driver loop must exit promptly. Generous bound: well under a second
        // per cycle even on a loaded CI runner, where leaking 10 ms per peer
        // across 5 x 2 x 12 teardowns would blow through it.
        for mode in [ClusterMode::ThreadPerPeer, ClusterMode::Driver] {
            let started = Instant::now();
            for round in 0..5 {
                let Some(cluster) = spawn_or_skip(ClusterConfig {
                    size: 12,
                    seed: 100 + round,
                    mode,
                    ..ClusterConfig::default()
                }) else {
                    return;
                };
                cluster.shutdown();
            }
            assert!(
                started.elapsed() < Duration::from_secs(5),
                "{}-mode spawn/teardown x5 took {:?}",
                mode.label(),
                started.elapsed()
            );
        }
    }

    #[test]
    fn killing_peers_shows_up_in_measures_and_dead_fraction() {
        let Some(cluster) = spawn_or_skip(ClusterConfig {
            size: 12,
            seed: 11,
            mode: ClusterMode::Driver,
            params: BootstrapParams {
                cycle_millis: 20,
                ..ClusterConfig::default().params
            },
            ..ClusterConfig::default()
        }) else {
            return;
        };
        assert_eq!(cluster.dead_descriptor_fraction(), 0.0, "nobody dead yet");
        assert!(cluster.wait_for_convergence(Duration::from_secs(30)));
        let killed = cluster.kill(0.25, 5);
        assert_eq!(killed.len(), 3);
        let alive = cluster.peers().iter().filter(|h| h.is_alive()).count();
        assert_eq!(alive, 9);
        // Without aging the survivors keep the dead descriptors forever.
        assert!(
            cluster.dead_descriptor_fraction() > 0.0,
            "converged tables must reference the freshly killed peers"
        );
        cluster.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_sized_clusters_are_rejected() {
        let _ = Cluster::spawn(ClusterConfig {
            size: 0,
            ..ClusterConfig::default()
        });
    }
}
