//! Wire format for the UDP deployment.
//!
//! A datagram carries a message kind (request or response), the sender's own
//! descriptor and a list of descriptors. Each descriptor is encoded as identifier
//! (8 bytes), IPv4 address (4 bytes), port (2 bytes) and timestamp (8 bytes); a
//! full message with the paper's parameters stays well under a kilobyte and a half,
//! comfortably inside a single UDP datagram.

use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

/// Whether a datagram is the opening message of an exchange or the answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Active-thread message (Fig. 2a line 5).
    Request,
    /// Passive-thread answer (Fig. 2b line 4).
    Response,
}

/// A decoded protocol datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// Request or response.
    pub kind: MessageKind,
    /// The sender's own descriptor (identifier + address + timestamp).
    pub sender: Descriptor<SocketAddr>,
    /// The descriptors carried by the message.
    pub descriptors: Vec<Descriptor<SocketAddr>>,
}

/// Error returned when a datagram cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> Self {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed datagram: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Error returned when a message cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    message: String,
}

impl EncodeError {
    fn new(message: impl Into<String>) -> Self {
        EncodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unencodable message: {}", self.message)
    }
}

impl std::error::Error for EncodeError {}

const MAGIC: u8 = 0xB5;
const VERSION: u8 = 1;

/// Number of bytes one encoded descriptor occupies.
pub const DESCRIPTOR_BYTES: usize = 8 + 4 + 2 + 8;

/// Largest number of descriptors one datagram can carry: the count field on the
/// wire is a `u16`.
pub const MAX_DESCRIPTORS: usize = u16::MAX as usize;

/// Encodes a message into a datagram payload.
///
/// # Panics
///
/// Panics if the message carries more than [`MAX_DESCRIPTORS`] descriptors
/// (the wire count field is a `u16`; silently truncating the count while
/// encoding every descriptor would emit a corrupt datagram) or if any
/// descriptor carries a non-IPv4 address (the localhost deployment only uses
/// IPv4). Use [`try_encode`] to handle oversized messages as a value.
pub fn encode(message: &WireMessage) -> Bytes {
    match try_encode(message) {
        Ok(bytes) => bytes,
        Err(error) => panic!("{error}"),
    }
}

/// Encodes a message into a datagram payload, rejecting messages whose
/// descriptor count does not fit the wire format's `u16` count field.
///
/// # Errors
///
/// Returns [`EncodeError`] when the message carries more than
/// [`MAX_DESCRIPTORS`] descriptors.
///
/// # Panics
///
/// Panics if any descriptor carries a non-IPv4 address (the localhost
/// deployment only uses IPv4).
pub fn try_encode(message: &WireMessage) -> Result<Bytes, EncodeError> {
    if message.descriptors.len() > MAX_DESCRIPTORS {
        return Err(EncodeError::new(format!(
            "{} descriptors exceed the wire format's limit of {MAX_DESCRIPTORS}",
            message.descriptors.len()
        )));
    }
    let mut buffer =
        BytesMut::with_capacity(4 + DESCRIPTOR_BYTES * (1 + message.descriptors.len()));
    buffer.put_u8(MAGIC);
    buffer.put_u8(VERSION);
    buffer.put_u8(match message.kind {
        MessageKind::Request => 0,
        MessageKind::Response => 1,
    });
    buffer.put_u16(message.descriptors.len() as u16);
    put_descriptor(&mut buffer, &message.sender);
    for descriptor in &message.descriptors {
        put_descriptor(&mut buffer, descriptor);
    }
    Ok(buffer.freeze())
}

/// Decodes a datagram payload.
///
/// # Errors
///
/// Returns [`DecodeError`] when the payload is truncated, has the wrong magic or
/// version byte, or advertises a length that does not match the payload.
pub fn decode(mut payload: &[u8]) -> Result<WireMessage, DecodeError> {
    if payload.len() < 5 {
        return Err(DecodeError::new("shorter than the fixed header"));
    }
    let magic = payload.get_u8();
    if magic != MAGIC {
        return Err(DecodeError::new(format!("bad magic byte {magic:#x}")));
    }
    let version = payload.get_u8();
    if version != VERSION {
        return Err(DecodeError::new(format!("unsupported version {version}")));
    }
    let kind = match payload.get_u8() {
        0 => MessageKind::Request,
        1 => MessageKind::Response,
        other => return Err(DecodeError::new(format!("unknown message kind {other}"))),
    };
    let count = payload.get_u16() as usize;
    let expected = DESCRIPTOR_BYTES * (count + 1);
    if payload.remaining() != expected {
        return Err(DecodeError::new(format!(
            "expected {expected} descriptor bytes, found {}",
            payload.remaining()
        )));
    }
    let sender = get_descriptor(&mut payload);
    let descriptors = (0..count).map(|_| get_descriptor(&mut payload)).collect();
    Ok(WireMessage {
        kind,
        sender,
        descriptors,
    })
}

fn put_descriptor(buffer: &mut BytesMut, descriptor: &Descriptor<SocketAddr>) {
    buffer.put_u64(descriptor.id().raw());
    match descriptor.address() {
        SocketAddr::V4(v4) => {
            buffer.put_slice(&v4.ip().octets());
            buffer.put_u16(v4.port());
        }
        SocketAddr::V6(_) => panic!("the UDP deployment only supports IPv4 addresses"),
    }
    buffer.put_u64(descriptor.timestamp());
}

fn get_descriptor(payload: &mut &[u8]) -> Descriptor<SocketAddr> {
    let id = NodeId::new(payload.get_u64());
    let mut octets = [0u8; 4];
    payload.copy_to_slice(&mut octets);
    let port = payload.get_u16();
    let address = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::from(octets), port));
    let timestamp = payload.get_u64();
    Descriptor::new(id, address, timestamp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }

    fn descriptor(id: u64, port: u16, ts: u64) -> Descriptor<SocketAddr> {
        Descriptor::new(NodeId::new(id), addr(port), ts)
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let message = WireMessage {
            kind: MessageKind::Request,
            sender: descriptor(42, 9000, 7),
            descriptors: vec![
                descriptor(1, 9001, 1),
                descriptor(u64::MAX, 65535, u64::MAX),
            ],
        };
        let encoded = encode(&message);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn round_trip_of_empty_and_response_messages() {
        let message = WireMessage {
            kind: MessageKind::Response,
            sender: descriptor(3, 1234, 0),
            descriptors: vec![],
        };
        let decoded = decode(&encode(&message)).unwrap();
        assert_eq!(decoded.kind, MessageKind::Response);
        assert!(decoded.descriptors.is_empty());
    }

    #[test]
    fn encoded_size_matches_formula() {
        let message = WireMessage {
            kind: MessageKind::Request,
            sender: descriptor(1, 1, 1),
            descriptors: (0..10).map(|i| descriptor(i, 9000, 0)).collect(),
        };
        assert_eq!(encode(&message).len(), 5 + DESCRIPTOR_BYTES * 11);
    }

    #[test]
    fn paper_sized_messages_fit_one_datagram() {
        // c = 20 ring entries plus a generous 40 prefix-useful entries.
        let message = WireMessage {
            kind: MessageKind::Request,
            sender: descriptor(1, 1, 1),
            descriptors: (0..60).map(|i| descriptor(i, 9000, 0)).collect(),
        };
        assert!(encode(&message).len() < 1500, "must fit a typical MTU");
    }

    #[test]
    fn descriptor_count_boundary_round_trips_and_overflow_is_rejected() {
        // Exactly at the u16 boundary: encodes and round-trips losslessly.
        let at_limit = WireMessage {
            kind: MessageKind::Request,
            sender: descriptor(0, 1, 0),
            descriptors: (0..MAX_DESCRIPTORS as u64)
                .map(|i| descriptor(i, (i % 60_000) as u16, i))
                .collect(),
        };
        let encoded = try_encode(&at_limit).expect("the boundary count must encode");
        assert_eq!(encoded.len(), 5 + DESCRIPTOR_BYTES * (MAX_DESCRIPTORS + 1));
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, at_limit);

        // One past the boundary: the count field would silently wrap to 0 while
        // all 65 536 descriptors were still written — a corrupt datagram. The
        // encoder must reject it instead.
        let mut oversized = at_limit;
        oversized.descriptors.push(descriptor(u64::MAX, 1, 1));
        let error = try_encode(&oversized).unwrap_err();
        assert!(error.to_string().contains("65536"), "{error}");
    }

    #[test]
    #[should_panic(expected = "exceed the wire format's limit")]
    fn infallible_encode_panics_on_oversized_messages() {
        let oversized = WireMessage {
            kind: MessageKind::Response,
            sender: descriptor(0, 1, 0),
            descriptors: (0..=MAX_DESCRIPTORS as u64)
                .map(|i| descriptor(i, 9000, 0))
                .collect(),
        };
        let _ = encode(&oversized);
    }

    #[test]
    fn truncated_and_corrupted_payloads_are_rejected() {
        let message = WireMessage {
            kind: MessageKind::Request,
            sender: descriptor(1, 1, 1),
            descriptors: vec![descriptor(2, 2, 2)],
        };
        let encoded = encode(&message);
        assert!(decode(&encoded[..3]).is_err());
        assert!(decode(&encoded[..encoded.len() - 1]).is_err());
        let mut wrong_magic = encoded.to_vec();
        wrong_magic[0] = 0x00;
        assert!(decode(&wrong_magic).is_err());
        let mut wrong_version = encoded.to_vec();
        wrong_version[1] = 99;
        assert!(decode(&wrong_version).is_err());
        let mut wrong_kind = encoded.to_vec();
        wrong_kind[2] = 7;
        assert!(decode(&wrong_kind).is_err());
        assert!(decode(&[]).is_err());
        let error = decode(&encoded[..3]).unwrap_err();
        assert!(error.to_string().contains("malformed"));
    }
}
