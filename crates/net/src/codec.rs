//! Wire format for the UDP deployment.
//!
//! A datagram carries a message kind (request or response), a flags byte, the
//! sender's own descriptor and a list of descriptors. Each descriptor is encoded
//! as identifier (8 bytes), IPv4 address (4 bytes), port (2 bytes) and timestamp
//! (8 bytes). When the deployment runs with a descriptor-verification key
//! (`BootstrapParams::descriptor_verifier`), every descriptor is followed by an
//! 8-byte keyed stamp over its identifier × address binding — the wire-format
//! stand-in for a signature by the identifier's key holder — and receivers
//! reject descriptors whose stamp does not verify. A full message with the
//! paper's parameters stays well under a kilobyte and a half even when stamped,
//! comfortably inside a single UDP datagram.

use bss_sim::adversary::stamp;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

/// Whether a datagram is the opening message of an exchange or the answer —
/// and which protocol layer it belongs to: the bootstrap exchange of Fig. 2,
/// or the peer-sampling gossip that keeps each node's sample pool a live
/// random view of the network (the deployment's NEWSCAST stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// Active-thread message (Fig. 2a line 5).
    Request,
    /// Passive-thread answer (Fig. 2b line 4).
    Response,
    /// Sampling-layer gossip: a draw from the sender's sample pool, addressed
    /// to a random pool member. Feeds pools only, never protocol tables.
    SampleRequest,
    /// Sampling-layer answer: the receiver's own pool draw.
    SampleResponse,
}

/// A decoded protocol datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// Request or response.
    pub kind: MessageKind,
    /// The sender's own descriptor (identifier + address + timestamp).
    pub sender: Descriptor<SocketAddr>,
    /// The descriptors carried by the message.
    pub descriptors: Vec<Descriptor<SocketAddr>>,
    /// Keyed identity stamps, present only on keyed deployments: `stamps[0]`
    /// covers the sender descriptor, `stamps[i + 1]` covers `descriptors[i]`.
    /// Empty on unstamped messages.
    pub stamps: Vec<u64>,
}

impl WireMessage {
    /// An unstamped message (deployments without a verification key).
    pub fn unstamped(
        kind: MessageKind,
        sender: Descriptor<SocketAddr>,
        descriptors: Vec<Descriptor<SocketAddr>>,
    ) -> Self {
        WireMessage {
            kind,
            sender,
            descriptors,
            stamps: Vec::new(),
        }
    }

    /// Whether the message carries identity stamps.
    pub fn is_stamped(&self) -> bool {
        !self.stamps.is_empty()
    }
}

/// Error returned when a datagram cannot be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> Self {
        DecodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed datagram: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Error returned when a message cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    message: String,
}

impl EncodeError {
    fn new(message: impl Into<String>) -> Self {
        EncodeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unencodable message: {}", self.message)
    }
}

impl std::error::Error for EncodeError {}

const MAGIC: u8 = 0xB5;
const VERSION: u8 = 2;
const FLAG_STAMPED: u8 = 0b0000_0001;

/// Number of bytes the fixed header occupies (magic, version, kind, flags,
/// count).
pub const HEADER_BYTES: usize = 6;

/// Number of bytes one encoded descriptor occupies (excluding its stamp).
pub const DESCRIPTOR_BYTES: usize = 8 + 4 + 2 + 8;

/// Number of bytes one identity stamp occupies.
pub const STAMP_BYTES: usize = 8;

/// Largest number of descriptors one datagram can carry: the count field on the
/// wire is a `u16`.
pub const MAX_DESCRIPTORS: usize = u16::MAX as usize;

/// Packs a socket address into the 64-bit address key the identity stamps
/// bind: IPv4 octets in the high bits, port in the low 16.
///
/// # Panics
///
/// Panics on IPv6 addresses (the localhost deployment only uses IPv4).
pub fn address_key(address: SocketAddr) -> u64 {
    match address {
        SocketAddr::V4(v4) => {
            (u64::from(u32::from_be_bytes(v4.ip().octets())) << 16) | u64::from(v4.port())
        }
        SocketAddr::V6(_) => panic!("the UDP deployment only supports IPv4 addresses"),
    }
}

/// The keyed identity stamp for one descriptor: the wire equivalent of the
/// simulator's registry check, computed over the identifier × address binding.
pub fn descriptor_stamp(key: u64, descriptor: &Descriptor<SocketAddr>) -> u64 {
    stamp(key, descriptor.id(), address_key(descriptor.address()))
}

/// Fills in the message's identity stamps under `key` (sender first, then
/// every carried descriptor), replacing any stamps already present.
pub fn seal(message: &mut WireMessage, key: u64) {
    message.stamps.clear();
    message.stamps.reserve(1 + message.descriptors.len());
    message.stamps.push(descriptor_stamp(key, &message.sender));
    for descriptor in &message.descriptors {
        message.stamps.push(descriptor_stamp(key, descriptor));
    }
}

/// Encodes a message into a datagram payload.
///
/// # Panics
///
/// Panics if the message carries more than [`MAX_DESCRIPTORS`] descriptors
/// (the wire count field is a `u16`; silently truncating the count while
/// encoding every descriptor would emit a corrupt datagram), if a stamped
/// message's stamp count does not match its descriptor count, or if any
/// descriptor carries a non-IPv4 address (the localhost deployment only uses
/// IPv4). Use [`try_encode`] to handle malformed messages as a value.
pub fn encode(message: &WireMessage) -> Bytes {
    match try_encode(message) {
        Ok(bytes) => bytes,
        Err(error) => panic!("{error}"),
    }
}

/// Encodes a message into a datagram payload, rejecting messages whose
/// descriptor count does not fit the wire format's `u16` count field or whose
/// stamp list does not cover exactly the sender plus every descriptor.
///
/// # Errors
///
/// Returns [`EncodeError`] when the message carries more than
/// [`MAX_DESCRIPTORS`] descriptors, or is stamped with a stamp count other
/// than `descriptors.len() + 1`.
///
/// # Panics
///
/// Panics if any descriptor carries a non-IPv4 address (the localhost
/// deployment only supports IPv4).
pub fn try_encode(message: &WireMessage) -> Result<Bytes, EncodeError> {
    if message.descriptors.len() > MAX_DESCRIPTORS {
        return Err(EncodeError::new(format!(
            "{} descriptors exceed the wire format's limit of {MAX_DESCRIPTORS}",
            message.descriptors.len()
        )));
    }
    let stamped = message.is_stamped();
    if stamped && message.stamps.len() != message.descriptors.len() + 1 {
        return Err(EncodeError::new(format!(
            "{} stamps cannot cover the sender plus {} descriptors",
            message.stamps.len(),
            message.descriptors.len()
        )));
    }
    let entry = DESCRIPTOR_BYTES + if stamped { STAMP_BYTES } else { 0 };
    let mut buffer =
        BytesMut::with_capacity(HEADER_BYTES + entry * (1 + message.descriptors.len()));
    buffer.put_u8(MAGIC);
    buffer.put_u8(VERSION);
    buffer.put_u8(match message.kind {
        MessageKind::Request => 0,
        MessageKind::Response => 1,
        MessageKind::SampleRequest => 2,
        MessageKind::SampleResponse => 3,
    });
    buffer.put_u8(if stamped { FLAG_STAMPED } else { 0 });
    buffer.put_u16(message.descriptors.len() as u16);
    put_descriptor(&mut buffer, &message.sender);
    if stamped {
        buffer.put_u64(message.stamps[0]);
    }
    for (index, descriptor) in message.descriptors.iter().enumerate() {
        put_descriptor(&mut buffer, descriptor);
        if stamped {
            buffer.put_u64(message.stamps[index + 1]);
        }
    }
    Ok(buffer.freeze())
}

/// Decodes a datagram payload.
///
/// # Errors
///
/// Returns [`DecodeError`] when the payload is truncated, has the wrong magic,
/// version, kind or flags byte, or advertises a length that does not match the
/// payload.
pub fn decode(mut payload: &[u8]) -> Result<WireMessage, DecodeError> {
    if payload.len() < HEADER_BYTES {
        return Err(DecodeError::new("shorter than the fixed header"));
    }
    let magic = payload.get_u8();
    if magic != MAGIC {
        return Err(DecodeError::new(format!("bad magic byte {magic:#x}")));
    }
    let version = payload.get_u8();
    if version != VERSION {
        return Err(DecodeError::new(format!("unsupported version {version}")));
    }
    let kind = match payload.get_u8() {
        0 => MessageKind::Request,
        1 => MessageKind::Response,
        2 => MessageKind::SampleRequest,
        3 => MessageKind::SampleResponse,
        other => return Err(DecodeError::new(format!("unknown message kind {other}"))),
    };
    let flags = payload.get_u8();
    if flags & !FLAG_STAMPED != 0 {
        return Err(DecodeError::new(format!("unknown flags {flags:#010b}")));
    }
    let stamped = flags & FLAG_STAMPED != 0;
    let count = payload.get_u16() as usize;
    let entry = DESCRIPTOR_BYTES + if stamped { STAMP_BYTES } else { 0 };
    let expected = entry * (count + 1);
    if payload.remaining() != expected {
        return Err(DecodeError::new(format!(
            "expected {expected} descriptor bytes, found {}",
            payload.remaining()
        )));
    }
    let mut stamps = Vec::with_capacity(if stamped { count + 1 } else { 0 });
    let sender = get_descriptor(&mut payload);
    if stamped {
        stamps.push(payload.get_u64());
    }
    let descriptors = (0..count)
        .map(|_| {
            let descriptor = get_descriptor(&mut payload);
            if stamped {
                stamps.push(payload.get_u64());
            }
            descriptor
        })
        .collect();
    Ok(WireMessage {
        kind,
        sender,
        descriptors,
        stamps,
    })
}

fn put_descriptor(buffer: &mut BytesMut, descriptor: &Descriptor<SocketAddr>) {
    buffer.put_u64(descriptor.id().raw());
    match descriptor.address() {
        SocketAddr::V4(v4) => {
            buffer.put_slice(&v4.ip().octets());
            buffer.put_u16(v4.port());
        }
        SocketAddr::V6(_) => panic!("the UDP deployment only supports IPv4 addresses"),
    }
    buffer.put_u64(descriptor.timestamp());
}

fn get_descriptor(payload: &mut &[u8]) -> Descriptor<SocketAddr> {
    let id = NodeId::new(payload.get_u64());
    let mut octets = [0u8; 4];
    payload.copy_to_slice(&mut octets);
    let port = payload.get_u16();
    let address = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::from(octets), port));
    let timestamp = payload.get_u64();
    Descriptor::new(id, address, timestamp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port))
    }

    fn descriptor(id: u64, port: u16, ts: u64) -> Descriptor<SocketAddr> {
        Descriptor::new(NodeId::new(id), addr(port), ts)
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let message = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(42, 9000, 7),
            vec![
                descriptor(1, 9001, 1),
                descriptor(u64::MAX, 65535, u64::MAX),
            ],
        );
        let encoded = encode(&message);
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn sampling_layer_kinds_round_trip() {
        for kind in [MessageKind::SampleRequest, MessageKind::SampleResponse] {
            let message =
                WireMessage::unstamped(kind, descriptor(9, 4000, 3), vec![descriptor(10, 4001, 2)]);
            let decoded = decode(&encode(&message)).unwrap();
            assert_eq!(decoded, message);
            let mut stamped = message;
            seal(&mut stamped, 0xabcd);
            assert_eq!(decode(&encode(&stamped)).unwrap(), stamped);
        }
    }

    #[test]
    fn round_trip_of_empty_and_response_messages() {
        let message = WireMessage::unstamped(MessageKind::Response, descriptor(3, 1234, 0), vec![]);
        let decoded = decode(&encode(&message)).unwrap();
        assert_eq!(decoded.kind, MessageKind::Response);
        assert!(decoded.descriptors.is_empty());
        assert!(!decoded.is_stamped());
    }

    #[test]
    fn stamped_round_trip_preserves_stamps() {
        let mut message = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(42, 9000, 7),
            vec![descriptor(1, 9001, 1), descriptor(2, 9002, 2)],
        );
        seal(&mut message, 0xfeed_beef);
        assert!(message.is_stamped());
        assert_eq!(message.stamps.len(), 3);
        let decoded = decode(&encode(&message)).unwrap();
        assert_eq!(decoded, message);
        assert_eq!(
            decoded.stamps[0],
            descriptor_stamp(0xfeed_beef, &message.sender)
        );
    }

    #[test]
    fn stamps_bind_the_descriptor_identity_and_the_key() {
        let d = descriptor(42, 9000, 7);
        let s = descriptor_stamp(1, &d);
        assert_eq!(descriptor_stamp(1, &d), s, "deterministic");
        assert_ne!(descriptor_stamp(2, &d), s, "key matters");
        assert_ne!(
            descriptor_stamp(1, &descriptor(43, 9000, 7)),
            s,
            "id matters"
        );
        assert_ne!(
            descriptor_stamp(1, &descriptor(42, 9001, 7)),
            s,
            "address matters"
        );
        assert_eq!(
            descriptor_stamp(1, &descriptor(42, 9000, 99)),
            s,
            "the stamp covers identity, not freshness"
        );
    }

    #[test]
    fn mismatched_stamp_counts_are_rejected() {
        let mut message = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(1, 1, 1),
            vec![descriptor(2, 2, 2)],
        );
        message.stamps = vec![7]; // needs 2: sender + one descriptor
        let error = try_encode(&message).unwrap_err();
        assert!(error.to_string().contains("cannot cover"), "{error}");
    }

    #[test]
    fn encoded_size_matches_formula() {
        let message = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(1, 1, 1),
            (0..10).map(|i| descriptor(i, 9000, 0)).collect(),
        );
        assert_eq!(encode(&message).len(), HEADER_BYTES + DESCRIPTOR_BYTES * 11);
        let mut stamped = message;
        seal(&mut stamped, 1);
        assert_eq!(
            encode(&stamped).len(),
            HEADER_BYTES + (DESCRIPTOR_BYTES + STAMP_BYTES) * 11
        );
    }

    #[test]
    fn paper_sized_messages_fit_one_datagram() {
        // c = 20 ring entries plus a generous 40 prefix-useful entries.
        let message = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(1, 1, 1),
            (0..60).map(|i| descriptor(i, 9000, 0)).collect(),
        );
        assert!(encode(&message).len() < 1500, "must fit a typical MTU");
        // Stamping costs 8 bytes per descriptor, so the keyed deployment's
        // headroom is smaller but a paper-default message (c = 20 plus cr = 30
        // samples, before selection trims it) still fits.
        let mut stamped = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(1, 1, 1),
            (0..45).map(|i| descriptor(i, 9000, 0)).collect(),
        );
        seal(&mut stamped, 1);
        assert!(encode(&stamped).len() < 1500, "stamped must fit an MTU too");
    }

    #[test]
    fn descriptor_count_boundary_round_trips_and_overflow_is_rejected() {
        // Exactly at the u16 boundary: encodes and round-trips losslessly.
        let at_limit = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(0, 1, 0),
            (0..MAX_DESCRIPTORS as u64)
                .map(|i| descriptor(i, (i % 60_000) as u16, i))
                .collect(),
        );
        let encoded = try_encode(&at_limit).expect("the boundary count must encode");
        assert_eq!(
            encoded.len(),
            HEADER_BYTES + DESCRIPTOR_BYTES * (MAX_DESCRIPTORS + 1)
        );
        let decoded = decode(&encoded).unwrap();
        assert_eq!(decoded, at_limit);

        // One past the boundary: the count field would silently wrap to 0 while
        // all 65 536 descriptors were still written — a corrupt datagram. The
        // encoder must reject it instead.
        let mut oversized = at_limit;
        oversized.descriptors.push(descriptor(u64::MAX, 1, 1));
        let error = try_encode(&oversized).unwrap_err();
        assert!(error.to_string().contains("65536"), "{error}");
    }

    #[test]
    #[should_panic(expected = "exceed the wire format's limit")]
    fn infallible_encode_panics_on_oversized_messages() {
        let oversized = WireMessage::unstamped(
            MessageKind::Response,
            descriptor(0, 1, 0),
            (0..=MAX_DESCRIPTORS as u64)
                .map(|i| descriptor(i, 9000, 0))
                .collect(),
        );
        let _ = encode(&oversized);
    }

    #[test]
    fn truncated_and_corrupted_payloads_are_rejected() {
        let message = WireMessage::unstamped(
            MessageKind::Request,
            descriptor(1, 1, 1),
            vec![descriptor(2, 2, 2)],
        );
        let encoded = encode(&message);
        assert!(decode(&encoded[..3]).is_err());
        assert!(decode(&encoded[..encoded.len() - 1]).is_err());
        let mut wrong_magic = encoded.to_vec();
        wrong_magic[0] = 0x00;
        assert!(decode(&wrong_magic).is_err());
        let mut wrong_version = encoded.to_vec();
        wrong_version[1] = 99;
        assert!(decode(&wrong_version).is_err());
        let mut wrong_kind = encoded.to_vec();
        wrong_kind[2] = 7;
        assert!(decode(&wrong_kind).is_err());
        let mut wrong_flags = encoded.to_vec();
        wrong_flags[3] = 0b1000_0000;
        assert!(decode(&wrong_flags).is_err());
        assert!(decode(&[]).is_err());
        let error = decode(&encoded[..3]).unwrap_err();
        assert!(error.to_string().contains("malformed"));
    }
}
