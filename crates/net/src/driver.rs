//! The single-loop datagram driver: hundreds-to-thousands of in-process peers
//! multiplexed over one thread.
//!
//! Thread-per-peer ([`crate::node::UdpPeer`]) is faithful to how one real
//! deployment process behaves, but a loopback cluster of 512+ peers spends
//! most of its time context-switching. [`NetDriver`] instead owns every peer's
//! nonblocking socket and runs the whole cluster in one poll loop: each sweep
//! batch-receives pending datagrams per socket into one reusable buffer,
//! applies them through the very same clocked protocol glue the threaded peers
//! use ([`apply_message`]/[`compose_request`] in `crate::node`), fires the
//! active thread of every peer whose Δ timer elapsed, and flushes all queued
//! sends coalesced at the end of the sweep. One shared scratch block serves
//! every node, so the per-datagram path is allocation-light regardless of
//! cluster size.
//!
//! The driver draws node identifiers exactly like the simulator engines
//! (`SimRng::seed_from(seed)` then one `distinct_u64(size)` batch), so a
//! driver cluster and a cycle-engine run with the same seed and size bootstrap
//! the *same identifier population* — the property the sim-vs-net parity tests
//! assert on.

use crate::node::{
    apply_message, compose_request, compose_sample_exchange, effective_cycle_millis, wire_cycle,
    PeerHandle, ProtocolScratch, SamplePool,
};
use crate::report::NetStats;
use bss_core::node::BootstrapNode;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use bytes::Bytes;
use parking_lot::Mutex;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many datagrams one socket may deliver per sweep before the loop moves
/// on — bounds per-node latency while still draining bursts in few syscall
/// rounds.
const RECV_BATCH: usize = 64;

/// How long the loop sleeps when a sweep found no work at all.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Configuration of a driver-run cluster.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of in-process peers.
    pub size: usize,
    /// Bootstrapping-service parameters. `cycle_millis` is the active period Δ.
    pub params: BootstrapParams,
    /// How many random contacts every peer receives at start-up.
    pub contacts_per_peer: usize,
    /// Seed for identifier assignment, contact sampling and per-node RNGs.
    pub seed: u64,
}

/// One peer inside the driver: its socket, shared handle, RNG, sampling pool
/// (seeded from the static contact list) and active-thread deadline.
#[derive(Debug)]
struct DriverNode {
    socket: UdpSocket,
    handle: PeerHandle,
    rng: SimRng,
    pool: SamplePool,
    next_active: Instant,
}

/// The single-thread poll-loop driver.
#[derive(Debug)]
pub struct NetDriver {
    nodes: Vec<DriverNode>,
    stats: Arc<NetStats>,
    started: Instant,
    period: Duration,
    cycle_millis: u64,
    scratch: ProtocolScratch,
    buffer: Vec<u8>,
    outbox: Vec<(usize, SocketAddr, Bytes)>,
}

impl NetDriver {
    /// Binds every peer's socket (nonblocking), seeds every contact list from
    /// the full address population, and readies the loop. No datagram flows
    /// until [`NetDriver::poll_once`] or [`NetDriver::run`] is called.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while binding or configuring sockets, or
    /// `InvalidInput` when the parameters are invalid.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn bind(config: DriverConfig) -> io::Result<Self> {
        assert!(config.size > 0, "a cluster needs at least one peer");
        config
            .params
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        // Identifier assignment must match the simulator engines draw-for-draw
        // (seed → one distinct_u64 batch) for sim-vs-net parity.
        let mut rng = SimRng::seed_from(config.seed);
        let ids: Vec<NodeId> = rng
            .distinct_u64(config.size)
            .into_iter()
            .map(NodeId::new)
            .collect();

        let mut sockets = Vec::with_capacity(config.size);
        let mut descriptors = Vec::with_capacity(config.size);
        for &id in &ids {
            let socket = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
            socket.set_nonblocking(true)?;
            let address = socket.local_addr()?;
            descriptors.push(Descriptor::new(id, address, 0));
            sockets.push(socket);
        }

        let cycle_millis = effective_cycle_millis(&config.params);
        let period = Duration::from_millis(cycle_millis);
        let started = Instant::now();
        let mut nodes = Vec::with_capacity(config.size);
        for (position, socket) in sockets.into_iter().enumerate() {
            let own = descriptors[position];
            let others: Vec<Descriptor<SocketAddr>> = descriptors
                .iter()
                .enumerate()
                .filter(|&(index, _)| index != position)
                .map(|(_, &descriptor)| descriptor)
                .collect();
            let contacts = rng.sample(&others, config.contacts_per_peer.min(others.len()));
            let mut node = BootstrapNode::new(own, &config.params)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            node.initialize(contacts.iter().copied());
            let handle = PeerHandle::new(own.id(), own.address(), Arc::new(Mutex::new(node)));
            let mut node_rng = SimRng::seed_from(config.seed ^ (position as u64 + 1));
            // Random start phase, like the threaded peers and §5 of the paper.
            let next_active = started + period.mul_f64(node_rng.unit_f64());
            nodes.push(DriverNode {
                socket,
                handle,
                rng: node_rng,
                pool: SamplePool::new(contacts),
                next_active,
            });
        }

        Ok(NetDriver {
            nodes,
            stats: Arc::new(NetStats::new()),
            started,
            period,
            cycle_millis,
            scratch: ProtocolScratch::default(),
            buffer: vec![0u8; 65_536],
            outbox: Vec::new(),
        })
    }

    /// Number of peers the driver multiplexes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the driver has no peers (never true for a bound driver).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Cloneable views of every peer, in identifier-assignment order.
    pub fn handles(&self) -> Vec<PeerHandle> {
        self.nodes.iter().map(|node| node.handle.clone()).collect()
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> Arc<NetStats> {
        Arc::clone(&self.stats)
    }

    /// One sweep over every alive peer: batch-receive and apply pending
    /// datagrams, fire elapsed active timers, then flush all queued sends.
    /// Returns whether the sweep did any work (received or sent anything) —
    /// callers use this to idle-sleep between empty sweeps.
    pub fn poll_once(&mut self) -> bool {
        let NetDriver {
            nodes,
            stats,
            started,
            period,
            cycle_millis,
            scratch,
            buffer,
            outbox,
        } = self;
        let now = wire_cycle(*started, *cycle_millis);
        let mut worked = false;

        // Passive threads: drain each socket's backlog, batched.
        for (index, node) in nodes.iter_mut().enumerate() {
            if !node.handle.is_alive() {
                continue;
            }
            for _ in 0..RECV_BATCH {
                match node.socket.recv_from(buffer.as_mut_slice()) {
                    Ok((length, from)) => {
                        worked = true;
                        stats.record_received(length);
                        match crate::codec::decode(&buffer[..length]) {
                            Ok(message) => {
                                let answer = {
                                    let mut state = node.handle.state().lock();
                                    apply_message(
                                        &mut state,
                                        &mut node.rng,
                                        &mut node.pool,
                                        message,
                                        now,
                                        scratch,
                                    )
                                };
                                if let Some(payload) = answer {
                                    outbox.push((index, from, payload));
                                }
                            }
                            Err(_) => stats.record_decode_failure(),
                        }
                    }
                    Err(_) => break,
                }
            }
        }

        // Active threads: every peer whose Δ timer elapsed composes one request.
        let sweep_time = Instant::now();
        for (index, node) in nodes.iter_mut().enumerate() {
            if !node.handle.is_alive() || sweep_time < node.next_active {
                continue;
            }
            node.next_active += *period;
            // A stalled loop (debugger, loaded machine) skips missed firings
            // instead of bursting to catch up.
            while node.next_active <= sweep_time {
                node.next_active += *period;
            }
            let (request, sampling) = {
                let mut state = node.handle.state().lock();
                let request =
                    compose_request(&mut state, &mut node.rng, &mut node.pool, now, scratch);
                let sampling = compose_sample_exchange(&state, &mut node.rng, &mut node.pool, now);
                (request, sampling)
            };
            if let Some((target, payload)) = request {
                node.handle.record_exchange();
                outbox.push((index, target, payload));
            }
            if let Some((target, payload)) = sampling {
                outbox.push((index, target, payload));
            }
        }

        // Coalesced flush: all of this sweep's sends in one pass.
        for (index, target, payload) in outbox.drain(..) {
            worked = true;
            match nodes[index].socket.send_to(&payload, target) {
                Ok(sent) => stats.record_sent(sent),
                Err(_) => stats.record_send_failure(),
            }
        }
        worked
    }

    /// Runs the poll loop until `running` turns false, idle-sleeping briefly
    /// after sweeps that found no work. Checked every sweep, so a stop request
    /// is honoured within about a millisecond — no timeout stragglers.
    pub fn run(mut self, running: Arc<AtomicBool>) {
        while running.load(Ordering::Relaxed) {
            if !self.poll_once() {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_core::convergence::{ConvergenceOracle, NetworkConvergence};

    fn params() -> BootstrapParams {
        BootstrapParams {
            leaf_set_size: 4,
            random_samples: 8,
            cycle_millis: 20,
            ..BootstrapParams::paper_default()
        }
    }

    fn measure(driver: &NetDriver) -> NetworkConvergence {
        let handles = driver.handles();
        let params = *handles[0].state_snapshot().params();
        let oracle = ConvergenceOracle::new(handles.iter().map(PeerHandle::id), &params);
        let mut aggregate = NetworkConvergence::default();
        for handle in &handles {
            aggregate.accumulate(oracle.measure_node(&handle.state_snapshot()));
        }
        aggregate
    }

    #[test]
    fn a_single_threaded_driver_cluster_converges() {
        let mut driver = match NetDriver::bind(DriverConfig {
            size: 12,
            params: params(),
            contacts_per_peer: 4,
            seed: 9,
        }) {
            Ok(driver) => driver,
            // Environments without loopback UDP cannot run this test.
            Err(error) => {
                eprintln!("skipping driver test: {error}");
                return;
            }
        };
        assert_eq!(driver.len(), 12);
        assert!(!driver.is_empty());

        // Drive the loop on this very thread: fully deterministic scheduling.
        let deadline = Instant::now() + Duration::from_secs(30);
        let mut converged = false;
        while Instant::now() < deadline {
            if !driver.poll_once() {
                std::thread::sleep(Duration::from_micros(200));
            }
            if measure(&driver).is_perfect() {
                converged = true;
                break;
            }
        }
        let state = measure(&driver);
        assert!(
            converged,
            "driver cluster did not converge: leaf missing {}, prefix missing {}",
            state.leaf_missing, state.prefix_missing
        );
        let traffic = driver.stats().snapshot();
        assert!(traffic.datagrams_sent > 0);
        assert!(traffic.datagrams_received > 0);
        assert_eq!(traffic.decode_failures, 0);
        assert!(driver.handles().iter().any(|h| h.exchanges_initiated() > 0));
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_sized_drivers_are_rejected() {
        let _ = NetDriver::bind(DriverConfig {
            size: 0,
            params: params(),
            contacts_per_peer: 4,
            seed: 1,
        });
    }
}
