//! # bss-net — the bootstrapping service over real UDP sockets
//!
//! The paper designs the protocol for "a cheap, unreliable transport layer (UDP)"
//! but evaluates it only in simulation. This crate runs the very same node-local
//! logic ([`BootstrapNode`](bss_core::node::BootstrapNode), which is generic over
//! the address type) on real sockets, so a localhost cluster can be bootstrapped
//! end to end outside the simulator:
//!
//! * [`codec`] — a compact binary wire format for descriptor lists (identifier,
//!   IPv4 address, port, timestamp), built on [`bytes`], with optional keyed
//!   identity stamps for the descriptor-verifier countermeasure.
//! * [`node`] — a peer: one UDP socket, one background thread running the active
//!   thread of Fig. 2 on a timer and the passive thread on receipt — plus the
//!   shared *clocked* protocol glue (millisecond-derived cycle clock, descriptor
//!   aging, heartbeat re-stamping, stamp verification) every transport mode runs
//!   through.
//! * [`driver`] — the batched single-loop datagram driver: hundreds-to-thousands
//!   of in-process peers multiplexed over one poll loop and one thread.
//! * [`cluster`] — spawns and supervises a set of peers on the loopback interface
//!   (thread-per-peer or driver mode), checks their convergence with the same
//!   [`ConvergenceOracle`](bss_core::convergence::ConvergenceOracle) the simulator
//!   uses, and renders runs as RunReport-shaped [`report::NetReport`]s.
//! * [`report`] — shared traffic counters and the wire-side run report.
//!
//! The peer sampling service the paper assumes is "already functional" runs here
//! as its own lightweight gossip layer: every peer keeps a bounded, NEWSCAST-style
//! sample pool (seeded from its static start-up contacts) and piggybacks one
//! sampling exchange — [`codec::MessageKind::SampleRequest`] /
//! [`codec::MessageKind::SampleResponse`] — on every active firing, aimed at a
//! uniformly random pool member. Sampling messages feed pools only and never the
//! protocol tables, keeping the two layers separate exactly as in the paper's
//! architecture; the `cr` random samples of Fig. 2 are drawn from the pool on both
//! the active and the passive path. Everything above that — message content,
//! leaf-set and prefix-table updates, peer selection, aging, verification — is the
//! same clocked code path the simulator engines exercise, which is what the
//! sim-vs-net parity tests in the workspace root assert.
//!
//! # Example
//!
//! ```rust,no_run
//! use bss_net::cluster::{Cluster, ClusterConfig, ClusterMode};
//!
//! let cluster = Cluster::spawn(ClusterConfig {
//!     size: 256,
//!     mode: ClusterMode::Driver,
//!     ..ClusterConfig::default()
//! })
//! .expect("sockets available");
//! let report = cluster.monitor(
//!     std::time::Duration::from_millis(50),
//!     std::time::Duration::from_secs(30),
//! );
//! println!("{}", report.to_json());
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod codec;
pub mod driver;
pub mod node;
pub mod report;

pub use cluster::{Cluster, ClusterConfig, ClusterMode};
pub use driver::{DriverConfig, NetDriver};
pub use node::{PeerHandle, UdpPeer, UdpPeerConfig};
pub use report::{NetReport, NetStats, NetTraffic};
