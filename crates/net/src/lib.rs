//! # bss-net — the bootstrapping service over real UDP sockets
//!
//! The paper designs the protocol for "a cheap, unreliable transport layer (UDP)"
//! but evaluates it only in simulation. This crate runs the very same node-local
//! logic ([`BootstrapNode`](bss_core::node::BootstrapNode), which is generic over
//! the address type) on real sockets, so a localhost cluster can be bootstrapped
//! end to end outside the simulator:
//!
//! * [`codec`] — a compact binary wire format for descriptor lists (identifier,
//!   IPv4 address, port, timestamp), built on [`bytes`].
//! * [`node`] — a peer: one UDP socket, one background thread running the active
//!   thread of Fig. 2 on a timer and the passive thread on receipt.
//! * [`cluster`] — spawns and supervises a set of peers on the loopback interface
//!   and checks their convergence with the same
//!   [`ConvergenceOracle`](bss_core::convergence::ConvergenceOracle) the simulator
//!   uses.
//!
//! The deployment makes one simplification relative to the full architecture: the
//! peer sampling service is represented by a static random contact list given to
//! every peer at start-up (the paper's working assumption is that sampling is
//! "already functional" when the bootstrap starts). Everything above that — message
//! content, leaf-set and prefix-table updates, peer selection — is byte-for-byte the
//! same code the simulator exercises.
//!
//! # Example
//!
//! ```rust,no_run
//! use bss_net::cluster::{Cluster, ClusterConfig};
//!
//! let cluster = Cluster::spawn(ClusterConfig {
//!     size: 16,
//!     ..ClusterConfig::default()
//! })
//! .expect("sockets available");
//! let converged = cluster.wait_for_convergence(std::time::Duration::from_secs(10));
//! println!("converged: {converged}");
//! cluster.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod codec;
pub mod node;

pub use cluster::{Cluster, ClusterConfig};
pub use node::{UdpPeer, UdpPeerConfig};
