//! A single UDP peer running the bootstrapping service, plus the shared
//! clocked protocol glue every transport mode runs through.
//!
//! Each [`UdpPeer`] owns one UDP socket bound to the loopback interface and one
//! background thread. The thread implements both threads of Fig. 2: on a
//! periodic timer it selects a peer, composes a message and sends a request
//! (active thread); whenever a request arrives it answers with its own message
//! and applies the received one (passive thread); responses are simply applied.
//! The node-local state is the very same [`BootstrapNode`] the simulator uses,
//! instantiated with `SocketAddr` as the address type.
//!
//! The wire path is *clocked*: every peer derives a cycle number from its
//! wall-clock uptime (`elapsed millis / Δ`) and drives the protocol through
//! `create_message_at` / `receive_at`, so descriptor aging
//! (`descriptor_max_age`), heartbeat re-stamping and the failure detector
//! behave on real packets exactly as they do in the simulators. When a
//! descriptor-verification key is configured, outgoing datagrams are sealed
//! with per-descriptor identity stamps and incoming descriptors failing
//! verification are rejected before any merge ([`crate::codec`]).
//!
//! [`compose_request`] and [`apply_message`] are the single implementation of
//! that logic; the thread-per-peer loop here and the batched single-loop
//! driver ([`crate::driver`]) both call them, which is what makes the two
//! modes protocol-equivalent.

use crate::codec::{decode, descriptor_stamp, encode, seal, MessageKind, WireMessage};
use crate::report::NetStats;
use bss_core::leafset::MergeScratch;
use bss_core::message::MessageScratch;
use bss_core::node::BootstrapNode;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use bytes::Bytes;
use parking_lot::Mutex;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of one UDP peer.
#[derive(Debug, Clone)]
pub struct UdpPeerConfig {
    /// The peer's identifier.
    pub id: NodeId,
    /// Bootstrapping-service parameters. `cycle_millis` is the active-thread
    /// period Δ.
    pub params: BootstrapParams,
    /// The static random contact list standing in for the peer sampling service.
    pub contacts: Vec<Descriptor<SocketAddr>>,
    /// Seed for the peer's local randomness (peer selection, sample choice).
    pub seed: u64,
}

/// The wire's cycle period: Δ, floored at 10 ms so a misconfigured Δ of 0
/// cannot spin the active thread.
pub(crate) fn effective_cycle_millis(params: &BootstrapParams) -> u64 {
    params.cycle_millis.max(10)
}

/// The wire clock: the cycle number a peer started at `started` is in now.
/// Per-peer clocks are independent; their skew (one period at most, plus
/// scheduling noise) is far below any sensible `descriptor_max_age` bound,
/// which is measured in whole cycles.
pub(crate) fn wire_cycle(started: Instant, cycle_millis: u64) -> u64 {
    started.elapsed().as_millis() as u64 / cycle_millis
}

/// Caller-owned working memory for the clocked wire path: message-composition
/// and merge scratch plus the peer-selection candidate buffer, reusable across
/// datagrams (and across *nodes* — the single-loop driver shares one).
#[derive(Debug, Default)]
pub(crate) struct ProtocolScratch {
    message: MessageScratch<SocketAddr>,
    merge: MergeScratch<SocketAddr>,
    candidates: Vec<Descriptor<SocketAddr>>,
    received: Vec<Descriptor<SocketAddr>>,
    verdicts: Vec<bool>,
}

/// Capacity of a peer's [`SamplePool`]: comfortably above the cluster sizes
/// the parity tests pin (there the pool converges to the whole population,
/// matching the simulator's oracle sampler exactly) while keeping the
/// per-datagram ingest scan cheap at larger deployments, where the pool
/// behaves like a NEWSCAST-style partial view.
const SAMPLE_POOL_CAPACITY: usize = 128;

/// The wire's peer-sampling stand-in: a bounded descriptor pool, seeded with
/// the static start-up contacts and fed by the sampling-gossip layer's
/// payloads plus every (verified) sender heartbeat. The `cr` random samples of
/// Fig. 2 are drawn from it on both the active and the passive path, so sample
/// content diffuses epidemically across the network — approximating the
/// uniform sampling service the paper assumes is "already functional" when the
/// bootstrap starts.
///
/// A *static* contact list is not enough: once the overlay is nearly
/// converged, exchanges only flow along ring-local edges, and a structurally
/// unlucky node whose neighbourhood never holds its last missing ring
/// neighbour would wait forever for a descriptor no partner can supply. The
/// pool restores the global reach that the simulator gets from its oracle
/// sampler.
#[derive(Debug, Clone)]
pub(crate) struct SamplePool {
    entries: Vec<Descriptor<SocketAddr>>,
    capacity: usize,
}

impl SamplePool {
    /// A pool seeded with the peer's static start-up contacts.
    pub(crate) fn new(contacts: impl IntoIterator<Item = Descriptor<SocketAddr>>) -> Self {
        let mut pool = SamplePool {
            entries: Vec::new(),
            capacity: SAMPLE_POOL_CAPACITY,
        };
        for contact in contacts {
            if pool.entries.len() == pool.capacity {
                break;
            }
            if pool.entries.iter().all(|entry| entry.id() != contact.id()) {
                pool.entries.push(contact);
            }
        }
        pool
    }

    /// Folds descriptors into the pool, keeping the freshest copy per
    /// identifier and evicting a *uniformly random* incumbent when full.
    ///
    /// Random eviction matters: sampling payloads carry descriptors stamped at
    /// their owner's last heartbeat, so against a pool of fresher incumbents an
    /// evict-the-oldest policy throws exactly those entries straight back out.
    /// The pool then collapses to the most recently heard-from neighbourhood
    /// and the `cr` draws stop being uniform — at a few hundred nodes that
    /// starves last-mile convergence. A uniform victim keeps the pool a
    /// reservoir over everything in circulation; *expiry* of dead peers is
    /// [`SamplePool::prune`]'s job, not the eviction policy's.
    pub(crate) fn ingest(
        &mut self,
        rng: &mut SimRng,
        descriptors: impl IntoIterator<Item = Descriptor<SocketAddr>>,
    ) {
        for descriptor in descriptors {
            match self
                .entries
                .iter_mut()
                .find(|entry| entry.id() == descriptor.id())
            {
                Some(existing) => {
                    if descriptor.timestamp() >= existing.timestamp() {
                        *existing = descriptor;
                    }
                }
                None => {
                    if self.entries.len() == self.capacity {
                        let victim = rng.index(self.entries.len());
                        self.entries.swap_remove(victim);
                    }
                    self.entries.push(descriptor);
                }
            }
        }
    }

    /// Drops entries older than the aging bound, mirroring table eviction:
    /// dead peers stop heartbeating, so their pool entries expire too and the
    /// sampling service stops resurrecting them.
    pub(crate) fn prune(&mut self, now: u64, max_age: u64) {
        self.entries
            .retain(|entry| now.saturating_sub(entry.timestamp()) <= max_age);
    }

    /// Draws up to `count` distinct random samples from the pool.
    pub(crate) fn draw(&self, rng: &mut SimRng, count: usize) -> Vec<Descriptor<SocketAddr>> {
        rng.sample(&self.entries, count.min(self.entries.len()))
    }

    /// Picks a uniformly random pool member (other than the node itself) as
    /// the target of one sampling-gossip exchange.
    pub(crate) fn pick_target(&self, rng: &mut SimRng, own: NodeId) -> Option<SocketAddr> {
        let eligible = self
            .entries
            .iter()
            .filter(|entry| entry.id() != own)
            .count();
        if eligible == 0 {
            return None;
        }
        let pick = rng.index(eligible);
        self.entries
            .iter()
            .filter(|entry| entry.id() != own)
            .nth(pick)
            .map(|entry| entry.address())
    }
}

/// One sampling-layer firing: gossip a draw from the own pool to a uniformly
/// random pool member. This is what keeps the sampling service *connected*
/// independently of the bootstrap overlay: once the leaf sets converge, the
/// bootstrap exchange graph collapses to ring-local cliques (a node only ever
/// initiates towards the closer half of its leaf set), and a descriptor the
/// clique never held could otherwise not reach it — the sampling overlay, a
/// random graph over pool membership, has no such cuts. Sampling messages
/// feed pools only; the protocol tables are exclusively the bootstrap
/// layer's.
pub(crate) fn compose_sample_exchange(
    node: &BootstrapNode<SocketAddr>,
    rng: &mut SimRng,
    pool: &mut SamplePool,
    now: u64,
) -> Option<(SocketAddr, Bytes)> {
    let params = *node.params();
    if let Some(max_age) = params.descriptor_max_age {
        pool.prune(now, max_age);
    }
    let target = pool.pick_target(rng, node.own_descriptor().id())?;
    let samples = pool.draw(rng, params.random_samples);
    let mut message =
        WireMessage::unstamped(MessageKind::SampleRequest, node.own_descriptor(), samples);
    if let Some(key) = params.descriptor_verifier {
        seal(&mut message, key);
    }
    Some((target, encode(&message)))
}

/// One active-thread firing (Fig. 2a): select a peer from the leaf set, compose
/// the clocked message (re-stamping the own descriptor under aging) and encode
/// the request datagram. Returns `None` when the leaf set is empty. Sealed
/// with identity stamps when the parameters carry a verification key.
pub(crate) fn compose_request(
    node: &mut BootstrapNode<SocketAddr>,
    rng: &mut SimRng,
    pool: &mut SamplePool,
    now: u64,
    scratch: &mut ProtocolScratch,
) -> Option<(SocketAddr, Bytes)> {
    let params = *node.params();
    if let Some(max_age) = params.descriptor_max_age {
        pool.prune(now, max_age);
    }
    let peer = node.select_peer_with(rng, &mut scratch.candidates)?;
    let samples = pool.draw(rng, params.random_samples);
    let descriptors = node.create_message_at(peer.id(), &samples, true, now, &mut scratch.message);
    let mut message =
        WireMessage::unstamped(MessageKind::Request, node.own_descriptor(), descriptors);
    if let Some(key) = params.descriptor_verifier {
        seal(&mut message, key);
    }
    Some((peer.address(), encode(&message)))
}

/// Applies one received datagram to the node through the clocked (and, under a
/// verification key, verified) receive path. For requests the passive thread's
/// answer is composed *before* the request is applied (Fig. 2b) and returned
/// for the caller to send; responses return `None`.
///
/// Descriptors that pass verification feed the peer's [`SamplePool`] first, so
/// the passive thread's answer draws its `cr` samples from the same sampling
/// service the active thread uses (Fig. 2 runs `CREATEMESSAGE` identically on
/// both paths) — with the sample count bounded by what the pool actually
/// holds, never a hard-coded constant.
pub(crate) fn apply_message(
    node: &mut BootstrapNode<SocketAddr>,
    rng: &mut SimRng,
    pool: &mut SamplePool,
    message: WireMessage,
    now: u64,
    scratch: &mut ProtocolScratch,
) -> Option<Bytes> {
    let params = *node.params();
    let own_id = node.own_descriptor().id();

    // Stage the received descriptors (carried list plus the sender, held
    // *last*) and, under a verification key, their per-descriptor verdicts:
    // `stamps[0]` covers the sender, so the verdicts are aligned to `received`
    // order. Unstamped or miscounted datagrams on a keyed deployment are
    // rejected wholesale.
    scratch.received.clear();
    scratch.received.extend_from_slice(&message.descriptors);
    scratch.received.push(message.sender);
    let verified = params.descriptor_verifier.is_some();
    scratch.verdicts.clear();
    if let Some(key) = params.descriptor_verifier {
        if message.stamps.len() == scratch.received.len() {
            let count = scratch.received.len();
            scratch
                .verdicts
                .extend(
                    scratch
                        .received
                        .iter()
                        .enumerate()
                        .map(|(index, descriptor)| {
                            message.stamps[(index + 1) % count] == descriptor_stamp(key, descriptor)
                        }),
                );
        } else {
            scratch.verdicts.resize(scratch.received.len(), false);
        }
    }

    // The sampling service learns only from its own layer's payloads, plus
    // every verified sender heartbeat. Bootstrap payloads are ring- and
    // prefix-targeted table entries: letting their ~`2c` descriptors per
    // datagram into a bounded pool drowns the uniform samples in ring-local
    // neighbours, and at a few hundred nodes the `cr` draws stop being random
    // and last-mile convergence stalls. Forged or unstamped descriptors must
    // never be re-gossiped as samples either way.
    let sampling_payload = matches!(
        message.kind,
        MessageKind::SampleRequest | MessageKind::SampleResponse
    );
    let sender_index = scratch.received.len() - 1;
    let verdicts = &scratch.verdicts;
    pool.ingest(
        rng,
        scratch
            .received
            .iter()
            .enumerate()
            .filter(|&(index, descriptor)| {
                (sampling_payload || index == sender_index)
                    && descriptor.id() != own_id
                    && (!verified || verdicts[index])
            })
            .map(|(_, descriptor)| *descriptor),
    );
    if let Some(max_age) = params.descriptor_max_age {
        pool.prune(now, max_age);
    }

    let answer = match message.kind {
        MessageKind::Request => {
            let samples = pool.draw(rng, params.random_samples);
            let descriptors = node.create_message_at(
                message.sender.id(),
                &samples,
                false,
                now,
                &mut scratch.message,
            );
            let mut answer =
                WireMessage::unstamped(MessageKind::Response, node.own_descriptor(), descriptors);
            if let Some(key) = params.descriptor_verifier {
                seal(&mut answer, key);
            }
            Some(encode(&answer))
        }
        MessageKind::SampleRequest => {
            let samples = pool.draw(rng, params.random_samples);
            let mut answer =
                WireMessage::unstamped(MessageKind::SampleResponse, node.own_descriptor(), samples);
            if let Some(key) = params.descriptor_verifier {
                seal(&mut answer, key);
            }
            Some(encode(&answer))
        }
        MessageKind::Response | MessageKind::SampleResponse => None,
    };

    // Merge bootstrap-layer messages into the protocol tables through
    // `receive_at`, or `receive_verified_at` when a key is configured: a
    // descriptor merges only with a matching identity stamp. Sampling-layer
    // messages feed the pool alone — the two layers stay separate, exactly as
    // in the paper's architecture.
    if matches!(message.kind, MessageKind::Request | MessageKind::Response) {
        let received = &scratch.received;
        let verdicts = &scratch.verdicts;
        if verified {
            node.receive_verified_at(received, now, &mut scratch.merge, |descriptor| {
                received
                    .iter()
                    .position(|candidate| candidate == descriptor)
                    .is_some_and(|index| verdicts[index])
            });
        } else {
            node.receive_at(received, now, &mut scratch.merge);
        }
    }
    answer
}

/// A cheap, cloneable view of one running peer: its identity, address and
/// shared protocol state. Both transport modes expose their peers through
/// handles, so supervisors ([`crate::cluster::Cluster`]) and tests work
/// identically against thread-per-peer and driver clusters.
#[derive(Debug, Clone)]
pub struct PeerHandle {
    id: NodeId,
    address: SocketAddr,
    state: Arc<Mutex<BootstrapNode<SocketAddr>>>,
    alive: Arc<AtomicBool>,
    exchanges: Arc<AtomicU64>,
}

impl PeerHandle {
    pub(crate) fn new(
        id: NodeId,
        address: SocketAddr,
        state: Arc<Mutex<BootstrapNode<SocketAddr>>>,
    ) -> Self {
        PeerHandle {
            id,
            address,
            state,
            alive: Arc::new(AtomicBool::new(true)),
            exchanges: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The peer's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The peer's socket address.
    pub fn address(&self) -> SocketAddr {
        self.address
    }

    /// The peer's current descriptor — live, reflecting the latest heartbeat
    /// re-stamp (not a stale timestamp-0 copy).
    pub fn descriptor(&self) -> Descriptor<SocketAddr> {
        self.state.lock().own_descriptor()
    }

    /// Whether the peer is still running (not killed or shut down).
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Relaxed)
    }

    /// Number of exchanges the peer has initiated so far.
    pub fn exchanges_initiated(&self) -> u64 {
        self.exchanges.load(Ordering::Relaxed)
    }

    /// A snapshot of the peer's current protocol state.
    pub fn state_snapshot(&self) -> BootstrapNode<SocketAddr> {
        self.state.lock().clone()
    }

    pub(crate) fn state(&self) -> &Arc<Mutex<BootstrapNode<SocketAddr>>> {
        &self.state
    }

    pub(crate) fn record_exchange(&self) {
        self.exchanges.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn mark_dead(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }
}

/// A peer whose socket is bound but whose protocol thread has not started: the
/// first phase of the two-phase start. Binding everything first lets a
/// supervisor learn every address before any peer begins gossiping, so every
/// contact list — including the first peer's — can name peers that actually
/// exist.
#[derive(Debug)]
pub struct BoundUdpPeer {
    socket: UdpSocket,
    id: NodeId,
    address: SocketAddr,
    params: BootstrapParams,
    seed: u64,
}

impl BoundUdpPeer {
    /// Binds a socket on an ephemeral loopback port.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while binding or configuring the socket.
    pub fn bind(id: NodeId, params: BootstrapParams, seed: u64) -> io::Result<Self> {
        let socket = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let address = socket.local_addr()?;
        Ok(BoundUdpPeer {
            socket,
            id,
            address,
            params,
            seed,
        })
    }

    /// The bound socket address.
    pub fn address(&self) -> SocketAddr {
        self.address
    }

    /// The peer's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The peer's start-of-life descriptor (timestamp 0 — the wire clock
    /// starts when the protocol thread does).
    pub fn descriptor(&self) -> Descriptor<SocketAddr> {
        Descriptor::new(self.id, self.address, 0)
    }

    /// Starts the protocol thread with the given contact list: the second
    /// phase of the two-phase start. Traffic is counted against `stats`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while spawning the thread, or
    /// `InvalidInput` when the parameters are invalid.
    pub fn start(
        self,
        contacts: Vec<Descriptor<SocketAddr>>,
        stats: Arc<NetStats>,
    ) -> io::Result<UdpPeer> {
        let own = self.descriptor();
        let mut node = BootstrapNode::new(own, &self.params)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        node.initialize(contacts.iter().copied());

        let handle = PeerHandle::new(self.id, self.address, Arc::new(Mutex::new(node)));
        let thread_handle = handle.clone();
        let socket = self.socket;
        let params = self.params;
        let seed = self.seed;
        let thread = std::thread::Builder::new()
            .name(format!("bss-peer-{}", self.id))
            .spawn(move || {
                peer_loop(socket, thread_handle, contacts, params, seed, stats);
            })?;

        Ok(UdpPeer {
            handle,
            thread: Some(thread),
        })
    }
}

/// A running UDP peer (socket + protocol thread).
#[derive(Debug)]
pub struct UdpPeer {
    handle: PeerHandle,
    thread: Option<JoinHandle<()>>,
}

impl UdpPeer {
    /// Binds a socket on an ephemeral loopback port and starts the protocol
    /// thread — [`BoundUdpPeer::bind`] and [`BoundUdpPeer::start`] in one
    /// step, for peers that do not need the two-phase start.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while binding or configuring the socket.
    pub fn spawn(config: UdpPeerConfig) -> io::Result<Self> {
        BoundUdpPeer::bind(config.id, config.params, config.seed)?
            .start(config.contacts, Arc::new(NetStats::new()))
    }

    /// The peer's socket address.
    pub fn address(&self) -> SocketAddr {
        self.handle.address()
    }

    /// The peer's identifier.
    pub fn id(&self) -> NodeId {
        self.handle.id()
    }

    /// The peer's current descriptor (live — reflects heartbeat re-stamps).
    pub fn descriptor(&self) -> Descriptor<SocketAddr> {
        self.handle.descriptor()
    }

    /// Number of exchanges the peer has initiated so far.
    pub fn exchanges_initiated(&self) -> u64 {
        self.handle.exchanges_initiated()
    }

    /// A snapshot of the peer's current protocol state.
    pub fn state_snapshot(&self) -> BootstrapNode<SocketAddr> {
        self.handle.state_snapshot()
    }

    /// A cloneable view of this peer.
    pub fn handle(&self) -> &PeerHandle {
        &self.handle
    }

    /// Asks the protocol thread to stop and waits for it to exit.
    pub fn shutdown(mut self) {
        self.handle.mark_dead();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for UdpPeer {
    fn drop(&mut self) {
        self.handle.mark_dead();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

fn peer_loop(
    socket: UdpSocket,
    handle: PeerHandle,
    contacts: Vec<Descriptor<SocketAddr>>,
    params: BootstrapParams,
    seed: u64,
    stats: Arc<NetStats>,
) {
    let mut rng = SimRng::seed_from(seed);
    let cycle_millis = effective_cycle_millis(&params);
    let period = Duration::from_millis(cycle_millis);
    let started = Instant::now();
    // Desynchronise the peers' periodic timers, like the random start phase in §5.
    let mut next_active = started + period.mul_f64(rng.unit_f64());
    let mut pool = SamplePool::new(contacts);
    let mut scratch = ProtocolScratch::default();
    let mut buffer = [0u8; 65_536];

    while handle.is_alive() {
        // Passive thread: serve whatever arrives until the next active deadline.
        match socket.recv_from(&mut buffer) {
            Ok((length, from)) => {
                stats.record_received(length);
                match decode(&buffer[..length]) {
                    Ok(message) => {
                        let now = wire_cycle(started, cycle_millis);
                        let answer = {
                            let mut node = handle.state().lock();
                            apply_message(
                                &mut node,
                                &mut rng,
                                &mut pool,
                                message,
                                now,
                                &mut scratch,
                            )
                        };
                        if let Some(payload) = answer {
                            match socket.send_to(&payload, from) {
                                Ok(sent) => stats.record_sent(sent),
                                Err(_) => stats.record_send_failure(),
                            }
                        }
                    }
                    Err(_) => stats.record_decode_failure(),
                }
            }
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => {}
        }

        // Active thread: every Δ, select a peer and send it a request — and
        // let the sampling layer gossip one pool draw of its own.
        if Instant::now() >= next_active {
            next_active += period;
            let now = wire_cycle(started, cycle_millis);
            let (request, sampling) = {
                let mut node = handle.state().lock();
                let request = compose_request(&mut node, &mut rng, &mut pool, now, &mut scratch);
                let sampling = compose_sample_exchange(&node, &mut rng, &mut pool, now);
                (request, sampling)
            };
            if let Some((target, payload)) = request {
                handle.record_exchange();
                match socket.send_to(&payload, target) {
                    Ok(sent) => stats.record_sent(sent),
                    Err(_) => stats.record_send_failure(),
                }
            }
            if let Some((target, payload)) = sampling {
                match socket.send_to(&payload, target) {
                    Ok(sent) => stats.record_sent(sent),
                    Err(_) => stats.record_send_failure(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BootstrapParams {
        BootstrapParams {
            leaf_set_size: 4,
            random_samples: 4,
            cycle_millis: 30,
            ..BootstrapParams::paper_default()
        }
    }

    fn spawn_pair(params: BootstrapParams) -> io::Result<(UdpPeer, UdpPeer)> {
        let first = UdpPeer::spawn(UdpPeerConfig {
            id: NodeId::new(0x1111_0000_0000_0000),
            params,
            contacts: vec![],
            seed: 1,
        })?;
        let second = UdpPeer::spawn(UdpPeerConfig {
            id: NodeId::new(0x9999_0000_0000_0000),
            params,
            contacts: vec![first.descriptor()],
            seed: 2,
        })?;
        Ok((first, second))
    }

    fn wait_linked(first: &UdpPeer, second: &UdpPeer) -> bool {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            let first_knows = first.state_snapshot().leaf_set().contains(second.id());
            let second_knows = second.state_snapshot().leaf_set().contains(first.id());
            if first_knows && second_knows {
                return true;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        false
    }

    #[test]
    fn a_pair_of_peers_learns_about_each_other() {
        let (first, second) = match spawn_pair(params()) {
            Ok(pair) => pair,
            Err(error) => {
                eprintln!("skipping UDP peer test: {error}");
                return;
            }
        };
        assert!(
            wait_linked(&first, &second),
            "peers never learned about each other"
        );
        assert!(second.exchanges_initiated() > 0);
        assert_ne!(first.address(), second.address());
        first.shutdown();
        second.shutdown();
    }

    #[test]
    fn aging_peers_heartbeat_their_own_descriptor_on_the_wire() {
        let aged = BootstrapParams {
            descriptor_max_age: Some(4),
            ..params()
        };
        let (first, second) = match spawn_pair(aged) {
            Ok(pair) => pair,
            Err(error) => {
                eprintln!("skipping UDP peer test: {error}");
                return;
            }
        };
        assert!(
            wait_linked(&first, &second),
            "aged peers never learned about each other"
        );
        // Several cycles in, the active thread must have re-stamped the own
        // descriptor with the current wire cycle — the timestamp-0 descriptor
        // of an aging peer would otherwise expire out of every table.
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut restamped = false;
        while Instant::now() < deadline {
            if second.descriptor().timestamp() > 0 {
                restamped = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(restamped, "heartbeat never re-stamped the own descriptor");
        first.shutdown();
        second.shutdown();
    }

    #[test]
    fn keyed_peers_exchange_stamped_datagrams_and_still_link() {
        let keyed = BootstrapParams {
            descriptor_verifier: Some(0xfeed_beef),
            ..params()
        };
        let (first, second) = match spawn_pair(keyed) {
            Ok(pair) => pair,
            Err(error) => {
                eprintln!("skipping UDP peer test: {error}");
                return;
            }
        };
        assert!(
            wait_linked(&first, &second),
            "keyed peers never learned about each other"
        );
        first.shutdown();
        second.shutdown();
    }

    #[test]
    fn peer_exposes_descriptor_and_id() {
        let peer = match UdpPeer::spawn(UdpPeerConfig {
            id: NodeId::new(7),
            params: params(),
            contacts: vec![],
            seed: 3,
        }) {
            Ok(peer) => peer,
            Err(error) => {
                eprintln!("skipping UDP peer test: {error}");
                return;
            }
        };
        assert_eq!(peer.descriptor().id(), NodeId::new(7));
        assert_eq!(peer.descriptor().address(), peer.address());
        assert_eq!(peer.id(), NodeId::new(7));
        assert!(peer.handle().is_alive());
        peer.shutdown();
    }

    #[test]
    fn keyed_merges_reject_unstamped_and_forged_descriptors() {
        // Unit-level check of the verification glue, no sockets involved.
        let key = 0xdead_cafe;
        let keyed = BootstrapParams {
            leaf_set_size: 4,
            random_samples: 4,
            descriptor_verifier: Some(key),
            ..BootstrapParams::paper_default()
        };
        let addr = |port: u16| SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
        let own = Descriptor::new(NodeId::new(1000), addr(1), 0);
        let mut node = BootstrapNode::new(own, &keyed).unwrap();
        let mut pool = SamplePool::new([]);
        let mut scratch = ProtocolScratch::default();
        let mut rng = SimRng::seed_from(1);

        // An unstamped message on a keyed deployment merges nothing — and
        // feeds nothing to the sampling pool.
        let honest = Descriptor::new(NodeId::new(2000), addr(2), 0);
        let unstamped = WireMessage::unstamped(MessageKind::Response, honest, vec![]);
        apply_message(&mut node, &mut rng, &mut pool, unstamped, 0, &mut scratch);
        assert!(
            node.leaf_set().is_empty(),
            "unstamped sender must not merge"
        );
        assert!(
            pool.entries.is_empty(),
            "unstamped sender must not be sampled"
        );

        // A properly sealed message merges; a forged descriptor inside it
        // (stamp minted for a different identifier) is rejected alone.
        let forged = Descriptor::new(NodeId::new(3000), addr(3), 0);
        let mut message = WireMessage::unstamped(MessageKind::Response, honest, vec![forged]);
        seal(&mut message, key);
        // Corrupt the forged descriptor's stamp: bind it to another id.
        message.stamps[1] = descriptor_stamp(key, &Descriptor::new(NodeId::new(4000), addr(3), 0));
        apply_message(&mut node, &mut rng, &mut pool, message, 0, &mut scratch);
        assert!(
            node.leaf_set().contains(honest.id()),
            "sealed sender merges"
        );
        assert!(
            !node.leaf_set().contains(forged.id()),
            "forged descriptor must be rejected"
        );
        assert!(
            pool.entries.iter().any(|entry| entry.id() == honest.id()),
            "verified sender feeds the sampling pool"
        );
        assert!(
            pool.entries.iter().all(|entry| entry.id() != forged.id()),
            "forged descriptor must not be re-gossiped as a sample"
        );
    }

    #[test]
    fn sample_pool_keeps_freshest_stays_bounded_and_prunes_expired() {
        let addr = |port: u16| SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::LOCALHOST, port));
        let mut pool = SamplePool::new([Descriptor::new(NodeId::new(1), addr(1), 0)]);
        pool.capacity = 3;
        let mut rng = SimRng::seed_from(3);

        // A fresher copy of a known identifier replaces the stale one in place.
        pool.ingest(&mut rng, [Descriptor::new(NodeId::new(1), addr(1), 5)]);
        assert_eq!(pool.entries.len(), 1);
        assert_eq!(pool.entries[0].timestamp(), 5);

        // Filling past capacity stays bounded and always admits the arrival —
        // the victim is a uniformly random incumbent, *not* the oldest entry,
        // so stale-but-alive descriptors keep circulating as samples.
        pool.ingest(
            &mut rng,
            [
                Descriptor::new(NodeId::new(2), addr(2), 2),
                Descriptor::new(NodeId::new(3), addr(3), 8),
                Descriptor::new(NodeId::new(4), addr(4), 7),
            ],
        );
        assert_eq!(pool.entries.len(), 3);
        assert!(
            pool.entries
                .iter()
                .any(|entry| entry.id() == NodeId::new(4)),
            "the newest arrival must always be admitted"
        );

        // Pruning drops everything beyond the aging bound.
        pool.prune(10, 3);
        assert!(pool.entries.iter().all(|entry| entry.timestamp() >= 7));

        // Draws are bounded by what the pool holds.
        assert_eq!(pool.draw(&mut rng, 10).len(), pool.entries.len());
    }
}
