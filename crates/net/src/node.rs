//! A single UDP peer running the bootstrapping service.
//!
//! Each peer owns one UDP socket bound to the loopback interface and one
//! background thread. The thread implements both threads of Fig. 2: on a periodic
//! timer it selects a peer, composes a message and sends a request (active
//! thread); whenever a request arrives it answers with its own message and applies
//! the received one (passive thread); responses are simply applied. The node-local
//! state is the very same [`BootstrapNode`] the simulator uses, instantiated with
//! `SocketAddr` as the address type.

use crate::codec::{decode, encode, MessageKind, WireMessage};
use bss_core::node::BootstrapNode;
use bss_util::config::BootstrapParams;
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use parking_lot::Mutex;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of one UDP peer.
#[derive(Debug, Clone)]
pub struct UdpPeerConfig {
    /// The peer's identifier.
    pub id: NodeId,
    /// Bootstrapping-service parameters. `cycle_millis` is the active-thread
    /// period Δ.
    pub params: BootstrapParams,
    /// The static random contact list standing in for the peer sampling service.
    pub contacts: Vec<Descriptor<SocketAddr>>,
    /// Seed for the peer's local randomness (peer selection, sample choice).
    pub seed: u64,
}

/// A running UDP peer.
#[derive(Debug)]
pub struct UdpPeer {
    address: SocketAddr,
    id: NodeId,
    state: Arc<Mutex<BootstrapNode<SocketAddr>>>,
    running: Arc<AtomicBool>,
    exchanges: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl UdpPeer {
    /// Binds a socket on an ephemeral loopback port and starts the protocol
    /// thread.
    ///
    /// # Errors
    ///
    /// Returns any I/O error raised while binding or configuring the socket.
    pub fn spawn(config: UdpPeerConfig) -> io::Result<Self> {
        let socket = UdpSocket::bind(SocketAddrV4::new(Ipv4Addr::LOCALHOST, 0))?;
        socket.set_read_timeout(Some(Duration::from_millis(10)))?;
        let address = socket.local_addr()?;

        let own = Descriptor::new(config.id, address, 0);
        let mut node = BootstrapNode::new(own, &config.params)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        node.initialize(config.contacts.iter().copied());

        let state = Arc::new(Mutex::new(node));
        let running = Arc::new(AtomicBool::new(true));
        let exchanges = Arc::new(AtomicU64::new(0));

        let thread_state = Arc::clone(&state);
        let thread_running = Arc::clone(&running);
        let thread_exchanges = Arc::clone(&exchanges);
        let contacts = config.contacts;
        let params = config.params;
        let seed = config.seed;
        let handle = std::thread::Builder::new()
            .name(format!("bss-peer-{}", config.id))
            .spawn(move || {
                peer_loop(
                    socket,
                    thread_state,
                    thread_running,
                    thread_exchanges,
                    contacts,
                    params,
                    seed,
                );
            })?;

        Ok(UdpPeer {
            address,
            id: config.id,
            state,
            running,
            exchanges,
            handle: Some(handle),
        })
    }

    /// The peer's socket address.
    pub fn address(&self) -> SocketAddr {
        self.address
    }

    /// The peer's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The peer's descriptor (timestamp zero).
    pub fn descriptor(&self) -> Descriptor<SocketAddr> {
        Descriptor::new(self.id, self.address, 0)
    }

    /// Number of exchanges the peer has initiated so far.
    pub fn exchanges_initiated(&self) -> u64 {
        self.exchanges.load(Ordering::Relaxed)
    }

    /// A snapshot of the peer's current protocol state.
    pub fn state_snapshot(&self) -> BootstrapNode<SocketAddr> {
        self.state.lock().clone()
    }

    /// Asks the protocol thread to stop and waits for it to exit.
    pub fn shutdown(mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for UdpPeer {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn peer_loop(
    socket: UdpSocket,
    state: Arc<Mutex<BootstrapNode<SocketAddr>>>,
    running: Arc<AtomicBool>,
    exchanges: Arc<AtomicU64>,
    contacts: Vec<Descriptor<SocketAddr>>,
    params: BootstrapParams,
    seed: u64,
) {
    let mut rng = SimRng::seed_from(seed);
    let period = Duration::from_millis(params.cycle_millis.max(10));
    // Desynchronise the peers' periodic timers, like the random start phase in §5.
    let mut next_active = Instant::now() + period.mul_f64(rng.unit_f64());
    let mut buffer = [0u8; 65_536];
    let started = Instant::now();

    while running.load(Ordering::Relaxed) {
        // Passive thread: serve whatever arrives until the next active deadline.
        match socket.recv_from(&mut buffer) {
            Ok((length, from)) => {
                if let Ok(message) = decode(&buffer[..length]) {
                    handle_datagram(&socket, &state, &params, &mut rng, message, from, &started);
                }
            }
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut => {}
            Err(_) => {}
        }

        // Active thread: every Δ, select a peer and send it a request.
        if Instant::now() >= next_active {
            next_active += period;
            exchanges.fetch_add(1, Ordering::Relaxed);
            let now = started.elapsed().as_millis() as u64;
            let (target, payload) = {
                let mut node = state.lock();
                let Some(peer) = node.select_peer(&mut rng) else {
                    continue;
                };
                let samples = rng.sample(&contacts, params.random_samples.min(contacts.len()));
                let descriptors = node.create_message(peer.id(), &samples, true);
                let message = WireMessage {
                    kind: MessageKind::Request,
                    sender: node.own_descriptor().refreshed(now),
                    descriptors,
                };
                (peer.address(), encode(&message))
            };
            let _ = socket.send_to(&payload, target);
        }
    }
}

fn handle_datagram(
    socket: &UdpSocket,
    state: &Arc<Mutex<BootstrapNode<SocketAddr>>>,
    params: &BootstrapParams,
    rng: &mut SimRng,
    message: WireMessage,
    from: SocketAddr,
    started: &Instant,
) {
    let now = started.elapsed().as_millis() as u64;
    let mut node = state.lock();
    match message.kind {
        MessageKind::Request => {
            // Compose the answer before applying the request (Fig. 2b), then apply.
            let samples = rng.sample(&message.descriptors, params.random_samples.min(8));
            let answer_descriptors = node.create_message(message.sender.id(), &samples, false);
            let answer = WireMessage {
                kind: MessageKind::Response,
                sender: node.own_descriptor().refreshed(now),
                descriptors: answer_descriptors,
            };
            let mut received = message.descriptors;
            received.push(message.sender);
            node.receive(&received);
            drop(node);
            let _ = socket.send_to(&encode(&answer), from);
        }
        MessageKind::Response => {
            let mut received = message.descriptors;
            received.push(message.sender);
            node.receive(&received);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BootstrapParams {
        BootstrapParams {
            leaf_set_size: 4,
            random_samples: 4,
            cycle_millis: 30,
            ..BootstrapParams::paper_default()
        }
    }

    #[test]
    fn a_pair_of_peers_learns_about_each_other() {
        let first = UdpPeer::spawn(UdpPeerConfig {
            id: NodeId::new(0x1111_0000_0000_0000),
            params: params(),
            contacts: vec![],
            seed: 1,
        })
        .expect("bind first peer");
        let second = UdpPeer::spawn(UdpPeerConfig {
            id: NodeId::new(0x9999_0000_0000_0000),
            params: params(),
            contacts: vec![first.descriptor()],
            seed: 2,
        })
        .expect("bind second peer");

        // Within a few active periods the second peer must have contacted the
        // first, and both must list each other in their leaf sets.
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut linked = false;
        while Instant::now() < deadline {
            let first_knows = first.state_snapshot().leaf_set().contains(second.id());
            let second_knows = second.state_snapshot().leaf_set().contains(first.id());
            if first_knows && second_knows {
                linked = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(linked, "peers never learned about each other");
        assert!(second.exchanges_initiated() > 0);
        assert_ne!(first.address(), second.address());
        first.shutdown();
        second.shutdown();
    }

    #[test]
    fn peer_exposes_descriptor_and_id() {
        let peer = UdpPeer::spawn(UdpPeerConfig {
            id: NodeId::new(7),
            params: params(),
            contacts: vec![],
            seed: 3,
        })
        .expect("bind peer");
        assert_eq!(peer.descriptor().id(), NodeId::new(7));
        assert_eq!(peer.descriptor().address(), peer.address());
        assert_eq!(peer.id(), NodeId::new(7));
        peer.shutdown();
    }
}
