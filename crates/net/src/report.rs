//! Traffic accounting and the wire-side run report.
//!
//! [`NetStats`] is the shared atomic counter block every socket touch goes
//! through — both the thread-per-peer loops and the single-loop driver feed the
//! same instance, so a cluster has one traffic story regardless of mode.
//! [`NetReport`] is the wire twin of the simulator's
//! `RunReport` (`bss_core::experiment`): the same convergence series and
//! traffic summary, keyed by wall-clock milliseconds instead of cycles, so net
//! runs land in the same plotting and CI tooling as sim runs.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared datagram counters (all relaxed: the numbers are reporting, not
/// synchronisation).
#[derive(Debug, Default)]
pub struct NetStats {
    datagrams_sent: AtomicU64,
    bytes_sent: AtomicU64,
    datagrams_received: AtomicU64,
    bytes_received: AtomicU64,
    send_failures: AtomicU64,
    decode_failures: AtomicU64,
}

impl NetStats {
    /// A zeroed counter block.
    pub fn new() -> Self {
        NetStats::default()
    }

    /// Records one successfully sent datagram of `bytes` bytes.
    pub fn record_sent(&self, bytes: usize) {
        self.datagrams_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one received datagram of `bytes` bytes.
    pub fn record_received(&self, bytes: usize) {
        self.datagrams_received.fetch_add(1, Ordering::Relaxed);
        self.bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one failed send (full socket buffer, unreachable peer, ...).
    pub fn record_send_failure(&self) {
        self.send_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one datagram that failed to decode.
    pub fn record_decode_failure(&self) {
        self.decode_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters.
    pub fn snapshot(&self) -> NetTraffic {
        NetTraffic {
            datagrams_sent: self.datagrams_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            datagrams_received: self.datagrams_received.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            send_failures: self.send_failures.load(Ordering::Relaxed),
            decode_failures: self.decode_failures.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a cluster's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetTraffic {
    /// Datagrams handed to the kernel.
    pub datagrams_sent: u64,
    /// Payload bytes handed to the kernel.
    pub bytes_sent: u64,
    /// Datagrams received and counted (before decoding).
    pub datagrams_received: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Sends the kernel refused (full buffers, unreachable peers).
    pub send_failures: u64,
    /// Received datagrams that failed to decode.
    pub decode_failures: u64,
}

/// The report of one wire run: RunReport-shaped, keyed by milliseconds.
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Cluster mode label (`"thread"` or `"driver"`).
    pub mode: &'static str,
    /// Number of peers spawned.
    pub nodes: usize,
    /// The cluster seed.
    pub seed: u64,
    /// Whether every alive peer reached perfect tables.
    pub converged: bool,
    /// Milliseconds from cluster start to the first perfect measurement.
    pub convergence_millis: Option<u64>,
    /// Milliseconds from cluster start to the end of monitoring.
    pub elapsed_millis: u64,
    /// Final missing-leaf-entry proportion.
    pub final_missing_leaf: f64,
    /// Final missing-prefix-entry proportion.
    pub final_missing_prefix: f64,
    /// Final fraction of stored descriptors naming dead peers.
    pub dead_descriptor_fraction: f64,
    /// Traffic counters at the end of monitoring.
    pub traffic: NetTraffic,
    /// `(elapsed ms, missing leaf proportion)` samples.
    pub leaf_series: Vec<(u64, f64)>,
    /// `(elapsed ms, missing prefix proportion)` samples.
    pub prefix_series: Vec<(u64, f64)>,
    /// `(elapsed ms, dead-descriptor fraction)` samples.
    pub dead_series: Vec<(u64, f64)>,
}

impl NetReport {
    /// Datagrams sent per wall-clock second over the monitored window.
    pub fn datagrams_per_second(&self) -> f64 {
        self.traffic.datagrams_sent as f64 * 1000.0 / self.elapsed_millis.max(1) as f64
    }

    /// Serializes the report as JSON, mirroring `RunReport::to_json`'s shape
    /// (`engine` is always `"net"`; series are `[[millis, value], ...]`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"engine\": \"net\",");
        let _ = writeln!(out, "  \"mode\": \"{}\",", self.mode);
        let _ = writeln!(out, "  \"network_size\": {},", self.nodes);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"converged\": {},", self.converged);
        let _ = writeln!(
            out,
            "  \"convergence_millis\": {},",
            self.convergence_millis
                .map_or_else(|| "null".to_owned(), |m| m.to_string())
        );
        let _ = writeln!(out, "  \"elapsed_millis\": {},", self.elapsed_millis);
        let _ = writeln!(
            out,
            "  \"final_missing_leaf\": {:.6e},",
            self.final_missing_leaf
        );
        let _ = writeln!(
            out,
            "  \"final_missing_prefix\": {:.6e},",
            self.final_missing_prefix
        );
        let _ = writeln!(
            out,
            "  \"dead_descriptor_fraction\": {:.6e},",
            self.dead_descriptor_fraction
        );
        let _ = writeln!(
            out,
            "  \"datagrams_per_second\": {:.2},",
            self.datagrams_per_second()
        );
        let _ = writeln!(
            out,
            "  \"traffic\": {{\"datagrams_sent\": {}, \"bytes_sent\": {}, \
             \"datagrams_received\": {}, \"bytes_received\": {}, \
             \"send_failures\": {}, \"decode_failures\": {}}},",
            self.traffic.datagrams_sent,
            self.traffic.bytes_sent,
            self.traffic.datagrams_received,
            self.traffic.bytes_received,
            self.traffic.send_failures,
            self.traffic.decode_failures,
        );
        let _ = writeln!(out, "  \"series\": {{");
        write_series(&mut out, "missing_leaf", &self.leaf_series, true);
        write_series(&mut out, "missing_prefix", &self.prefix_series, true);
        write_series(
            &mut out,
            "dead_descriptor_fraction",
            &self.dead_series,
            false,
        );
        let _ = writeln!(out, "  }}");
        out.push('}');
        out
    }
}

fn write_series(out: &mut String, name: &str, points: &[(u64, f64)], trailing_comma: bool) {
    let _ = write!(out, "    \"{name}\": [");
    for (index, (millis, value)) in points.iter().enumerate() {
        if index > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "[{millis}, {value:.6e}]");
    }
    let _ = writeln!(out, "]{}", if trailing_comma { "," } else { "" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate_and_snapshot() {
        let stats = NetStats::new();
        stats.record_sent(100);
        stats.record_sent(50);
        stats.record_received(100);
        stats.record_send_failure();
        stats.record_decode_failure();
        let traffic = stats.snapshot();
        assert_eq!(traffic.datagrams_sent, 2);
        assert_eq!(traffic.bytes_sent, 150);
        assert_eq!(traffic.datagrams_received, 1);
        assert_eq!(traffic.bytes_received, 100);
        assert_eq!(traffic.send_failures, 1);
        assert_eq!(traffic.decode_failures, 1);
    }

    #[test]
    fn report_serializes_to_runreport_shaped_json() {
        let report = NetReport {
            mode: "driver",
            nodes: 64,
            seed: 7,
            converged: true,
            convergence_millis: Some(1500),
            elapsed_millis: 2000,
            final_missing_leaf: 0.0,
            final_missing_prefix: 0.0,
            dead_descriptor_fraction: 0.0,
            traffic: NetTraffic {
                datagrams_sent: 4000,
                bytes_sent: 1_000_000,
                datagrams_received: 3900,
                bytes_received: 980_000,
                send_failures: 0,
                decode_failures: 0,
            },
            leaf_series: vec![(0, 1.0), (1500, 0.0)],
            prefix_series: vec![(0, 1.0), (1500, 0.0)],
            dead_series: vec![(0, 0.0)],
        };
        let json = report.to_json();
        assert!(json.contains("\"engine\": \"net\""));
        assert!(json.contains("\"mode\": \"driver\""));
        assert!(json.contains("\"convergence_millis\": 1500"));
        assert!(json.contains("\"missing_leaf\": [[0, 1.000000e0], [1500, 0.000000e0]]"));
        assert!((report.datagrams_per_second() - 2000.0).abs() < 1e-9);
        // Well-formed: balanced braces and brackets.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );

        let unconverged = NetReport {
            converged: false,
            convergence_millis: None,
            ..report
        };
        assert!(unconverged
            .to_json()
            .contains("\"convergence_millis\": null"));
    }
}
