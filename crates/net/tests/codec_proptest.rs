//! Decode-robustness properties for the wire codec: `decode` must be total —
//! any byte string either decodes or returns `Err`, never panics — and
//! encode/decode must be a stable round trip, stamped or not.

use bss_net::codec::{decode, encode, seal, MessageKind, WireMessage};
use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::{Ipv4Addr, SocketAddr, SocketAddrV4};

fn descriptor(raw: (u64, u32, u16, u64)) -> Descriptor<SocketAddr> {
    let (id, ip, port, timestamp) = raw;
    let address = SocketAddr::V4(SocketAddrV4::new(Ipv4Addr::from(ip), port));
    Descriptor::new(NodeId::new(id), address, timestamp)
}

fn message(
    request: bool,
    sender: (u64, u32, u16, u64),
    carried: Vec<(u64, u32, u16, u64)>,
    key: Option<u64>,
) -> WireMessage {
    let kind = if request {
        MessageKind::Request
    } else {
        MessageKind::Response
    };
    let mut message = WireMessage::unstamped(
        kind,
        descriptor(sender),
        carried.into_iter().map(descriptor).collect(),
    );
    if let Some(key) = key {
        seal(&mut message, key);
    }
    message
}

proptest! {
    #[test]
    fn round_trips_are_stable(
        request in any::<bool>(),
        sender in (any::<u64>(), any::<u32>(), any::<u16>(), any::<u64>()),
        carried in vec((any::<u64>(), any::<u32>(), any::<u16>(), any::<u64>()), 0..40),
        stamped in any::<bool>(),
        key in any::<u64>(),
    ) {
        let original = message(request, sender, carried, stamped.then_some(key));
        let encoded = encode(&original);
        let decoded = decode(&encoded).expect("a fresh encoding must decode");
        prop_assert_eq!(&decoded, &original);
        // Stability: re-encoding the decoded message yields the same bytes.
        prop_assert_eq!(encode(&decoded), encoded);
    }

    #[test]
    fn truncations_of_valid_encodings_are_rejected_not_panics(
        sender in (any::<u64>(), any::<u32>(), any::<u16>(), any::<u64>()),
        carried in vec((any::<u64>(), any::<u32>(), any::<u16>(), any::<u64>()), 0..20),
        stamped in any::<bool>(),
        cut in any::<u64>(),
    ) {
        let original = message(true, sender, carried, stamped.then_some(1));
        let encoded = encode(&original);
        // Every strict prefix is malformed: the header advertises more bytes
        // than remain.
        let length = (cut % encoded.len() as u64) as usize;
        prop_assert!(decode(&encoded[..length]).is_err());
    }

    #[test]
    fn byte_mutations_never_panic_the_decoder(
        sender in (any::<u64>(), any::<u32>(), any::<u16>(), any::<u64>()),
        carried in vec((any::<u64>(), any::<u32>(), any::<u16>(), any::<u64>()), 0..20),
        stamped in any::<bool>(),
        position in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let original = message(false, sender, carried, stamped.then_some(2));
        let mut bytes = encode(&original).to_vec();
        let index = (position % bytes.len() as u64) as usize;
        bytes[index] ^= xor;
        // Mutations may still decode (a flipped payload byte yields a
        // different but well-formed message); they must never panic.
        let _ = decode(&bytes);
    }

    #[test]
    fn arbitrary_byte_soup_never_panics_the_decoder(
        bytes in vec(any::<u8>(), 0..200),
    ) {
        let _ = decode(&bytes);
    }
}
