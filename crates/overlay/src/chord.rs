//! A compact Chord ring used as the "Chord on demand" baseline.
//!
//! The paper's related work (§4, §6) points at the authors' earlier "Chord on
//! demand" result [9]: a gossip protocol that jump-starts Chord — a sorted ring
//! plus distance-halving fingers — rather than a prefix-table substrate. For the
//! reproduction we build the Chord structure directly from global knowledge (the
//! instantly-converged ideal) and use it as a routing-quality yardstick: the hops
//! taken by prefix routing over bootstrapped tables should be in the same ballpark
//! as Chord's `O(log₂ N)` greedy finger routing.

use bss_util::id::NodeId;
use std::collections::HashMap;

use crate::pastry::RouteOutcome;

/// A fully built Chord ring: successor pointers and finger tables for every node.
#[derive(Debug, Clone)]
pub struct ChordRing {
    sorted_ids: Vec<NodeId>,
    fingers: HashMap<NodeId, Vec<NodeId>>,
    successor_list_len: usize,
}

impl ChordRing {
    /// Builds the ring (successors + 64 fingers per node) from a set of
    /// identifiers.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains duplicates.
    pub fn build(ids: impl IntoIterator<Item = NodeId>) -> Self {
        Self::build_with_successors(ids, 4)
    }

    /// Builds the ring keeping `successor_list_len` successors per node.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty or contains duplicates, or the successor list
    /// length is zero.
    pub fn build_with_successors(
        ids: impl IntoIterator<Item = NodeId>,
        successor_list_len: usize,
    ) -> Self {
        assert!(successor_list_len > 0, "successor list must be non-empty");
        let mut sorted_ids: Vec<NodeId> = ids.into_iter().collect();
        assert!(
            !sorted_ids.is_empty(),
            "a Chord ring needs at least one node"
        );
        sorted_ids.sort_unstable();
        let before = sorted_ids.len();
        sorted_ids.dedup();
        assert_eq!(before, sorted_ids.len(), "duplicate identifiers");

        let mut fingers = HashMap::with_capacity(sorted_ids.len());
        for &node in &sorted_ids {
            let mut table = Vec::with_capacity(64);
            for bit in 0..64u32 {
                let start = NodeId::new(node.raw().wrapping_add(1u64 << bit));
                table.push(Self::successor_of(&sorted_ids, start));
            }
            table.dedup();
            fingers.insert(node, table);
        }
        ChordRing {
            sorted_ids,
            fingers,
            successor_list_len,
        }
    }

    /// Number of nodes on the ring.
    pub fn len(&self) -> usize {
        self.sorted_ids.len()
    }

    /// Whether the ring is empty (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.sorted_ids.is_empty()
    }

    /// The node responsible for `key`: the first node at or after it on the ring.
    pub fn successor(&self, key: NodeId) -> NodeId {
        Self::successor_of(&self.sorted_ids, key)
    }

    /// The immediate successors of `node` on the ring (its successor list).
    pub fn successor_list(&self, node: NodeId) -> Vec<NodeId> {
        let position = self
            .sorted_ids
            .binary_search(&node)
            .expect("node must be on the ring");
        let n = self.sorted_ids.len();
        (1..=self.successor_list_len.min(n.saturating_sub(1)))
            .map(|step| self.sorted_ids[(position + step) % n])
            .collect()
    }

    /// The finger table of `node`, deduplicated, nearest finger first.
    pub fn fingers(&self, node: NodeId) -> &[NodeId] {
        self.fingers.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Greedy Chord routing from `source` to the node responsible for `target`:
    /// forward to the finger that most closely precedes the target.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not on the ring.
    pub fn route(&self, source: NodeId, target: NodeId) -> RouteOutcome {
        assert!(
            self.sorted_ids.binary_search(&source).is_ok(),
            "source node must be on the ring"
        );
        let destination = self.successor(target);
        let mut current = source;
        let mut path = vec![current];
        for _ in 0..self.sorted_ids.len().max(64) {
            if current == destination {
                return RouteOutcome::Delivered(path);
            }
            // Candidates: fingers and successors. Pick the one that most closely
            // precedes (or is) the destination without overshooting it.
            let next = self
                .fingers(current)
                .iter()
                .copied()
                .chain(self.successor_list(current))
                .filter(|&candidate| candidate != current)
                .filter(|&candidate| {
                    // candidate lies in the half-open arc (current, destination]
                    let to_candidate = current.clockwise_distance(candidate);
                    let to_destination = current.clockwise_distance(destination);
                    to_candidate <= to_destination && to_candidate > 0
                })
                .max_by_key(|&candidate| current.clockwise_distance(candidate));
            match next {
                Some(next) => {
                    path.push(next);
                    current = next;
                }
                None => return RouteOutcome::Stuck { path },
            }
        }
        RouteOutcome::HopLimit { path }
    }
}

fn successor_of_sorted(sorted: &[NodeId], key: NodeId) -> NodeId {
    match sorted.binary_search(&key) {
        Ok(position) => sorted[position],
        Err(position) => sorted[position % sorted.len()],
    }
}

impl ChordRing {
    fn successor_of(sorted: &[NodeId], key: NodeId) -> NodeId {
        successor_of_sorted(sorted, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_util::rng::SimRng;

    fn ring(size: usize, seed: u64) -> ChordRing {
        let mut rng = SimRng::seed_from(seed);
        ChordRing::build(rng.distinct_u64(size).into_iter().map(NodeId::new))
    }

    #[test]
    fn successor_wraps_and_matches_sorted_order() {
        let ids = [10u64, 20, 30].map(NodeId::new);
        let ring = ChordRing::build(ids);
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
        assert_eq!(ring.successor(NodeId::new(15)).raw(), 20);
        assert_eq!(ring.successor(NodeId::new(20)).raw(), 20);
        assert_eq!(
            ring.successor(NodeId::new(35)).raw(),
            10,
            "wraps past the end"
        );
        assert_eq!(
            ring.successor_list(NodeId::new(30)),
            vec![NodeId::new(10), NodeId::new(20)]
        );
    }

    #[test]
    fn fingers_point_at_distance_halving_targets() {
        let ring = ring(100, 1);
        for id in ring.sorted_ids.clone() {
            let fingers = ring.fingers(id);
            assert!(!fingers.is_empty());
            assert!(fingers.len() <= 64);
        }
    }

    #[test]
    fn routing_reaches_the_responsible_node_in_logarithmic_hops() {
        let ring = ring(256, 2);
        let ids = ring.sorted_ids.clone();
        let mut rng = SimRng::seed_from(7);
        let mut total_hops = 0usize;
        for _ in 0..300 {
            let source = ids[rng.index(ids.len())];
            let target = NodeId::new(rng.next_u64());
            let outcome = ring.route(source, target);
            assert!(outcome.is_delivered(), "{outcome:?}");
            total_hops += outcome.hops();
            if let RouteOutcome::Delivered(path) = &outcome {
                assert_eq!(*path.last().unwrap(), ring.successor(target));
            }
        }
        let mean = total_hops as f64 / 300.0;
        assert!(mean < 8.0, "Chord mean hops {mean} too high for 256 nodes");
    }

    #[test]
    fn self_route_and_tiny_rings() {
        let ring = ChordRing::build([NodeId::new(5)]);
        let outcome = ring.route(NodeId::new(5), NodeId::new(123));
        assert!(outcome.is_delivered());
        assert_eq!(outcome.hops(), 0);
        assert!(ring.successor_list(NodeId::new(5)).is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicates_are_rejected() {
        let _ = ChordRing::build([NodeId::new(1), NodeId::new(1)]);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_is_rejected() {
        let _ = ChordRing::build(std::iter::empty());
    }
}
