//! Kademlia-style XOR routing over bootstrapped tables.
//!
//! Kademlia keeps, for every bit position at which a contact's identifier diverges
//! from the local one, a bucket of contacts. A prefix table with digit width `b`
//! is a coarser-grained view of the same structure (one row covers `b` bit
//! positions, one column per digit value), so the tables produced by the
//! bootstrapping service can seed a Kademlia node directly. The router below
//! performs greedy XOR-metric descent: at every step it forwards to the known
//! contact whose identifier is XOR-closest to the target, which on a converged
//! population reaches the target in `O(log_{2^b} N)` hops.

use bss_core::experiment::PopulationSnapshot;
use bss_core::node::BootstrapNode;
use bss_sim::network::NodeIndex;
use bss_util::id::NodeId;

use crate::pastry::RouteOutcome;

/// A greedy XOR-metric router over a bootstrapped population.
#[derive(Debug, Clone)]
pub struct KademliaRouter<'a> {
    population: &'a PopulationSnapshot,
    max_hops: usize,
}

impl<'a> KademliaRouter<'a> {
    /// Creates a router with a default hop budget of 64.
    pub fn new(population: &'a PopulationSnapshot) -> Self {
        KademliaRouter {
            population,
            max_hops: 64,
        }
    }

    /// Overrides the hop budget (builder style).
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = max_hops.max(1);
        self
    }

    /// Routes a lookup for `target` starting at `source`, hopping to the
    /// XOR-closest known contact at every step.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not part of the population.
    pub fn route(&self, source: NodeId, target: NodeId) -> RouteOutcome {
        let mut current = self
            .population
            .node_by_id(source)
            .expect("source node must be part of the population");
        let mut path = vec![current.id()];
        for _ in 0..self.max_hops {
            if current.id() == target {
                return RouteOutcome::Delivered(path);
            }
            match xor_next_hop(current, target) {
                Some(next) => {
                    path.push(next);
                    match self.population.node_by_id(next) {
                        Some(node) => current = node,
                        None => return RouteOutcome::Stuck { path },
                    }
                }
                None => return RouteOutcome::Stuck { path },
            }
        }
        RouteOutcome::HopLimit { path }
    }
}

/// The known contact of `node` that is XOR-closest to `target`, provided it is
/// strictly closer than `node` itself.
///
/// A thin wrapper over the shared step in [`bss_core::routing`] — the single
/// implementation behind both this snapshot router and the live traffic
/// driver, so the two can never drift apart.
pub fn xor_next_hop(node: &BootstrapNode<NodeIndex>, target: NodeId) -> Option<NodeId> {
    bss_core::routing::next_hop(bss_core::routing::RouterKind::Kademlia, node, target).map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_core::experiment::{Experiment, ExperimentConfig};
    use bss_util::rng::SimRng;

    fn snapshot(size: usize, seed: u64) -> PopulationSnapshot {
        let config = ExperimentConfig::builder()
            .network_size(size)
            .seed(seed)
            .max_cycles(80)
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(outcome.converged());
        snapshot
    }

    #[test]
    fn xor_routing_delivers_on_a_converged_network() {
        let population = snapshot(128, 11);
        let router = KademliaRouter::new(&population);
        let ids: Vec<NodeId> = population.ids().collect();
        let mut rng = SimRng::seed_from(5);
        let mut hops = Vec::new();
        for _ in 0..300 {
            let source = ids[rng.index(ids.len())];
            let target = ids[rng.index(ids.len())];
            let outcome = router.route(source, target);
            assert!(outcome.is_delivered(), "{source} -> {target}: {outcome:?}");
            hops.push(outcome.hops() as f64);
        }
        let mean = hops.iter().sum::<f64>() / hops.len() as f64;
        assert!(mean < 6.0, "mean XOR hops {mean}");
    }

    #[test]
    fn xor_descent_is_monotone() {
        let population = snapshot(64, 12);
        let ids: Vec<NodeId> = population.ids().collect();
        for &source in ids.iter().take(20) {
            for &target in ids.iter().skip(40).take(20) {
                if source == target {
                    continue;
                }
                let node = population.node_by_id(source).unwrap();
                if let Some(next) = xor_next_hop(node, target) {
                    assert!(next.xor_distance(target) < source.xor_distance(target));
                }
            }
        }
    }

    #[test]
    fn self_lookup_is_immediate_and_budget_is_respected() {
        let population = snapshot(32, 13);
        let router = KademliaRouter::new(&population).with_max_hops(2);
        let id = population.node_at(0).unwrap().id();
        let outcome = router.route(id, id);
        assert!(outcome.is_delivered());
        assert_eq!(outcome.hops(), 0);
    }
}
