//! # bss-overlay — routing substrates that consume bootstrapped tables
//!
//! The paper's claim is that the leaf sets and prefix tables built by the
//! bootstrapping service are exactly what prefix-based routing substrates (Pastry,
//! Kademlia, Tapestry, Bamboo) need, so that "existing, well-tuned protocols [can
//! be used] without modification to maintain the overlays once they have been
//! formed" (§1). The paper never actually routes over the constructed tables; this
//! crate closes that loop as a validation step:
//!
//! * [`pastry`] — Pastry-style greedy prefix routing over a bootstrapped
//!   [`BootstrapNode`](bss_core::node::BootstrapNode) population.
//! * [`kademlia`] — Kademlia-style iterative XOR routing over the same tables
//!   (a prefix table with `b = 1..=4` is a bucket view of the XOR metric space).
//! * [`chord`] — a small Chord implementation (successor ring + fingers) used as
//!   the "Chord on demand" related-work baseline: it is built instantly from
//!   global knowledge and serves as the routing-quality yardstick.
//! * [`lookup`] — lookup workload generation and hop-count / success statistics.
//!
//! # Example
//!
//! ```rust
//! use bss_core::experiment::{Experiment, ExperimentConfig};
//! use bss_overlay::lookup::LookupEvaluator;
//!
//! // Bootstrap a small network, then route lookups over the resulting tables.
//! let config = ExperimentConfig::builder()
//!     .network_size(64)
//!     .seed(5)
//!     .build()
//!     .unwrap();
//! // The evaluator re-runs the bootstrap internally so it can keep the node states.
//! let report = LookupEvaluator::bootstrap_and_evaluate(&config, 200);
//! assert_eq!(report.success_rate(), 1.0);
//! assert!(report.mean_hops() < 6.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chord;
pub mod kademlia;
pub mod lookup;
pub mod pastry;

pub use chord::ChordRing;
pub use kademlia::KademliaRouter;
pub use lookup::{LookupEvaluator, LookupReport};
pub use pastry::PastryRouter;
