//! Lookup workload generation and routing-quality statistics.
//!
//! The evaluator routes a batch of random lookups over a bootstrapped population
//! (with the Pastry-style, Kademlia-style or Chord router) and summarises delivery
//! rate and hop counts. This is the reproduction's end-to-end check of the paper's
//! central claim: the tables built from scratch by the bootstrapping service are
//! immediately usable by the routing substrates they target.

use crate::chord::ChordRing;
use crate::kademlia::KademliaRouter;
use crate::pastry::{PastryRouter, RouteOutcome};
use bss_core::experiment::{Experiment, ExperimentConfig, PopulationSnapshot};
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use bss_util::stats::Histogram;
use std::fmt;

// The shared router taxonomy now lives next to the shared routing step in
// `bss_core::routing`; re-exported here so existing `bss_overlay::lookup`
// consumers keep compiling. Note the evaluator interprets `Chord` as the
// ideal-ring baseline (`ChordRing`, global fingers), while the live traffic
// driver routes Chord-style over the node's own bootstrapped tables.
pub use bss_core::routing::RouterKind;

/// Statistics of one batch of lookups.
#[derive(Debug, Clone)]
pub struct LookupReport {
    router: RouterKind,
    attempted: usize,
    delivered: usize,
    hop_histogram: Histogram,
}

impl LookupReport {
    fn new(router: RouterKind) -> Self {
        LookupReport {
            router,
            attempted: 0,
            delivered: 0,
            hop_histogram: Histogram::new(1),
        }
    }

    fn record(&mut self, outcome: &RouteOutcome) {
        self.attempted += 1;
        if outcome.is_delivered() {
            self.delivered += 1;
            self.hop_histogram.record(outcome.hops() as u64);
        }
    }

    /// The router the batch was evaluated with.
    pub fn router(&self) -> RouterKind {
        self.router
    }

    /// Number of lookups attempted.
    pub fn attempted(&self) -> usize {
        self.attempted
    }

    /// Number of lookups that reached their destination.
    pub fn delivered(&self) -> usize {
        self.delivered
    }

    /// Fraction of lookups delivered (0 when none were attempted).
    pub fn success_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.delivered as f64 / self.attempted as f64
        }
    }

    /// Mean hop count over delivered lookups.
    pub fn mean_hops(&self) -> f64 {
        self.hop_histogram.mean()
    }

    /// Maximum hop count over delivered lookups.
    pub fn max_hops(&self) -> u64 {
        self.hop_histogram.max()
    }
}

impl fmt::Display for LookupReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} delivered ({:.1}%), mean hops {:.2}, max hops {}",
            self.router,
            self.delivered,
            self.attempted,
            self.success_rate() * 100.0,
            self.mean_hops(),
            self.max_hops()
        )
    }
}

/// Evaluates routing over a bootstrapped population.
#[derive(Debug)]
pub struct LookupEvaluator {
    population: PopulationSnapshot,
    rng: SimRng,
}

impl LookupEvaluator {
    /// Creates an evaluator over an existing population snapshot.
    pub fn new(population: PopulationSnapshot, seed: u64) -> Self {
        LookupEvaluator {
            population,
            rng: SimRng::seed_from(seed),
        }
    }

    /// Runs the bootstrap experiment described by `config` — on whichever
    /// engine and scenario the configuration selects — then routes `lookups`
    /// random Pastry-style lookups over the resulting population snapshot and
    /// returns the report.
    ///
    /// # Panics
    ///
    /// Panics if the bootstrap run produces an empty population.
    pub fn bootstrap_and_evaluate(config: &ExperimentConfig, lookups: usize) -> LookupReport {
        let (_, population) = Experiment::new(config.clone()).run_with_snapshot();
        let mut evaluator = LookupEvaluator::new(population, config.seed ^ 0x5eed);
        evaluator.evaluate(RouterKind::Pastry, lookups)
    }

    /// Access to the underlying population.
    pub fn population(&self) -> &PopulationSnapshot {
        &self.population
    }

    /// Routes `lookups` random source/target pairs with the chosen router.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn evaluate(&mut self, router: RouterKind, lookups: usize) -> LookupReport {
        assert!(!self.population.is_empty(), "empty population");
        let ids: Vec<NodeId> = self.population.ids().collect();
        let mut report = LookupReport::new(router);
        let chord = match router {
            RouterKind::Chord => Some(ChordRing::build(ids.iter().copied())),
            _ => None,
        };
        for _ in 0..lookups {
            let source = ids[self.rng.index(ids.len())];
            let target = ids[self.rng.index(ids.len())];
            let outcome = match router {
                RouterKind::Pastry => PastryRouter::new(&self.population).route(source, target),
                RouterKind::Kademlia => KademliaRouter::new(&self.population).route(source, target),
                RouterKind::Chord => chord.as_ref().expect("built above").route(source, target),
            };
            report.record(&outcome);
        }
        report
    }

    /// Convenience: evaluates the same batch size with all three routers.
    pub fn evaluate_all(&mut self, lookups: usize) -> Vec<LookupReport> {
        RouterKind::ALL
            .into_iter()
            .map(|router| self.evaluate(router, lookups))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn converged_population(size: usize, seed: u64) -> PopulationSnapshot {
        let config = ExperimentConfig::builder()
            .network_size(size)
            .seed(seed)
            .max_cycles(80)
            .build()
            .unwrap();
        let (outcome, population) = Experiment::new(config).run_with_snapshot();
        assert!(outcome.converged());
        population
    }

    #[test]
    fn all_routers_deliver_on_a_converged_population() {
        let population = converged_population(96, 31);
        let mut evaluator = LookupEvaluator::new(population, 1);
        let reports = evaluator.evaluate_all(150);
        assert_eq!(reports.len(), 3);
        for report in &reports {
            assert_eq!(report.success_rate(), 1.0, "{report}");
            assert_eq!(report.attempted(), 150);
            assert_eq!(report.delivered(), 150);
            assert!(report.mean_hops() < 8.0, "{report}");
            assert!(report.max_hops() < 20, "{report}");
            assert!(!report.to_string().is_empty());
        }
        // The bootstrapped prefix tables should route in a hop count comparable to
        // the idealised Chord baseline (within a small constant factor).
        let pastry = &reports[0];
        let chord = &reports[2];
        assert!(
            pastry.mean_hops() <= chord.mean_hops() * 2.0 + 1.0,
            "pastry {} vs chord {}",
            pastry.mean_hops(),
            chord.mean_hops()
        );
    }

    #[test]
    fn bootstrap_and_evaluate_wires_everything_together() {
        let config = ExperimentConfig::builder()
            .network_size(48)
            .seed(9)
            .max_cycles(60)
            .build()
            .unwrap();
        let report = LookupEvaluator::bootstrap_and_evaluate(&config, 100);
        assert_eq!(report.router(), RouterKind::Pastry);
        assert_eq!(report.success_rate(), 1.0);
    }

    #[test]
    fn report_handles_empty_batches() {
        let population = converged_population(16, 3);
        let mut evaluator = LookupEvaluator::new(population, 2);
        let report = evaluator.evaluate(RouterKind::Pastry, 0);
        assert_eq!(report.attempted(), 0);
        assert_eq!(report.success_rate(), 0.0);
        assert_eq!(report.mean_hops(), 0.0);
        assert!(!evaluator.population().is_empty());
    }
}
