//! Pastry-style greedy prefix routing over bootstrapped tables.
//!
//! Pastry routes a message for key `t` as follows: if `t` falls within the range of
//! the local leaf set, deliver to the numerically closest leaf-set member;
//! otherwise forward to the prefix-table entry whose identifier shares a longer
//! prefix with `t` than the local identifier does; failing that, forward to any
//! known node that is strictly closer to `t`. The router here implements exactly
//! that over the [`PopulationSnapshot`] produced by a bootstrap run, which is how
//! the reproduction validates that the constructed tables really do support the
//! substrates the paper targets.

use bss_core::experiment::PopulationSnapshot;
use bss_core::node::BootstrapNode;
use bss_sim::network::NodeIndex;
use bss_util::id::NodeId;

/// The result of routing one lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The lookup reached its destination; the payload is the path of node
    /// identifiers, starting at the source and ending at the destination.
    Delivered(Vec<NodeId>),
    /// Routing stopped at a node with no better next hop.
    Stuck {
        /// The path traversed before getting stuck.
        path: Vec<NodeId>,
    },
    /// The hop budget was exhausted.
    HopLimit {
        /// The path traversed before giving up.
        path: Vec<NodeId>,
    },
}

impl RouteOutcome {
    /// Whether the lookup reached its destination.
    pub fn is_delivered(&self) -> bool {
        matches!(self, RouteOutcome::Delivered(_))
    }

    /// Number of hops taken (path length minus one); zero for an empty path.
    pub fn hops(&self) -> usize {
        let path = match self {
            RouteOutcome::Delivered(path)
            | RouteOutcome::Stuck { path }
            | RouteOutcome::HopLimit { path } => path,
        };
        path.len().saturating_sub(1)
    }
}

/// A greedy prefix router over a bootstrapped population.
#[derive(Debug, Clone)]
pub struct PastryRouter<'a> {
    population: &'a PopulationSnapshot,
    max_hops: usize,
}

impl<'a> PastryRouter<'a> {
    /// Creates a router with a default hop budget of 64.
    pub fn new(population: &'a PopulationSnapshot) -> Self {
        PastryRouter {
            population,
            max_hops: 64,
        }
    }

    /// Overrides the hop budget (builder style).
    #[must_use]
    pub fn with_max_hops(mut self, max_hops: usize) -> Self {
        self.max_hops = max_hops.max(1);
        self
    }

    /// Routes a lookup for the node `target` starting at the node `source`.
    ///
    /// # Panics
    ///
    /// Panics if `source` is not part of the population.
    pub fn route(&self, source: NodeId, target: NodeId) -> RouteOutcome {
        let mut current = self
            .population
            .node_by_id(source)
            .expect("source node must be part of the population");
        let mut path = vec![current.id()];
        for _ in 0..self.max_hops {
            if current.id() == target {
                return RouteOutcome::Delivered(path);
            }
            match next_hop(current, target) {
                Some(next) if next != current.id() => {
                    path.push(next);
                    match self.population.node_by_id(next) {
                        Some(node) => current = node,
                        // A stale entry pointing outside the live population: the
                        // message is lost at that hop.
                        None => return RouteOutcome::Stuck { path },
                    }
                }
                _ => return RouteOutcome::Stuck { path },
            }
        }
        RouteOutcome::HopLimit { path }
    }
}

/// Chooses the next hop from `node` towards `target` following Pastry's rules.
/// Returns `None` when no known contact is strictly closer to the target than the
/// node itself.
///
/// A thin wrapper over the shared step in [`bss_core::routing`] — the single
/// implementation behind both this snapshot router and the live traffic
/// driver, so the two can never drift apart.
pub fn next_hop(node: &BootstrapNode<NodeIndex>, target: NodeId) -> Option<NodeId> {
    bss_core::routing::next_hop(bss_core::routing::RouterKind::Pastry, node, target).map(|c| c.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_core::experiment::{Experiment, ExperimentConfig};
    use bss_util::rng::SimRng;

    fn snapshot(size: usize, seed: u64) -> PopulationSnapshot {
        let config = ExperimentConfig::builder()
            .network_size(size)
            .seed(seed)
            .max_cycles(80)
            .build()
            .unwrap();
        let (outcome, snapshot) = Experiment::new(config).run_with_snapshot();
        assert!(
            outcome.converged(),
            "bootstrap must converge for routing tests"
        );
        snapshot
    }

    #[test]
    fn every_lookup_is_delivered_on_a_converged_network() {
        let population = snapshot(128, 1);
        let router = PastryRouter::new(&population);
        let ids: Vec<NodeId> = population.ids().collect();
        let mut rng = SimRng::seed_from(99);
        let mut total_hops = 0usize;
        let lookups = 300;
        for _ in 0..lookups {
            let source = ids[rng.index(ids.len())];
            let target = ids[rng.index(ids.len())];
            let outcome = router.route(source, target);
            assert!(
                outcome.is_delivered(),
                "lookup {source} -> {target} failed: {outcome:?}"
            );
            total_hops += outcome.hops();
        }
        let mean_hops = total_hops as f64 / lookups as f64;
        // log_16(128) < 2, plus leaf-set shortcuts: well under 5 hops on average.
        assert!(mean_hops < 5.0, "mean hops {mean_hops}");
    }

    #[test]
    fn self_lookup_takes_zero_hops() {
        let population = snapshot(32, 2);
        let router = PastryRouter::new(&population);
        let id = population.node_at(0).unwrap().id();
        let outcome = router.route(id, id);
        assert!(outcome.is_delivered());
        assert_eq!(outcome.hops(), 0);
    }

    #[test]
    fn hop_budget_is_enforced() {
        let population = snapshot(64, 3);
        let router = PastryRouter::new(&population).with_max_hops(1);
        let ids: Vec<NodeId> = population.ids().collect();
        // With a single allowed hop some far lookup will hit the limit.
        let mut limited = false;
        for (i, &source) in ids.iter().enumerate() {
            let target = ids[(i + ids.len() / 2) % ids.len()];
            let outcome = router.route(source, target);
            if matches!(outcome, RouteOutcome::HopLimit { .. }) {
                limited = true;
                break;
            }
        }
        assert!(limited, "a one-hop budget should not reach every target");
    }

    #[test]
    #[should_panic(expected = "source node")]
    fn unknown_source_is_rejected() {
        let population = snapshot(16, 4);
        let router = PastryRouter::new(&population);
        let _ = router.route(NodeId::new(123), NodeId::new(456));
    }

    #[test]
    fn next_hop_makes_progress_in_prefix_or_distance() {
        let population = snapshot(64, 5);
        let ids: Vec<NodeId> = population.ids().collect();
        let bits = 4;
        for &source in ids.iter().take(16) {
            for &target in ids.iter().rev().take(16) {
                if source == target {
                    continue;
                }
                let node = population.node_by_id(source).unwrap();
                let next = next_hop(node, target).expect("converged node finds a hop");
                let own_prefix = source.common_prefix_len(target, bits);
                let next_prefix = next.common_prefix_len(target, bits);
                assert!(
                    next == target
                        || next_prefix > own_prefix
                        || (next_prefix == own_prefix
                            && next.ring_distance(target) < source.ring_distance(target)),
                    "hop from {source} towards {target} via {next} makes no progress"
                );
            }
        }
    }
}
