//! Golden pin for the snapshot lookup evaluator.
//!
//! The per-hop routing decisions are shared with the live traffic router in
//! `bss_core::routing`; this suite pins the exact pre-refactor output of
//! `bootstrap_and_evaluate` (and of `evaluate_all` on the same snapshot) so
//! any behavioural drift in the shared step functions is caught as a hard
//! diff, not a statistical wobble. The numbers were recorded before the step
//! functions moved to `bss_core` and must never change.

use bss_core::experiment::{Experiment, ExperimentConfig};
use bss_overlay::lookup::RouterKind;
use bss_overlay::LookupEvaluator;

fn golden_config() -> ExperimentConfig {
    ExperimentConfig::builder()
        .network_size(192)
        .seed(29)
        .max_cycles(80)
        .build()
        .unwrap()
}

#[test]
fn bootstrap_and_evaluate_output_is_byte_identical_to_the_pre_refactor_run() {
    let report = LookupEvaluator::bootstrap_and_evaluate(&golden_config(), 400);
    assert_eq!(report.router(), RouterKind::Pastry);
    assert_eq!(report.attempted(), 400);
    assert_eq!(report.delivered(), 400);
    // 686 total hops over 400 delivered lookups: the exact trace recorded
    // before the routing step moved into bss_core.
    assert_eq!(report.mean_hops(), 686.0 / 400.0);
    assert_eq!(report.max_hops(), 3);
}

#[test]
fn evaluate_all_is_byte_identical_to_the_pre_refactor_run() {
    let (_, population) = Experiment::new(golden_config()).run_with_snapshot();
    let mut evaluator = LookupEvaluator::new(population, 0xfeed);
    let reports = evaluator.evaluate_all(250);
    let golden: [(RouterKind, usize, u64, u64); 3] = [
        (RouterKind::Pastry, 250, 417, 2),
        (RouterKind::Kademlia, 250, 427, 2),
        (RouterKind::Chord, 250, 836, 6),
    ];
    for (report, (router, delivered, total_hops, max_hops)) in reports.iter().zip(golden) {
        assert_eq!(report.router(), router);
        assert_eq!(report.attempted(), 250);
        assert_eq!(report.delivered(), delivered, "{router}");
        assert_eq!(
            report.mean_hops(),
            total_hops as f64 / delivered as f64,
            "{router}"
        );
        assert_eq!(report.max_hops(), max_hops, "{router}");
    }
}
