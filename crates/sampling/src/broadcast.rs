//! Gossip broadcast over the peer sampling service.
//!
//! The paper assumes the bootstrapping protocol "is started by a system
//! administrator, using some form of broadcasting or flooding on top of the peer
//! sampling service" (§4, citing lpbcast-style probabilistic broadcast). This
//! module provides that start-signal dissemination: an informed node forwards the
//! signal to a small number of random peers every cycle, so within O(log N) cycles
//! every node has received it and can begin the bootstrap protocol within the
//! required loose synchronisation window.

use crate::sampler::PeerSampler;
use bss_sim::engine::cycle::{CycleProtocol, EngineContext};
use bss_sim::network::NodeIndex;

/// A probabilistic (gossip) broadcast of a single START signal.
///
/// The protocol is generic over the [`PeerSampler`] supplying gossip targets, so
/// the same code runs over NEWSCAST or over the oracle sampler.
#[derive(Debug)]
pub struct GossipBroadcast<S> {
    sampler: S,
    fanout: usize,
    informed_at: Vec<Option<u64>>,
    messages_sent: u64,
}

impl<S: PeerSampler> GossipBroadcast<S> {
    /// Creates a broadcast with the given per-cycle fanout, using `sampler` to pick
    /// gossip targets.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    pub fn new(sampler: S, fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be positive");
        GossipBroadcast {
            sampler,
            fanout,
            informed_at: Vec::new(),
            messages_sent: 0,
        }
    }

    /// Marks `origin` as informed at cycle 0 (the administrator's injection point).
    pub fn start(&mut self, origin: NodeIndex) {
        self.mark_informed(origin, 0);
    }

    /// Whether `node` has received the signal.
    pub fn is_informed(&self, node: NodeIndex) -> bool {
        self.informed_at
            .get(node.as_usize())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// The cycle at which `node` received the signal, if it has.
    pub fn informed_at(&self, node: NodeIndex) -> Option<u64> {
        self.informed_at.get(node.as_usize()).copied().flatten()
    }

    /// Number of informed nodes.
    pub fn informed_count(&self) -> usize {
        self.informed_at.iter().filter(|x| x.is_some()).count()
    }

    /// Whether every alive node in `ctx` has been informed.
    pub fn all_informed(&self, ctx: &EngineContext) -> bool {
        ctx.network
            .alive_indices()
            .all(|node| self.is_informed(node))
    }

    /// Total number of gossip messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// The spread in cycles between the earliest and latest informed node — the
    /// "start-time skew" the bootstrap protocol has to tolerate (it only requires
    /// nodes to start "within an interval of Δ time units", §4, which a skew of a
    /// few cycles satisfies when Δ is chosen accordingly).
    pub fn informed_cycle_spread(&self) -> Option<u64> {
        let cycles: Vec<u64> = self.informed_at.iter().flatten().copied().collect();
        if cycles.is_empty() {
            None
        } else {
            Some(cycles.iter().max().unwrap() - cycles.iter().min().unwrap())
        }
    }

    /// Returns the wrapped sampler.
    pub fn into_sampler(self) -> S {
        self.sampler
    }

    fn mark_informed(&mut self, node: NodeIndex, cycle: u64) {
        if node.as_usize() >= self.informed_at.len() {
            self.informed_at.resize(node.as_usize() + 1, None);
        }
        let slot = &mut self.informed_at[node.as_usize()];
        if slot.is_none() {
            *slot = Some(cycle);
        }
    }
}

impl<S: PeerSampler> CycleProtocol for GossipBroadcast<S> {
    fn execute_node(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        if !self.is_informed(node) {
            return;
        }
        let targets = self.sampler.sample(node, self.fanout, cycle, ctx);
        for target in targets {
            self.messages_sent += 1;
            if ctx.deliver(node, target.address()) && ctx.network.is_alive(target.address()) {
                self.mark_informed(target.address(), cycle + 1);
            }
        }
    }

    fn node_joined(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        self.sampler.init_node(node, cycle, ctx);
    }

    fn node_departed(&mut self, node: NodeIndex, _cycle: u64, ctx: &mut EngineContext) {
        self.sampler.node_departed(node, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newscast::NewscastProtocol;
    use crate::sampler::OracleSampler;
    use bss_sim::engine::cycle::CycleEngine;
    use bss_sim::network::Network;
    use bss_sim::transport::DropTransport;
    use bss_util::config::NewscastParams;
    use bss_util::rng::SimRng;
    use std::ops::ControlFlow;

    fn engine(size: usize, seed: u64) -> CycleEngine {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        CycleEngine::new(network, rng)
    }

    #[test]
    fn broadcast_reaches_everyone_logarithmically() {
        let mut eng = engine(1000, 1);
        let mut broadcast = GossipBroadcast::new(OracleSampler::new(), 3);
        broadcast.start(NodeIndex::new(0));
        assert_eq!(broadcast.informed_count(), 1);
        let cycles = eng.run_with_observer(&mut broadcast, 50, |b, ctx, _| {
            if b.all_informed(ctx) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert!(
            cycles <= 15,
            "1000 nodes should be informed quickly, took {cycles}"
        );
        assert_eq!(broadcast.informed_count(), 1000);
        assert!(broadcast.informed_cycle_spread().unwrap() <= cycles);
        assert!(broadcast.messages_sent() > 0);
    }

    #[test]
    fn broadcast_survives_message_loss() {
        let mut rng = SimRng::seed_from(2);
        let network = Network::with_random_ids(500, &mut rng);
        let mut eng =
            CycleEngine::new(network, rng).with_transport(Box::new(DropTransport::new(0.2)));
        let mut broadcast = GossipBroadcast::new(OracleSampler::new(), 3);
        broadcast.start(NodeIndex::new(7));
        eng.run_with_observer(&mut broadcast, 60, |b, ctx, _| {
            if b.all_informed(ctx) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(broadcast.informed_count(), 500);
    }

    #[test]
    fn broadcast_over_newscast_views() {
        let mut eng = engine(300, 3);
        // First let NEWSCAST converge so its views provide good samples.
        let mut newscast = NewscastProtocol::new(NewscastParams::paper_default());
        newscast.init_all(eng.context_mut());
        eng.run(&mut newscast, 10);
        let mut broadcast = GossipBroadcast::new(newscast, 4);
        broadcast.start(NodeIndex::new(0));
        eng.run_with_observer(&mut broadcast, 40, |b, ctx, _| {
            if b.all_informed(ctx) {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(broadcast.informed_count(), 300);
        let _newscast: NewscastProtocol = broadcast.into_sampler();
    }

    #[test]
    fn uninformed_nodes_do_not_gossip() {
        let mut eng = engine(10, 4);
        let mut broadcast = GossipBroadcast::new(OracleSampler::new(), 2);
        // Never started: nothing happens.
        eng.run(&mut broadcast, 5);
        assert_eq!(broadcast.informed_count(), 0);
        assert_eq!(broadcast.messages_sent(), 0);
        assert!(broadcast.informed_cycle_spread().is_none());
        assert!(!broadcast.is_informed(NodeIndex::new(0)));
        assert!(broadcast.informed_at(NodeIndex::new(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "fanout")]
    fn zero_fanout_is_rejected() {
        let _ = GossipBroadcast::new(OracleSampler::new(), 0);
    }
}
