//! # bss-sampling — the peer sampling service
//!
//! The bottom layer of the paper's architecture (§3): a service that returns
//! (approximately) uniform random peer addresses from the set of participating
//! nodes, implicitly defining membership, and that keeps working through massive
//! joins, departures and catastrophic failures.
//!
//! This crate provides:
//!
//! * [`sampler::PeerSampler`] — the service abstraction the bootstrapping protocol
//!   consumes (`cr` random samples per message, §4).
//! * [`newscast`] — the NEWSCAST gossip implementation described in §3: every node
//!   keeps a small cache of node descriptors with timestamps, periodically sends it
//!   to a random cache member, and both sides keep the freshest entries.
//! * [`sampler::OracleSampler`] — an idealised, globally uniform sampler used for
//!   ablations (the paper assumes "the sampling service is already functional",
//!   which the oracle models exactly).
//! * [`quality`] — diagnostics for sampling quality: in-degree distribution,
//!   self-containment of views, and connectivity of the overlay induced by the
//!   caches.
//! * [`broadcast`] — the gossip flood used to deliver the protocol START signal
//!   ("started by a system administrator, using some form of broadcasting or
//!   flooding on top of the peer sampling service", §4).
//!
//! # Example
//!
//! ```rust
//! use bss_sampling::newscast::NewscastProtocol;
//! use bss_sampling::sampler::PeerSampler;
//! use bss_sim::engine::cycle::CycleEngine;
//! use bss_sim::network::Network;
//! use bss_util::config::NewscastParams;
//! use bss_util::rng::SimRng;
//!
//! let mut rng = SimRng::seed_from(7);
//! let network = Network::with_random_ids(64, &mut rng);
//! let mut engine = CycleEngine::new(network, rng);
//! let mut newscast = NewscastProtocol::new(NewscastParams::paper_default());
//! newscast.init_all(engine.context_mut());
//! engine.run(&mut newscast, 20);
//!
//! // After a few cycles every node can produce random samples.
//! let node = bss_sim::network::NodeIndex::new(0);
//! let samples = newscast.sample(node, 10, 20, engine.context_mut());
//! assert!(!samples.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod broadcast;
pub mod newscast;
pub mod quality;
pub mod sampler;

pub use newscast::NewscastProtocol;
pub use sampler::{OracleSampler, PeerSampler};
