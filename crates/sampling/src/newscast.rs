//! The NEWSCAST peer sampling protocol (paper §3).
//!
//! Every node keeps a small cache (*partial view*) of node descriptors, each
//! carrying a freshness timestamp. Periodically a node picks a random member of its
//! cache, the two exchange caches (each adding a freshly timestamped descriptor of
//! itself), and both keep only the freshest `view_size` entries. The emergent
//! overlay is close to a random graph, so picking random cache entries approximates
//! uniform peer sampling — even shortly after massive joins, departures or
//! catastrophic failures, which is exactly the property the bootstrapping service
//! builds on.

use crate::quality::SamplingQuality;
use crate::sampler::PeerSampler;
use bss_sim::adversary::{forged_id, AdversaryBehavior, AdversaryModel};
use bss_sim::engine::cycle::{CycleProtocol, EngineContext};
use bss_sim::network::{Network, NodeIndex};
use bss_util::config::NewscastParams;
use bss_util::descriptor::{dedup_freshest, Descriptor, PackedDescriptor};
use bss_util::id::NodeId;
use bss_util::view::{rank_top_by, ViewArena};

/// One node's NEWSCAST cache (as a transient merge buffer; the resident storage
/// is the protocol's [`ViewArena`] of eight-byte [`PackedDescriptor`]s).
type View = Vec<Descriptor<NodeIndex>>;

/// Key mixed into the sybil identifiers a hub attacker fabricates. Any fixed
/// value works: hub sybils do not try to defeat the identity-stamp verifier
/// (that is the bootstrap layer's defence) — they exploit freshness ranking,
/// which only the per-origin diversity quota counters.
const HUB_SYBIL_KEY: u64 = 0x4855_4241_5454_4143;

/// The NEWSCAST protocol state for every node in a simulation.
///
/// The type implements both [`CycleProtocol`] (so it can be driven directly by the
/// cycle engine) and [`PeerSampler`] (so the bootstrapping service can draw its
/// `cr` random samples from it).
///
/// All views live in one flat [`ViewArena`] (a `view_size`-sized slot per node)
/// storing eight-byte packed descriptors — identifiers are recovered from the
/// network registry on the way out — and every exchange reuses the
/// protocol-owned scratch buffers, so the steady state of a gossip cycle
/// performs no heap allocation at all.
#[derive(Debug)]
pub struct NewscastProtocol {
    params: NewscastParams,
    views: ViewArena<PackedDescriptor>,
    exchanges: u64,
    failed_exchanges: u64,
    /// Reusable buffer for the request (initiator's fresh descriptor + view).
    request_scratch: View,
    /// Reusable buffer for the response (peer's fresh descriptor + view).
    response_scratch: View,
    /// Reusable buffer for view ∪ received merges.
    merge_scratch: View,
    /// Reusable buffer for re-packing a merged view into its arena slot.
    packed_scratch: Vec<PackedDescriptor>,
    /// The scenario's Byzantine adversary model, when one is installed. Hub
    /// attackers subvert their own view exchanges (sybil floods); everyone
    /// else's traffic is untouched, so `None` is the byte-identical honest path.
    adversary: Option<AdversaryModel>,
}

impl NewscastProtocol {
    /// Creates the protocol with the given parameters and no initialised nodes.
    pub fn new(params: NewscastParams) -> Self {
        NewscastProtocol {
            views: ViewArena::new(params.view_size),
            params,
            exchanges: 0,
            failed_exchanges: 0,
            request_scratch: Vec::new(),
            response_scratch: Vec::new(),
            merge_scratch: Vec::new(),
            packed_scratch: Vec::new(),
            adversary: None,
        }
    }

    /// Whether `node` is a converted hub attacker whose behaviour is active at
    /// `cycle` — the only adversary class that subverts the NEWSCAST layer
    /// itself (forgery and identity-spray act on bootstrap messages instead).
    fn acts_as_hub(&self, node: NodeIndex, cycle: u64) -> bool {
        self.adversary.as_ref().is_some_and(|model| {
            matches!(model.behavior(), AdversaryBehavior::HubAttack) && model.acts_at(node, cycle)
        })
    }

    /// Fills `out` with a hub attacker's payload: `capacity` copies of its own
    /// address under distinct fabricated identifiers, all stamped with the
    /// current cycle. Freshness ranking keeps every copy (the identifiers are
    /// distinct, so dedup does not collapse them), wiping the receiver's view
    /// — unless a per-origin diversity quota caps the run to a few slots.
    fn hub_payload(out: &mut View, hub: NodeIndex, cycle: u64, capacity: usize) {
        out.extend((0..capacity).map(|position| {
            Descriptor::new(forged_id(HUB_SYBIL_KEY, hub, cycle, position), hub, cycle)
        }));
    }

    /// The protocol parameters.
    pub fn params(&self) -> &NewscastParams {
        &self.params
    }

    /// Number of attempted cache exchanges so far.
    pub fn exchanges(&self) -> u64 {
        self.exchanges
    }

    /// Number of exchanges whose request was lost by the transport.
    pub fn failed_exchanges(&self) -> u64 {
        self.failed_exchanges
    }

    /// The current packed view of `node`, if the node has been initialised.
    /// Entries carry addresses and timestamps; use
    /// [`NewscastProtocol::view_unpacked`] (or [`Network::unpack`]) to recover
    /// full descriptors with identifiers.
    pub fn view(&self, node: NodeIndex) -> Option<&[PackedDescriptor]> {
        self.views.get(node.as_usize())
    }

    /// The current view of `node` expanded to full descriptors through the
    /// network registry, if the node has been initialised.
    pub fn view_unpacked(
        &self,
        node: NodeIndex,
        network: &Network,
    ) -> Option<Vec<Descriptor<NodeIndex>>> {
        self.views
            .get(node.as_usize())
            .map(|view| view.iter().map(|&p| network.unpack(p)).collect())
    }

    /// Initialises `node` with an explicit seed view (self-entries are removed and
    /// the view is truncated to the configured size).
    pub fn init_node_with(
        &mut self,
        node: NodeIndex,
        seeds: Vec<Descriptor<NodeIndex>>,
        ctx: &mut EngineContext,
    ) {
        let own_id = ctx.network.id(node);
        let mut view = seeds;
        Self::normalise(&mut view, own_id, self.params.view_size);
        self.packed_scratch.clear();
        self.packed_scratch.extend(view.iter().map(Network::pack));
        self.views.set(node.as_usize(), &self.packed_scratch);
    }

    /// Number of nodes currently holding a view.
    pub fn initialised_nodes(&self) -> usize {
        self.views.occupied_count()
    }

    /// Canonicalises a view: removes descriptors of `own_id`, keeps the freshest
    /// descriptor per identifier, ranks freshest-first (ties broken by identifier)
    /// and truncates to `capacity`. Ranking is a partial selection: only the kept
    /// prefix is sorted, and a buffer already within capacity and in order (the
    /// common case on early cycles) is not sorted at all.
    fn normalise(view: &mut View, own_id: NodeId, capacity: usize) {
        view.retain(|d| d.id() != own_id);
        dedup_freshest(view);
        rank_top_by(view, capacity, |a, b| {
            b.timestamp()
                .cmp(&a.timestamp())
                .then_with(|| a.id().cmp(&b.id()))
        });
    }

    /// Performs the merge step at one participant: current view ∪ received
    /// descriptors, normalised and written back to the arena slot (occupying it
    /// if the node held no view yet). When the configured
    /// [`descriptor_max_age`](NewscastParams::descriptor_max_age) is set,
    /// `aging` carries `(now, bound)` and descriptors older than the bound are
    /// dropped before the freshest-first ranking — the view-level failure
    /// detector that purges a departed node's last sighting even while the
    /// view is not full.
    ///
    /// When a `quota` is configured
    /// ([`view_diversity_quota`](NewscastParams::view_diversity_quota)), at
    /// most that many merge candidates per origin address survive — freshest
    /// first — before the ranking step. Honest origins contribute one
    /// identifier per address, so the quota only bites sybil floods.
    #[allow(clippy::too_many_arguments)]
    fn merge_slot(
        views: &mut ViewArena<PackedDescriptor>,
        scratch: &mut View,
        packed_scratch: &mut Vec<PackedDescriptor>,
        network: &Network,
        node: NodeIndex,
        received: &[Descriptor<NodeIndex>],
        own_id: NodeId,
        capacity: usize,
        aging: Option<(u64, u64)>,
        quota: Option<usize>,
    ) {
        scratch.clear();
        if let Some(view) = views.get(node.as_usize()) {
            scratch.extend(view.iter().map(|&p| network.unpack(p)));
        }
        scratch.extend_from_slice(received);
        if let Some((now, bound)) = aging {
            scratch.retain(|d| !d.is_expired(now, bound));
        }
        if let Some(cap) = quota {
            // Group by origin address (freshest first within a group, ties by
            // identifier — a total order, so the outcome is independent of the
            // incoming buffer order) and keep at most `cap` per group. The
            // final view is re-ranked by `normalise` below, so this reordering
            // of the merge buffer is invisible to the honest result.
            scratch.sort_unstable_by(|a, b| {
                a.address()
                    .as_usize()
                    .cmp(&b.address().as_usize())
                    .then_with(|| b.timestamp().cmp(&a.timestamp()))
                    .then_with(|| a.id().cmp(&b.id()))
            });
            let mut run_addr: Option<NodeIndex> = None;
            let mut run_len = 0usize;
            scratch.retain(|d| {
                if run_addr == Some(d.address()) {
                    run_len += 1;
                } else {
                    run_addr = Some(d.address());
                    run_len = 1;
                }
                run_len <= cap
            });
        }
        Self::normalise(scratch, own_id, capacity);
        packed_scratch.clear();
        packed_scratch.extend(scratch.iter().map(Network::pack));
        views.set(node.as_usize(), packed_scratch);
    }

    /// One active NEWSCAST exchange initiated by `node` at cycle `cycle`.
    fn exchange(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        self.exchanges += 1;
        let own_id = ctx.network.id(node);
        let capacity = self.params.view_size;

        // Select a random peer from the local view.
        let peer = {
            let view = match self.view(node) {
                Some(v) if !v.is_empty() => v,
                _ => {
                    self.failed_exchanges += 1;
                    return;
                }
            };
            NodeIndex::new(view[ctx.rng.index(view.len())].address())
        };

        // Request: own fresh descriptor + current view.
        if !ctx.deliver(node, peer) {
            self.failed_exchanges += 1;
            return;
        }
        let mut request = std::mem::take(&mut self.request_scratch);
        request.clear();
        if self.acts_as_hub(node, cycle) {
            Self::hub_payload(&mut request, node, cycle, capacity);
        } else {
            request.push(ctx.network.descriptor(node, cycle));
            if let Some(view) = self.view(node) {
                request.extend(view.iter().map(|&p| ctx.network.unpack(p)));
            }
        }

        // A departed peer cannot reply (its descriptor will age out of views).
        if !ctx.network.is_alive(peer) {
            self.failed_exchanges += 1;
            self.request_scratch = request;
            return;
        }

        // Response: the peer's own fresh descriptor + its pre-merge view (or a
        // sybil flood, if the contacted peer is an acting hub attacker).
        let mut response = std::mem::take(&mut self.response_scratch);
        response.clear();
        if self.acts_as_hub(peer, cycle) {
            Self::hub_payload(&mut response, peer, cycle, capacity);
        } else {
            response.push(ctx.network.descriptor(peer, cycle));
            if let Some(view) = self.view(peer) {
                response.extend(view.iter().map(|&p| ctx.network.unpack(p)));
            }
        }
        let response_delivered = ctx.deliver(peer, node);

        // The peer merges the request (occupying its slot if it held no view).
        let peer_id = ctx.network.id(peer);
        let aging = self.params.descriptor_max_age.map(|bound| (cycle, bound));
        let quota = self.params.view_diversity_quota;
        Self::merge_slot(
            &mut self.views,
            &mut self.merge_scratch,
            &mut self.packed_scratch,
            &ctx.network,
            peer,
            &request,
            peer_id,
            capacity,
            aging,
            quota,
        );

        // The initiator merges the response, if it arrives.
        if response_delivered && self.views.is_occupied(node.as_usize()) {
            Self::merge_slot(
                &mut self.views,
                &mut self.merge_scratch,
                &mut self.packed_scratch,
                &ctx.network,
                node,
                &response,
                own_id,
                capacity,
                aging,
                quota,
            );
        }
        self.request_scratch = request;
        self.response_scratch = response;
    }
}

impl CycleProtocol for NewscastProtocol {
    fn execute_node(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        self.exchange(node, cycle, ctx);
    }

    fn node_joined(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        // A joiner knows a single existing contact (plus nothing else); NEWSCAST
        // spreads knowledge of it from there.
        let contact = ctx
            .network
            .random_alive(&mut ctx.rng)
            .filter(|&c| c != node);
        let seeds = contact
            .map(|c| vec![ctx.network.descriptor(c, cycle)])
            .unwrap_or_default();
        self.init_node_with(node, seeds, ctx);
    }

    fn node_departed(&mut self, node: NodeIndex, _cycle: u64, ctx: &mut EngineContext) {
        let _ = ctx;
        self.views.clear(node.as_usize());
    }

    fn node_converted(&mut self, node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {
        PeerSampler::node_converted(self, node);
    }
}

impl PeerSampler for NewscastProtocol {
    fn init_node(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        // The standard starting condition: a view seeded with random alive peers.
        // Section 3 notes that NEWSCAST quickly randomises the views even when the
        // initial caches are heavily skewed, so the exact seeding barely matters.
        // The seeds are stamped with the initialisation cycle — stamping a
        // mid-run joiner's seeds with 0 (the old behaviour) made its fresh
        // contacts the *stalest* descriptors in the network, so freshness
        // ranking discarded them instantly and the aging filter would have
        // rejected them outright.
        let view_size = self.params.view_size;
        let picked = ctx
            .network
            .sample_alive_excluding(node, view_size, &mut ctx.rng);
        let seeds = picked
            .into_iter()
            .map(|peer| ctx.network.descriptor(peer, cycle))
            .collect();
        self.init_node_with(node, seeds, ctx);
    }

    fn node_departed(&mut self, node: NodeIndex, ctx: &mut EngineContext) {
        CycleProtocol::node_departed(self, node, 0, ctx);
    }

    fn install_adversary(&mut self, model: AdversaryModel) {
        self.adversary = Some(model);
    }

    fn node_converted(&mut self, node: NodeIndex) {
        if let Some(model) = self.adversary.as_mut() {
            model.note_converted(node);
        }
    }

    fn quality(&self, network: &Network) -> Option<SamplingQuality> {
        Some(crate::quality::snapshot(self, network))
    }

    fn step(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext) {
        self.exchange(node, cycle, ctx);
    }

    fn sample(
        &mut self,
        node: NodeIndex,
        count: usize,
        _cycle: u64,
        ctx: &mut EngineContext,
    ) -> Vec<Descriptor<NodeIndex>> {
        let view = match self.view(node) {
            Some(v) => v,
            None => return Vec::new(),
        };
        // Sampling over the packed entries consumes the same RNG stream as
        // sampling full descriptors (draws depend only on lengths); the picked
        // entries are expanded through the registry afterwards.
        ctx.rng
            .sample(view, count.min(view.len()))
            .into_iter()
            .map(|p| ctx.network.unpack(p))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_sim::engine::cycle::CycleEngine;
    use bss_sim::network::Network;
    use bss_sim::transport::DropTransport;
    use bss_util::rng::SimRng;

    fn engine(size: usize, seed: u64) -> CycleEngine {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        CycleEngine::new(network, rng)
    }

    fn run_newscast(size: usize, cycles: u64, seed: u64) -> (NewscastProtocol, CycleEngine) {
        let mut eng = engine(size, seed);
        let mut protocol = NewscastProtocol::new(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            ..NewscastParams::paper_default()
        });
        protocol.init_all(eng.context_mut());
        eng.run(&mut protocol, cycles);
        (protocol, eng)
    }

    #[test]
    fn views_stay_within_capacity_and_never_contain_self() {
        let (protocol, eng) = run_newscast(100, 15, 1);
        for node in eng.context().network.all_indices() {
            let view = protocol
                .view_unpacked(node, &eng.context().network)
                .expect("every node initialised");
            assert!(view.len() <= 20);
            assert!(!view.is_empty());
            let own_id = eng.context().network.id(node);
            assert!(view.iter().all(|d| d.id() != own_id), "view contains self");
            let unique: std::collections::HashSet<_> = view.iter().map(|d| d.id()).collect();
            assert_eq!(unique.len(), view.len(), "view contains duplicates");
        }
    }

    #[test]
    fn timestamps_become_fresh_over_time() {
        let (protocol, eng) = run_newscast(100, 30, 2);
        let mut stale = 0usize;
        let mut total = 0usize;
        for node in eng.context().network.all_indices() {
            for d in protocol.view(node).unwrap() {
                total += 1;
                if d.timestamp() + 10 < 30 {
                    stale += 1;
                }
            }
        }
        let stale_fraction = stale as f64 / total as f64;
        assert!(
            stale_fraction < 0.05,
            "most descriptors should be recent, stale fraction {stale_fraction}"
        );
    }

    #[test]
    fn sampling_returns_distinct_live_descriptors() {
        let (mut protocol, mut eng) = run_newscast(200, 20, 3);
        let samples = protocol.sample(NodeIndex::new(5), 10, 20, eng.context_mut());
        assert_eq!(samples.len(), 10);
        let unique: std::collections::HashSet<_> = samples.iter().map(|d| d.id()).collect();
        assert_eq!(unique.len(), 10);
        // An uninitialised node yields nothing.
        let mut fresh = NewscastProtocol::new(NewscastParams::paper_default());
        assert!(fresh
            .sample(NodeIndex::new(0), 5, 0, eng.context_mut())
            .is_empty());
    }

    #[test]
    fn exchange_counters_track_failures_under_loss() {
        let mut rng = SimRng::seed_from(4);
        let network = Network::with_random_ids(100, &mut rng);
        let mut eng =
            CycleEngine::new(network, rng).with_transport(Box::new(DropTransport::new(0.5)));
        let mut protocol = NewscastProtocol::new(NewscastParams::paper_default());
        protocol.init_all(eng.context_mut());
        eng.run(&mut protocol, 10);
        assert_eq!(protocol.exchanges(), 1000);
        let failure_rate = protocol.failed_exchanges() as f64 / protocol.exchanges() as f64;
        assert!(
            (failure_rate - 0.5).abs() < 0.1,
            "roughly half of the requests should be lost, got {failure_rate}"
        );
        // Views still function.
        assert!(protocol.view(NodeIndex::new(0)).is_some());
    }

    #[test]
    fn joiners_are_absorbed_and_leavers_forgotten() {
        use bss_sim::churn::UniformChurn;
        let mut rng = SimRng::seed_from(5);
        let network = Network::with_random_ids(100, &mut rng);
        let mut eng = CycleEngine::new(network, rng).with_churn(Box::new(UniformChurn::new(0.05)));
        let mut protocol = NewscastProtocol::new(NewscastParams::paper_default());
        protocol.init_all(eng.context_mut());
        eng.run(&mut protocol, 30);
        // All alive nodes have views; dead nodes have none.
        for node in eng.context().network.all_indices() {
            if eng.context().network.is_alive(node) {
                assert!(
                    protocol.view(node).is_some(),
                    "alive node {node} lost its view"
                );
            } else {
                assert!(
                    protocol.view(node).is_none(),
                    "dead node {node} kept a view"
                );
            }
        }
        // Stale descriptors (pointing at dead nodes) are rare after enough cycles.
        let network = &eng.context().network;
        let mut dead_pointers = 0usize;
        let mut total = 0usize;
        for node in network.alive_indices() {
            for d in protocol.view(node).unwrap() {
                total += 1;
                if !network.is_alive(NodeIndex::new(d.address())) {
                    dead_pointers += 1;
                }
            }
        }
        let dead_fraction = dead_pointers as f64 / total as f64;
        assert!(
            dead_fraction < 0.25,
            "aging should purge most dead descriptors, got {dead_fraction}"
        );
    }

    #[test]
    fn init_node_with_respects_capacity_and_self_exclusion() {
        let mut eng = engine(10, 6);
        let mut protocol = NewscastProtocol::new(NewscastParams {
            view_size: 3,
            period_millis: 1000,
            ..NewscastParams::paper_default()
        });
        let own = eng.context().network.descriptor(NodeIndex::new(0), 0);
        let seeds: Vec<_> = (0..10u32)
            .map(|i| {
                eng.context()
                    .network
                    .descriptor(NodeIndex::new(i), u64::from(i))
            })
            .chain(std::iter::once(own))
            .collect();
        protocol.init_node_with(NodeIndex::new(0), seeds, eng.context_mut());
        let view = protocol.view(NodeIndex::new(0)).unwrap();
        assert_eq!(view.len(), 3);
        assert!(view.iter().all(|d| d.address() != 0));
        // Freshest first.
        assert!(view[0].timestamp() >= view[1].timestamp());
        assert_eq!(protocol.initialised_nodes(), 1);
    }

    #[test]
    fn skewed_initialisation_randomises_quickly() {
        // Start every node with the *same* single contact (node 0) — the worst
        // case mentioned in §3 — and verify the views spread out.
        let mut eng = engine(200, 7);
        let mut protocol = NewscastProtocol::new(NewscastParams::paper_default());
        let contact = eng.context().network.descriptor(NodeIndex::new(0), 0);
        for node in eng.context().network.all_indices().collect::<Vec<_>>() {
            if node != NodeIndex::new(0) {
                protocol.init_node_with(node, vec![contact], eng.context_mut());
            } else {
                protocol.init_node_with(node, vec![], eng.context_mut());
            }
        }
        eng.run(&mut protocol, 20);
        // Count distinct descriptors across all views: should cover most nodes.
        let mut seen = std::collections::HashSet::new();
        for node in eng.context().network.all_indices() {
            for d in protocol.view(node).unwrap_or(&[]) {
                seen.insert(d.address());
            }
        }
        assert!(
            seen.len() > 150,
            "views should reference most of the network, saw {}",
            seen.len()
        );
    }

    #[test]
    fn params_accessor_returns_configuration() {
        let protocol = NewscastProtocol::new(NewscastParams::paper_default());
        assert_eq!(protocol.params().view_size, 30);
    }

    #[test]
    fn view_aging_purges_expired_descriptors_during_merges() {
        // Two identical runs, one with a view aging bound: after enough calm
        // cycles both converge to fresh views, but only the aged protocol
        // guarantees that *no* descriptor older than the bound survives a
        // merge — even while views are not at capacity.
        let mut rng = SimRng::seed_from(21);
        let network = Network::with_random_ids(60, &mut rng);
        let mut eng = CycleEngine::new(network, rng);
        let mut protocol = NewscastProtocol::new(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            descriptor_max_age: Some(4),
            ..NewscastParams::paper_default()
        });
        protocol.init_all(eng.context_mut());
        eng.run(&mut protocol, 12);
        let now = 11; // last executed cycle stamped exchanges with this value
        for node in eng.context().network.all_indices() {
            let view = protocol
                .view_unpacked(node, &eng.context().network)
                .unwrap_or_default();
            for d in view {
                assert!(
                    !d.is_expired(now, 4),
                    "aged view kept an expired descriptor: ts {} at cycle {now}",
                    d.timestamp()
                );
            }
        }
    }

    fn run_hub_attack(quota: Option<usize>, seed: u64) -> (NewscastProtocol, CycleEngine) {
        let mut eng = engine(80, seed);
        let mut protocol = NewscastProtocol::new(NewscastParams {
            view_size: 10,
            period_millis: 1000,
            view_diversity_quota: quota,
            ..NewscastParams::paper_default()
        });
        // One hub attacker, active from cycle 3 onwards.
        let mut model = AdversaryModel::new(3, u64::MAX, AdversaryBehavior::HubAttack);
        model.note_converted(NodeIndex::new(0));
        PeerSampler::install_adversary(&mut protocol, model);
        protocol.init_all(eng.context_mut());
        eng.run(&mut protocol, 20);
        (protocol, eng)
    }

    fn hub_slots_per_view(protocol: &NewscastProtocol, eng: &CycleEngine) -> usize {
        let network = &eng.context().network;
        let mut worst = 0usize;
        for node in network.alive_indices().filter(|&n| n != NodeIndex::new(0)) {
            let held = protocol
                .view(node)
                .map(|view| view.iter().filter(|d| d.address() == 0).count())
                .unwrap_or(0);
            worst = worst.max(held);
        }
        worst
    }

    #[test]
    fn hub_attack_floods_views_and_quota_caps_it() {
        // Undefended: the sybil flood (10 fresh distinct-identifier copies of
        // the hub per exchange) captures most of its contacts' views.
        let (protocol, eng) = run_hub_attack(None, 11);
        assert!(
            hub_slots_per_view(&protocol, &eng) >= 8,
            "an undefended hub should dominate some view, worst {}",
            hub_slots_per_view(&protocol, &eng)
        );
        // Defended: no view ever holds more than `quota` slots for one origin.
        let (protocol, eng) = run_hub_attack(Some(2), 11);
        assert!(
            hub_slots_per_view(&protocol, &eng) <= 2,
            "quota must cap per-origin slots, worst {}",
            hub_slots_per_view(&protocol, &eng)
        );
    }

    #[test]
    fn diversity_quota_is_invisible_to_honest_traffic() {
        // With one identifier per address (the honest registry), a quota of 1
        // must leave the run byte-identical to the unconstrained protocol.
        let (baseline, eng_a) = run_newscast(100, 15, 9);
        let mut eng = engine(100, 9);
        let mut quota = NewscastProtocol::new(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            view_diversity_quota: Some(1),
            ..NewscastParams::paper_default()
        });
        quota.init_all(eng.context_mut());
        eng.run(&mut quota, 15);
        for node in eng_a.context().network.all_indices() {
            assert_eq!(
                baseline.view(node),
                quota.view(node),
                "quota changed an honest view at {node}"
            );
        }
    }

    #[test]
    fn quality_snapshot_reports_overlay_health() {
        let (protocol, eng) = run_newscast(100, 15, 10);
        let quality = PeerSampler::quality(&protocol, &eng.context().network)
            .expect("newscast maintains an overlay");
        assert!((quality.in_degree_mean - 20.0).abs() < 2.0);
        assert!(quality.in_degree_max >= quality.in_degree_mean);
        assert!(quality.in_degree_gini >= 0.0 && quality.in_degree_gini < 0.5);
        assert_eq!(quality.dead_pointer_fraction, 0.0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Regression for the joiner-timestamp bug: a node initialised at
            /// cycle `c` must have every seeded view descriptor stamped `c`,
            /// not 0 — under churn, timestamp-0 seeds made fresh joiners'
            /// contacts look maximally stale to freshness ranking and to the
            /// descriptor-aging filter.
            #[test]
            fn joiners_views_are_stamped_with_their_join_cycle(
                seed in 0u64..500,
                join_cycle in 1u64..400,
                view_size in 2usize..16,
            ) {
                let mut rng = SimRng::seed_from(seed);
                let network = Network::with_random_ids(30, &mut rng);
                let mut ctx = bss_sim::engine::cycle::EngineContext::new(network, rng);
                let mut protocol = NewscastProtocol::new(NewscastParams {
                    view_size,
                    period_millis: 1000,
                    ..NewscastParams::paper_default()
                });
                let joiner = {
                    let rng = &mut ctx.rng;
                    ctx.network.add_random_node(rng)
                };
                PeerSampler::init_node(&mut protocol, joiner, join_cycle, &mut ctx);
                let view = protocol
                    .view_unpacked(joiner, &ctx.network)
                    .expect("joiner initialised");
                prop_assert!(!view.is_empty());
                for d in &view {
                    prop_assert_eq!(
                        d.timestamp(),
                        join_cycle,
                        "seed descriptor stamped with the wrong cycle"
                    );
                }
                // And under an aging bound the seeds survive the very next
                // merge instead of being rejected as expired.
                for d in &view {
                    prop_assert!(!d.is_expired(join_cycle + 1, 2));
                }
            }
        }
    }
}
