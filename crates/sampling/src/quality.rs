//! Diagnostics for peer-sampling quality.
//!
//! The bootstrap protocol's convergence depends on the sampling layer supplying
//! "sufficiently random" samples (§3). These helpers quantify that for a running
//! [`NewscastProtocol`](crate::newscast::NewscastProtocol): the in-degree
//! distribution of the overlay induced by the caches (uniformly random graphs have
//! a tight, Poisson-like in-degree distribution), the fraction of cache entries
//! pointing at departed nodes, and whether the induced overlay is connected (a
//! disconnected sampling overlay would partition every layer built on top of it).

use crate::newscast::NewscastProtocol;
use bss_sim::network::{Network, NodeIndex};
use bss_util::stats::{Histogram, Summary};
use std::collections::{HashSet, VecDeque};

/// Materialises the alive-node set once, so each diagnostic walks the network
/// a single time instead of re-filtering the registry per pass.
fn alive_set(network: &Network) -> Vec<NodeIndex> {
    network.alive_indices().collect()
}

/// The in-degree distribution of the directed graph "node → nodes in its view",
/// computed over alive nodes only.
pub fn in_degree_histogram(protocol: &NewscastProtocol, network: &Network) -> Histogram {
    let alive = alive_set(network);
    let mut in_degree = vec![0u64; network.len()];
    for &node in &alive {
        if let Some(view) = protocol.view(node) {
            for descriptor in view {
                let target = NodeIndex::new(descriptor.address());
                if target.as_usize() < in_degree.len() && network.is_alive(target) {
                    in_degree[target.as_usize()] += 1;
                }
            }
        }
    }
    let mut histogram = Histogram::new(1);
    for &node in &alive {
        histogram.record(in_degree[node.as_usize()]);
    }
    histogram
}

/// Summary statistics of the in-degree distribution (mean should be close to the
/// view size; the standard deviation measures how far the overlay is from a
/// uniformly random graph).
pub fn in_degree_summary(protocol: &NewscastProtocol, network: &Network) -> Summary {
    let alive = alive_set(network);
    let mut in_degree = vec![0f64; network.len()];
    for &node in &alive {
        if let Some(view) = protocol.view(node) {
            for descriptor in view {
                let target = descriptor.address() as usize;
                if target < in_degree.len() {
                    in_degree[target] += 1.0;
                }
            }
        }
    }
    let degrees: Vec<f64> = alive.iter().map(|n| in_degree[n.as_usize()]).collect();
    Summary::of(&degrees)
}

/// The Gini coefficient of the in-degree distribution over alive nodes: 0 for
/// a perfectly balanced overlay, approaching 1 when a few hubs hold almost all
/// incoming pointers. A hub attack — one origin flooding sybil copies of
/// itself into every view — drives this up sharply, which is why the
/// measurement harness tracks it per cycle in adversarial runs.
pub fn in_degree_gini(protocol: &NewscastProtocol, network: &Network) -> f64 {
    snapshot(protocol, network).in_degree_gini
}

/// One consistent reading of the sampler's overlay quality, computed in a
/// single pass over the views. This is what the experiment harness records per
/// measured cycle (see `PeerSampler::quality`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SamplingQuality {
    /// Mean in-degree over alive nodes (close to the view size when healthy).
    pub in_degree_mean: f64,
    /// Largest in-degree held by any alive node (hubs spike this).
    pub in_degree_max: f64,
    /// Gini coefficient of the in-degree distribution (0 balanced, → 1 hub).
    pub in_degree_gini: f64,
    /// Fraction of view entries pointing at departed nodes.
    pub dead_pointer_fraction: f64,
}

/// Computes a [`SamplingQuality`] snapshot: in-degree mean/max/Gini over alive
/// nodes (counting pointers exactly like [`in_degree_summary`]) plus the
/// dead-pointer fraction, all from one walk over the alive views.
pub fn snapshot(protocol: &NewscastProtocol, network: &Network) -> SamplingQuality {
    let alive = alive_set(network);
    let mut in_degree = vec![0u64; network.len()];
    let mut dead = 0usize;
    let mut total = 0usize;
    for &node in &alive {
        if let Some(view) = protocol.view(node) {
            for descriptor in view {
                let target = descriptor.address() as usize;
                if target < in_degree.len() {
                    in_degree[target] += 1;
                }
                total += 1;
                if !network.is_alive(NodeIndex::new(descriptor.address())) {
                    dead += 1;
                }
            }
        }
    }
    let mut degrees: Vec<u64> = alive.iter().map(|n| in_degree[n.as_usize()]).collect();
    degrees.sort_unstable();
    let count = degrees.len();
    let sum: u64 = degrees.iter().sum();
    let (mean, max, gini) = if count == 0 || sum == 0 {
        (0.0, 0.0, 0.0)
    } else {
        // Gini over the sorted degrees: Σ (2i − n + 1)·xᵢ / (n·Σx).
        let weighted: f64 = degrees
            .iter()
            .enumerate()
            .map(|(i, &x)| (2.0 * i as f64 - count as f64 + 1.0) * x as f64)
            .sum();
        (
            sum as f64 / count as f64,
            *degrees.last().expect("non-empty") as f64,
            weighted / (count as f64 * sum as f64),
        )
    };
    SamplingQuality {
        in_degree_mean: mean,
        in_degree_max: max,
        in_degree_gini: gini,
        dead_pointer_fraction: if total == 0 {
            0.0
        } else {
            dead as f64 / total as f64
        },
    }
}

/// Fraction of view entries (over all alive nodes) that point at departed nodes.
/// NEWSCAST's freshest-first aging keeps this small even under churn.
pub fn dead_pointer_fraction(protocol: &NewscastProtocol, network: &Network) -> f64 {
    // Single pass: iterating the registry directly is already one walk, so no
    // materialised alive set is needed here.
    let mut dead = 0usize;
    let mut total = 0usize;
    for node in network.alive_indices() {
        if let Some(view) = protocol.view(node) {
            for descriptor in view {
                total += 1;
                if !network.is_alive(NodeIndex::new(descriptor.address())) {
                    dead += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        dead as f64 / total as f64
    }
}

/// Whether the *undirected* overlay induced by the views connects all alive nodes.
///
/// Connectivity of the sampling overlay is the minimum requirement for any layer
/// built on top of it: a disconnected overlay cannot be repaired by the bootstrap
/// protocol because information never flows between components.
pub fn is_connected(protocol: &NewscastProtocol, network: &Network) -> bool {
    let alive = alive_set(network);
    if alive.len() <= 1 {
        return true;
    }
    // Build an undirected adjacency over alive nodes from the views.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); network.len()];
    for &node in &alive {
        if let Some(view) = protocol.view(node) {
            for descriptor in view {
                let target = NodeIndex::new(descriptor.address());
                if network.is_alive(target) {
                    adjacency[node.as_usize()].push(target.as_usize());
                    adjacency[target.as_usize()].push(node.as_usize());
                }
            }
        }
    }
    let start = alive[0].as_usize();
    let mut visited: HashSet<usize> = HashSet::with_capacity(alive.len());
    let mut queue = VecDeque::new();
    visited.insert(start);
    queue.push_back(start);
    while let Some(current) = queue.pop_front() {
        for &next in &adjacency[current] {
            if visited.insert(next) {
                queue.push_back(next);
            }
        }
    }
    visited.len() == alive.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::PeerSampler;
    use bss_sim::engine::cycle::CycleEngine;
    use bss_util::config::NewscastParams;
    use bss_util::rng::SimRng;

    fn converged_newscast(size: usize, cycles: u64, seed: u64) -> (NewscastProtocol, CycleEngine) {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        let mut engine = CycleEngine::new(network, rng);
        let mut protocol = NewscastProtocol::new(NewscastParams {
            view_size: 20,
            period_millis: 1000,
            ..NewscastParams::paper_default()
        });
        protocol.init_all(engine.context_mut());
        engine.run(&mut protocol, cycles);
        (protocol, engine)
    }

    #[test]
    fn in_degree_is_balanced_after_convergence() {
        let (protocol, engine) = converged_newscast(300, 25, 1);
        let network = &engine.context().network;
        let summary = in_degree_summary(&protocol, network);
        assert_eq!(summary.count, 300);
        // The mean in-degree equals the mean view size (≈ 20).
        assert!((summary.mean - 20.0).abs() < 1.5, "mean {summary}");
        // NEWSCAST's freshest-first rule produces a somewhat skewed in-degree
        // distribution (temporary hubs), but no node should dominate the caches.
        assert!(summary.max < 150.0, "max in-degree too large: {summary}");
        assert!(summary.min >= 0.0);
        let histogram = in_degree_histogram(&protocol, network);
        assert_eq!(histogram.count(), 300);
    }

    #[test]
    fn overlay_is_connected_after_convergence() {
        let (protocol, engine) = converged_newscast(200, 20, 2);
        assert!(is_connected(&protocol, &engine.context().network));
    }

    #[test]
    fn dead_pointer_fraction_reflects_failures() {
        let (mut protocol, mut engine) = converged_newscast(100, 15, 3);
        assert_eq!(
            dead_pointer_fraction(&protocol, &engine.context().network),
            0.0
        );
        // Kill 30 % of the nodes without letting the protocol react.
        let victims: Vec<NodeIndex> = engine.context().network.alive_indices().take(30).collect();
        for v in victims {
            engine.context_mut().network.kill(v);
            PeerSampler::node_departed(&mut protocol, v, engine.context_mut());
        }
        let fraction_before = dead_pointer_fraction(&protocol, &engine.context().network);
        assert!(
            fraction_before > 0.05,
            "dead pointers should appear: {fraction_before}"
        );
        // Let NEWSCAST heal.
        engine.run(&mut protocol, 15);
        let fraction_after = dead_pointer_fraction(&protocol, &engine.context().network);
        assert!(
            fraction_after < fraction_before,
            "healing should reduce dead pointers ({fraction_before} -> {fraction_after})"
        );
    }

    #[test]
    fn trivial_networks_are_connected() {
        let mut rng = SimRng::seed_from(4);
        let network = Network::with_random_ids(1, &mut rng);
        let protocol = NewscastProtocol::new(NewscastParams::paper_default());
        assert!(is_connected(&protocol, &network));
        assert_eq!(dead_pointer_fraction(&protocol, &network), 0.0);
    }

    #[test]
    fn isolated_views_are_detected_as_disconnected() {
        // Two nodes that only know themselves (empty views) are disconnected.
        let mut rng = SimRng::seed_from(5);
        let network = Network::with_random_ids(2, &mut rng);
        let mut engine = CycleEngine::new(network, rng);
        let mut protocol = NewscastProtocol::new(NewscastParams::paper_default());
        protocol.init_node_with(NodeIndex::new(0), vec![], engine.context_mut());
        protocol.init_node_with(NodeIndex::new(1), vec![], engine.context_mut());
        assert!(!is_connected(&protocol, &engine.context().network));
    }
}
