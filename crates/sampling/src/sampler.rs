//! The peer sampling service abstraction and the idealised oracle implementation.
//!
//! The bootstrapping protocol only needs one thing from the layer below it: "cr
//! random samples taken from the sampling service" when composing a message (§4).
//! [`PeerSampler`] captures that dependency; the protocol crates are written
//! against the trait so the same bootstrap code runs over real NEWSCAST gossip or
//! over the [`OracleSampler`], which returns perfectly uniform samples straight
//! from the registry. Comparing the two isolates the effect of sampling quality on
//! convergence (an ablation reported in `EXPERIMENTS.md`).

use crate::quality::SamplingQuality;
use bss_sim::adversary::AdversaryModel;
use bss_sim::engine::cycle::EngineContext;
use bss_sim::network::{Network, NodeIndex};
use bss_util::descriptor::Descriptor;
use std::fmt::Debug;

/// A source of random peer descriptors, as seen by one simulated node.
///
/// Implementations may keep per-node state (NEWSCAST caches) or none at all (the
/// oracle). All methods receive the [`EngineContext`] so they can reach the node
/// registry, the RNG and the transport.
pub trait PeerSampler: Debug {
    /// Initialises per-node state for `node` (called for every initial node and
    /// for every later joiner before it first samples). `cycle` is the logical
    /// time of the initialisation — 0 at start-up, the join cycle for later
    /// joiners — and is the timestamp stateful samplers must stamp on the
    /// seeded descriptors: seeding a mid-run joiner's view with timestamp-0
    /// descriptors would make the fresh node's contacts look maximally stale
    /// to freshness ranking and to the descriptor-aging failure detector.
    fn init_node(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext);

    /// Initialises every node currently alive in the registry (at cycle 0, the
    /// start-up condition).
    fn init_all(&mut self, ctx: &mut EngineContext) {
        let nodes: Vec<NodeIndex> = ctx.network.alive_indices().collect();
        for node in nodes {
            self.init_node(node, 0, ctx);
        }
    }

    /// Forgets per-node state for a departed node.
    fn node_departed(&mut self, _node: NodeIndex, _ctx: &mut EngineContext) {}

    /// Installs the scenario's Byzantine adversary model: samplers whose own
    /// gossip traffic can be subverted (NEWSCAST's view exchanges) keep the
    /// model and consult it when composing messages. The default ignores it —
    /// a stateless sampler like the oracle has no messages to subvert.
    fn install_adversary(&mut self, _model: AdversaryModel) {}

    /// Marks `node` as converted in the sampler's copy of the adversary model
    /// (a no-op when no model is installed or the sampler keeps none).
    fn node_converted(&mut self, _node: NodeIndex) {}

    /// A snapshot of the sampler's overlay quality (in-degree distribution,
    /// dead pointers), when the sampler maintains an overlay to measure.
    /// Stateless samplers return `None` — the measurement harness uses this
    /// as the capability gate for recording quality series.
    fn quality(&self, _network: &Network) -> Option<SamplingQuality> {
        None
    }

    /// Executes one gossip step of the sampling protocol itself for `node` (a no-op
    /// for stateless implementations).
    fn step(&mut self, _node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {}

    /// Draws up to `count` random peer descriptors for `node`. Fewer (possibly
    /// zero) descriptors may be returned when the sampler does not know enough
    /// peers. The returned descriptors never include `node` itself.
    fn sample(
        &mut self,
        node: NodeIndex,
        count: usize,
        cycle: u64,
        ctx: &mut EngineContext,
    ) -> Vec<Descriptor<NodeIndex>>;

    /// [`PeerSampler::sample`] into a caller-owned buffer: appends the drawn
    /// descriptors to `out` instead of returning a fresh vector, letting
    /// per-exchange callers reuse their scratch. Consumes the RNG stream
    /// exactly like [`PeerSampler::sample`]; the default implementation
    /// delegates to it.
    fn sample_into(
        &mut self,
        node: NodeIndex,
        count: usize,
        cycle: u64,
        ctx: &mut EngineContext,
        out: &mut Vec<Descriptor<NodeIndex>>,
    ) {
        out.extend(self.sample(node, count, cycle, ctx));
    }
}

/// An idealised peer sampling service: every call returns distinct, uniformly
/// random alive peers taken directly from the global registry.
///
/// This models the paper's working assumption that "the peer sampling service is
/// available" and produces high-quality samples; it is also the natural baseline
/// when measuring how much NEWSCAST's imperfect randomness costs the bootstrap
/// protocol.
#[derive(Debug, Default, Clone, Copy)]
pub struct OracleSampler;

impl OracleSampler {
    /// Creates an oracle sampler.
    pub fn new() -> Self {
        OracleSampler
    }
}

impl PeerSampler for OracleSampler {
    fn init_node(&mut self, _node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {}

    fn sample(
        &mut self,
        node: NodeIndex,
        count: usize,
        cycle: u64,
        ctx: &mut EngineContext,
    ) -> Vec<Descriptor<NodeIndex>> {
        // O(count · log n) via the registry's Fenwick-backed alive set; the
        // node sequence and RNG stream are identical to materialising the
        // alive set and partial-Fisher–Yates sampling it.
        let picked = ctx
            .network
            .sample_alive_excluding(node, count, &mut ctx.rng);
        picked
            .into_iter()
            .map(|peer| ctx.network.descriptor(peer, cycle))
            .collect()
    }

    fn sample_into(
        &mut self,
        node: NodeIndex,
        count: usize,
        cycle: u64,
        ctx: &mut EngineContext,
        out: &mut Vec<Descriptor<NodeIndex>>,
    ) {
        let picked = ctx
            .network
            .sample_alive_excluding(node, count, &mut ctx.rng);
        out.extend(
            picked
                .into_iter()
                .map(|peer| ctx.network.descriptor(peer, cycle)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bss_sim::network::Network;
    use bss_util::rng::SimRng;

    fn context(size: usize, seed: u64) -> EngineContext {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        EngineContext::new(network, rng)
    }

    #[test]
    fn oracle_returns_requested_number_of_distinct_peers() {
        let mut ctx = context(100, 1);
        let mut oracle = OracleSampler::new();
        oracle.init_all(&mut ctx);
        let me = NodeIndex::new(0);
        let samples = oracle.sample(me, 30, 5, &mut ctx);
        assert_eq!(samples.len(), 30);
        let unique: std::collections::HashSet<_> =
            samples.iter().map(Descriptor::address).collect();
        assert_eq!(unique.len(), 30, "samples must be distinct");
        assert!(unique.iter().all(|&a| a != me), "never sample yourself");
        assert!(samples.iter().all(|d| d.timestamp() == 5));
        assert!(samples
            .iter()
            .all(|d| ctx.network.id(d.address()) == d.id()));
    }

    #[test]
    fn oracle_caps_at_available_peers() {
        let mut ctx = context(5, 2);
        let mut oracle = OracleSampler::new();
        let samples = oracle.sample(NodeIndex::new(0), 30, 0, &mut ctx);
        assert_eq!(samples.len(), 4, "only four other nodes exist");
    }

    #[test]
    fn oracle_skips_dead_nodes() {
        let mut ctx = context(10, 3);
        for raw in 1..9u32 {
            ctx.network.kill(NodeIndex::new(raw));
        }
        let mut oracle = OracleSampler::new();
        let samples = oracle.sample(NodeIndex::new(0), 10, 0, &mut ctx);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].address(), NodeIndex::new(9));
    }

    #[test]
    fn oracle_sampling_is_roughly_uniform() {
        let mut ctx = context(20, 4);
        let mut oracle = OracleSampler::new();
        let mut counts = [0u32; 20];
        for _ in 0..2000 {
            for d in oracle.sample(NodeIndex::new(0), 1, 0, &mut ctx) {
                counts[d.address().as_usize()] += 1;
            }
        }
        assert_eq!(counts[0], 0, "node never samples itself");
        let min = *counts[1..].iter().min().unwrap();
        let max = *counts[1..].iter().max().unwrap();
        assert!(min > 0);
        assert!(
            f64::from(max) / f64::from(min) < 2.0,
            "counts should be roughly balanced: min={min} max={max}"
        );
    }

    #[test]
    fn oracle_on_lonely_network_returns_empty() {
        let mut ctx = context(1, 5);
        let mut oracle = OracleSampler::new();
        assert!(oracle.sample(NodeIndex::new(0), 10, 0, &mut ctx).is_empty());
    }
}
