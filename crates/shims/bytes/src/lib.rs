//! Minimal offline stand-in for the `bytes` crate.
//!
//! Provides the subset used by the workspace's UDP wire codec: an owned
//! immutable buffer ([`Bytes`]), a growable write buffer ([`BytesMut`]) and
//! big-endian cursor-style read/write traits ([`Buf`], [`BufMut`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;

/// An immutable byte buffer (here simply an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies the slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer for building messages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with at least the given capacity reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Cursor-style big-endian reads over a shrinking `&[u8]`.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Reads one byte and advances.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u16` and advances.
    fn get_u16(&mut self) -> u16;

    /// Reads a big-endian `u32` and advances.
    fn get_u32(&mut self) -> u32;

    /// Reads a big-endian `u64` and advances.
    fn get_u64(&mut self) -> u64;

    /// Fills `target` from the front of the buffer and advances.
    fn copy_to_slice(&mut self, target: &mut [u8]);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let mut bytes = [0u8; 1];
        self.copy_to_slice(&mut bytes);
        bytes[0]
    }

    fn get_u16(&mut self) -> u16 {
        let mut bytes = [0u8; 2];
        self.copy_to_slice(&mut bytes);
        u16::from_be_bytes(bytes)
    }

    fn get_u32(&mut self) -> u32 {
        let mut bytes = [0u8; 4];
        self.copy_to_slice(&mut bytes);
        u32::from_be_bytes(bytes)
    }

    fn get_u64(&mut self) -> u64 {
        let mut bytes = [0u8; 8];
        self.copy_to_slice(&mut bytes);
        u64::from_be_bytes(bytes)
    }

    fn copy_to_slice(&mut self, target: &mut [u8]) {
        assert!(
            self.len() >= target.len(),
            "buffer underflow: need {} bytes, have {}",
            target.len(),
            self.len()
        );
        let (head, tail) = self.split_at(target.len());
        target.copy_from_slice(head);
        *self = tail;
    }
}

/// Big-endian appends onto a growing buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64);

    /// Appends a slice verbatim.
    fn put_slice(&mut self, slice: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_u16(&mut self, value: u16) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u32(&mut self, value: u32) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.data.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut buffer = BytesMut::with_capacity(32);
        buffer.put_u8(0xAB);
        buffer.put_u16(0x1234);
        buffer.put_u32(0xDEAD_BEEF);
        buffer.put_u64(0x0102_0304_0506_0708);
        buffer.put_slice(&[9, 9]);
        let frozen = buffer.freeze();
        assert_eq!(frozen.len(), 1 + 2 + 4 + 8 + 2);

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16(), 0x1234);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0102_0304_0506_0708);
        let mut tail = [0u8; 2];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(tail, [9, 9]);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1];
        let _ = cursor.get_u16();
    }
}
