//! Minimal offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros — with a simple
//! wall-clock measurement loop instead of criterion's statistical analysis.
//! Each benchmark runs a warm-up pass, then `sample_size` timed samples, and
//! prints the per-iteration mean and min/max across samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_SAMPLE_SIZE: usize = 20;
const WARM_UP: Duration = Duration::from_millis(200);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);

/// The benchmark driver handed to every `criterion_group!` function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named set of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |bencher| f(bencher, input));
        self
    }

    /// Ends the group (a no-op; reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: a function name plus a parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a displayed parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Conversion accepted by the `bench_*` methods: a [`BenchmarkId`] or a plain
/// string label.
pub trait IntoBenchmarkId {
    /// The label to report the benchmark under.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times the closure handed to it by the benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the elapsed wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iterations = self.iterations.max(1);
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: run single iterations until the warm-up budget is spent, using
    // the observed cost to size the timed samples.
    let warm_up_start = Instant::now();
    let mut warm_up_iterations = 0u64;
    let mut bencher = Bencher {
        iterations: 1,
        elapsed: Duration::ZERO,
    };
    while warm_up_start.elapsed() < WARM_UP {
        f(&mut bencher);
        warm_up_iterations += 1;
    }
    let per_iteration = warm_up_start.elapsed() / warm_up_iterations.max(1) as u32;
    let iterations_per_sample = if per_iteration.is_zero() {
        1000
    } else {
        (TARGET_SAMPLE_TIME.as_nanos() / per_iteration.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut per_iteration_times = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iterations = iterations_per_sample;
        f(&mut bencher);
        per_iteration_times.push(bencher.elapsed.div_f64(iterations_per_sample as f64));
    }
    let total: Duration = per_iteration_times.iter().sum();
    let mean = total.div_f64(per_iteration_times.len().max(1) as f64);
    let min = per_iteration_times
        .iter()
        .min()
        .copied()
        .unwrap_or_default();
    let max = per_iteration_times
        .iter()
        .max()
        .copied()
        .unwrap_or_default();
    println!(
        "{label:<60} time: [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  \
         ({sample_size} samples × {iterations_per_sample} iters)"
    );
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the listed groups, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut criterion = Criterion::default();
        criterion.sample_size(2);
        let mut runs = 0u64;
        criterion.bench_function("smoke", |bencher| {
            bencher.iter(|| {
                runs += 1;
                runs
            });
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_and_ids_compose_labels() {
        let id = BenchmarkId::new("f", 42);
        assert_eq!(id.to_string(), "f/42");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
