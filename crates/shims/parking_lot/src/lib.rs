//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` behind parking_lot's non-poisoning API: `lock()`
//! returns the guard directly. A thread that panicked while holding the lock
//! does not poison it for everyone else — matching parking_lot semantics —
//! because the wrapper recovers the inner guard from a poison error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard, TryLockError};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed:
    /// the exclusive borrow proves no other thread holds the mutex).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trips_a_value() {
        let mutex = Mutex::new(41);
        *mutex.lock() += 1;
        assert_eq!(*mutex.lock(), 42);
        assert_eq!(mutex.into_inner(), 42);
    }

    #[test]
    fn panicking_holder_does_not_poison() {
        let shared = Arc::new(Mutex::new(0));
        let worker = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = worker.lock();
            panic!("die while holding the lock");
        })
        .join();
        assert_eq!(*shared.lock(), 0);
    }
}
