//! Minimal offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the API this workspace's property tests use: the
//! [`proptest!`] macro, the [`prop_assert!`] family, [`prop_assume!`], the
//! [`Strategy`] trait with `prop_map`, tuple/range strategies, [`any`],
//! [`collection::vec`] and [`sample::select`].
//!
//! Properties really are exercised on hundreds of pseudo-random cases, but —
//! unlike real proptest — failing inputs are not shrunk; the failing case is
//! reported verbatim together with the seed. Runs are deterministic: the seed
//! is derived from the property name, and can be overridden with the
//! `PROPTEST_SEED` environment variable (`PROPTEST_CASES` overrides the case
//! count, default 256).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

/// How one generated test case ended, other than success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was rejected by [`prop_assume!`]; another case is drawn.
    Reject,
    /// An assertion failed; the property is falsified.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Outcome of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic pseudo-random generator driving value generation
/// (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift bounded generation; the modulo bias is irrelevant for
        // test-case generation.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a strategy producing `map(value)` for every generated `value`.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.inner.generate(rng))
    }
}

/// Types with a canonical generation strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value, occasionally an edge case.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // One draw in eight is an edge value, mirroring proptest's
                    // bias toward boundary cases.
                    if rng.below(8) == 0 {
                        const EDGES: [$ty; 4] = [0, 1, <$ty>::MAX, <$ty>::MAX / 2];
                        EDGES[rng.below(EDGES.len() as u64) as usize]
                    } else {
                        rng.next_u64() as $ty
                    }
                }
            }
        )*
    };
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Uniform in [0, 1): enough for probabilities and weights.
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Strategy returned by [`any`].
pub struct Any<A> {
    marker: PhantomData<A>,
}

impl<A> fmt::Debug for Any<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Any")
    }
}

impl<A> Clone for Any<A> {
    fn clone(&self) -> Self {
        Any {
            marker: PhantomData,
        }
    }
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The canonical strategy for a type: arbitrary values with edge-case bias.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any {
        marker: PhantomData,
    }
}

macro_rules! impl_strategy_for_range {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        // Full 64-bit domain: below(span + 1) would overflow
                        // (and saturating would silently exclude MAX).
                        return rng.next_u64() as $ty;
                    }
                    start + rng.below(span + 1) as $ty
                }
            }
        )*
    };
}

impl_strategy_for_range!(u8, u16, u32, u64, usize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $index:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    };
}

impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Per-block test configuration, set with `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u64,
}

impl ProptestConfig {
    /// A configuration requiring `cases` passing cases per property.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Collection strategies ([`vec`](collection::vec) and
/// [`hash_set`](collection::hash_set)).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.saturating_add(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let target = self.size.min + rng.below(span.saturating_add(1)) as usize;
            let mut set = HashSet::with_capacity(target);
            // Duplicates (likely with edge-biased generators) are retried, up
            // to a cap so a narrow value space cannot loop forever.
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(100).max(100) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }

    /// Generates hash sets whose elements come from `element` and whose size
    /// falls in `size` (best-effort when the value space is small).
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// An inclusive range of collection sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(range: std::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

/// Sampling strategies ([`select`](sample::select)).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly among the given options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Drives one property: draws cases from `strategy` until the configured
/// number of cases has passed, panicking on the first falsified case.
///
/// Used by the [`proptest!`] macro; not normally called directly.
pub fn run_cases<S>(name: &str, strategy: S, test: impl FnMut(S::Value) -> TestCaseResult)
where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
{
    run_cases_config(name, ProptestConfig::default(), strategy, test);
}

/// [`run_cases`] with an explicit [`ProptestConfig`] (the `PROPTEST_CASES`
/// environment variable still takes precedence, for debugging).
pub fn run_cases_config<S>(
    name: &str,
    config: ProptestConfig,
    strategy: S,
    mut test: impl FnMut(S::Value) -> TestCaseResult,
) where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases);
    let seed: u64 = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            // Stable per-property seed so failures reproduce across runs.
            name.bytes().fold(0xCBF2_9CE4_8422_2325u64, |hash, byte| {
                (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3)
            })
        });
    let mut rng = TestRng::from_seed(seed);
    let mut passed = 0u64;
    let mut rejected = 0u64;
    while passed < cases {
        let value = strategy.generate(&mut rng);
        match test(value.clone()) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 16,
                    "property `{name}`: too many prop_assume rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(message)) => panic!(
                "property `{name}` falsified after {passed} passing cases \
                 (seed {seed}, rerun with PROPTEST_SEED={seed}):\n  {message}\n  input: {value:?}"
            ),
        }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases_config(
                    stringify!($name),
                    $config,
                    ($($strategy,)+),
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )+
    };
    (#![proptest_config($config:expr)] $($rest:tt)+) => {
        $crate::proptest! { @with_config ($config) $($rest)+ }
    };
    ($($rest:tt)+) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)+ }
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n  right: {right:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {left:?}\n  right: {right:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current test case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {left:?}",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {left:?}",
                format!($($fmt)+),
            )));
        }
    }};
}

/// Discards the current test case (drawing a fresh one) unless the condition
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(u64::from(a) + u64::from(b), u64::from(b) + u64::from(a));
        }

        #[test]
        fn assume_filters_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn vec_lengths_respect_the_size_range(items in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&items.len()));
        }

        #[test]
        fn select_picks_an_option(choice in prop::sample::select(vec![1u8, 2, 4, 8])) {
            prop_assert!([1u8, 2, 4, 8].contains(&choice));
        }

        #[test]
        fn prop_map_applies(tripled in (0u64..10).prop_map(|n| n * 3)) {
            prop_assert_eq!(tripled % 3, 0);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics_with_input() {
        crate::run_cases("always_fails", (crate::any::<u8>(),), |(_n,)| {
            Err(crate::TestCaseError::fail("nope"))
        });
    }

    #[test]
    fn inclusive_ranges_reach_their_upper_bound() {
        let mut rng = crate::TestRng::from_seed(9);
        let narrow = 254u8..=255;
        let drawn: std::collections::HashSet<u8> =
            (0..200).map(|_| narrow.generate(&mut rng)).collect();
        assert!(drawn.contains(&254) && drawn.contains(&255), "{drawn:?}");

        // The full 64-bit domain takes a dedicated path; the top half of the
        // domain must be reachable (it was silently excluded before).
        let full = 0u64..=u64::MAX;
        assert!((0..200).any(|_| full.generate(&mut rng) > u64::MAX / 2));
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_name() {
        let collect = || {
            let mut seen = Vec::new();
            crate::run_cases("determinism_probe", (crate::any::<u64>(),), |(n,)| {
                seen.push(n);
                Ok(())
            });
            seen
        };
        assert_eq!(collect(), collect());
    }
}
