//! Minimal offline stand-in for the `serde` crate.
//!
//! Serialization is to a plain-text `key=value` line format (one line per
//! field, nested structs joined with `.`) rather than serde's generic data
//! model: enough for configuration round-trips and for code written against
//! the `Serialize` / `Deserialize` trait bounds to compile and behave
//! sensibly. The `derive` feature provides `#[derive(Serialize, Deserialize)]`
//! via the sibling `serde_derive` shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error raised when deserialization fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself to the `key=value` line format.
pub trait Serialize {
    /// Writes this value under the full key path `key` (structs fan out to
    /// `key.field`, scalars emit one `key=value` line).
    fn serialize_fields(&self, key: &str, out: &mut String);

    /// Serializes the value to a standalone string.
    fn to_plain(&self) -> String {
        let mut out = String::new();
        self.serialize_fields("", &mut out);
        out
    }
}

/// A type that can be parsed back from the `key=value` line format.
pub trait Deserialize<'de>: Sized {
    /// Reads this value from the full key path `key` in `map`.
    fn deserialize_fields(key: &str, map: &FieldMap<'de>) -> Result<Self, Error>;

    /// Deserializes a value from a standalone string.
    fn from_plain(input: &'de str) -> Result<Self, Error> {
        Self::deserialize_fields("", &FieldMap::parse(input))
    }
}

/// The parsed `key=value` lines of a serialized document.
#[derive(Debug, Clone, Default)]
pub struct FieldMap<'de> {
    entries: BTreeMap<&'de str, &'de str>,
}

impl<'de> FieldMap<'de> {
    /// Splits `input` into `key=value` entries, one per non-empty line. Keys
    /// are trimmed; values are kept verbatim so escaped string content (which
    /// may carry significant whitespace) survives.
    pub fn parse(input: &'de str) -> Self {
        let entries = input
            .lines()
            .filter(|line| !line.trim().is_empty())
            .filter_map(|line| line.split_once('='))
            .map(|(key, value)| (key.trim(), value))
            .collect();
        FieldMap { entries }
    }

    /// The verbatim (still-escaped) value stored under a full key.
    pub fn raw(&self, key: &str) -> Result<&'de str, Error> {
        self.entries
            .get(key)
            .copied()
            .ok_or_else(|| Error::custom(format!("missing field `{key}`")))
    }

    /// Whether anything is stored under `key` itself or under a nested
    /// `key.child` path — i.e. whether a value serialized at `key` is present
    /// at all. `Option` deserialization uses this to distinguish a missing
    /// value (`None`) from a present one.
    pub fn contains(&self, key: &str) -> bool {
        if self.entries.contains_key(key) {
            return true;
        }
        let prefix = format!("{key}.");
        self.entries.keys().any(|entry| entry.starts_with(&prefix))
    }

    /// Looks up a full key and parses its value with [`std::str::FromStr`]
    /// (whitespace-trimmed, as no scalar carries significant whitespace).
    pub fn lookup<T>(&self, key: &str) -> Result<T, Error>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        self.raw(key)?
            .trim()
            .parse()
            .map_err(|e| Error::custom(format!("field `{key}`: {e}")))
    }
}

/// Joins a field path prefix and a field name (`""` + `x` → `x`; `a` + `x` → `a.x`).
pub fn compose_key(prefix: &str, name: &str) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// The key a scalar stores itself under: the path itself, or `value` at the root.
fn scalar_key(key: &str) -> &str {
    if key.is_empty() {
        "value"
    } else {
        key
    }
}

macro_rules! impl_scalar {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize_fields(&self, key: &str, out: &mut String) {
                    out.push_str(scalar_key(key));
                    out.push('=');
                    out.push_str(&self.to_string());
                    out.push('\n');
                }

                fn to_plain(&self) -> String {
                    self.to_string()
                }
            }

            impl<'de> Deserialize<'de> for $ty {
                fn deserialize_fields(key: &str, map: &FieldMap<'de>) -> Result<Self, Error> {
                    map.lookup(scalar_key(key))
                }

                fn from_plain(input: &'de str) -> Result<Self, Error> {
                    input
                        .trim()
                        .parse()
                        .map_err(|e| Error::custom(format!("{e}")))
                }
            }
        )*
    };
}

impl_scalar!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, bool);

/// Percent-escapes the characters that would corrupt the line format.
fn escape_text(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '%' => out.push_str("%25"),
            '=' => out.push_str("%3D"),
            '\n' => out.push_str("%0A"),
            '\r' => out.push_str("%0D"),
            other => out.push(other),
        }
    }
    out
}

fn unescape_text(value: &str) -> Result<String, Error> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let code: String = chars.by_ref().take(2).collect();
        match code.as_str() {
            "25" => out.push('%'),
            "3D" => out.push('='),
            "0A" => out.push('\n'),
            "0D" => out.push('\r'),
            other => {
                return Err(Error::custom(format!("bad escape sequence `%{other}`")));
            }
        }
    }
    Ok(out)
}

// Options serialize as their content when present and as nothing at all when
// absent; deserialization treats a missing key (and missing nested children)
// as `None`. This matches serde's conventional `skip_serializing_if = "None"`
// + `default` handling closely enough for configuration round-trips.
//
// Known limitation (inherent to presence-by-key): a `Some` whose payload
// itself serializes to zero lines — `Some(None)`, or `Some` of a struct whose
// every field is `None` — is indistinguishable from `None` after a round
// trip. Scalar-or-struct optional fields (the only shape the workspace uses)
// round-trip exactly; avoid nesting options directly inside options.
impl<T: Serialize> Serialize for Option<T> {
    fn serialize_fields(&self, key: &str, out: &mut String) {
        if let Some(value) = self {
            value.serialize_fields(key, out);
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize_fields(key: &str, map: &FieldMap<'de>) -> Result<Self, Error> {
        if map.contains(scalar_key(key)) || map.contains(key) {
            T::deserialize_fields(key, map).map(Some)
        } else {
            Ok(None)
        }
    }
}

// Strings (and chars, which can be '=' or '\n') need escaping so that the
// line-oriented format survives arbitrary content.
impl Serialize for String {
    fn serialize_fields(&self, key: &str, out: &mut String) {
        out.push_str(scalar_key(key));
        out.push('=');
        out.push_str(&escape_text(self));
        out.push('\n');
    }

    fn to_plain(&self) -> String {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize_fields(key: &str, map: &FieldMap<'de>) -> Result<Self, Error> {
        unescape_text(map.raw(scalar_key(key))?)
    }

    fn from_plain(input: &'de str) -> Result<Self, Error> {
        Ok(input.to_string())
    }
}

impl Serialize for char {
    fn serialize_fields(&self, key: &str, out: &mut String) {
        self.to_string().serialize_fields(key, out);
    }

    fn to_plain(&self) -> String {
        self.to_string()
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize_fields(key: &str, map: &FieldMap<'de>) -> Result<Self, Error> {
        let text = String::deserialize_fields(key, map)?;
        let mut chars = text.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!(
                "expected a single character, got {text:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_round_trip_and_absent_keys_are_none() {
        let mut out = String::new();
        Some(7u64).serialize_fields("age", &mut out);
        assert_eq!(out, "age=7\n");
        let mut empty = String::new();
        Option::<u64>::None.serialize_fields("age", &mut empty);
        assert_eq!(empty, "", "None serializes to nothing");

        let map = FieldMap::parse("age=7\nother=1\n");
        assert_eq!(
            Option::<u64>::deserialize_fields("age", &map).unwrap(),
            Some(7)
        );
        assert_eq!(
            Option::<u64>::deserialize_fields("missing", &map).unwrap(),
            None
        );
        // A present key with garbage content is an error, not None.
        let bad = FieldMap::parse("age=seven\n");
        assert!(Option::<u64>::deserialize_fields("age", &bad).is_err());
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(42u64.to_plain(), "42");
        assert_eq!(u64::from_plain("42").unwrap(), 42);
        assert!(bool::from_plain("true").unwrap());
        assert!(u8::from_plain("300").is_err());
    }

    #[test]
    fn field_map_parses_lines() {
        let map = FieldMap::parse("a=1\n\nnested.b=2\n");
        assert_eq!(map.lookup::<u32>("a").unwrap(), 1);
        assert_eq!(map.lookup::<u32>("nested.b").unwrap(), 2);
        assert!(map.lookup::<u32>("missing").is_err());
    }

    #[test]
    fn strings_with_structural_characters_round_trip() {
        for hostile in [
            "a=b",
            "line\nbreak",
            "100%",
            "\r\n=%",
            "",
            " padded ",
            "   ",
            "\ttab\t",
        ] {
            let mut out = String::new();
            hostile.to_string().serialize_fields("field", &mut out);
            let map = FieldMap::parse(&out);
            assert_eq!(
                String::deserialize_fields("field", &map).unwrap(),
                hostile,
                "corrupted by the line format: {hostile:?}"
            );
        }
        let mut out = String::new();
        '='.serialize_fields("c", &mut out);
        let map = FieldMap::parse(&out);
        assert_eq!(char::deserialize_fields("c", &map).unwrap(), '=');
        assert!(String::deserialize_fields("missing", &map).is_err());
        assert!(unescape_text("%ZZ").is_err());
    }
}
