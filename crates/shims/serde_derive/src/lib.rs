//! Derive macros for the offline `serde` shim.
//!
//! Supports non-generic structs with named fields — exactly what the
//! workspace's configuration types need. The generated impls delegate each
//! field to the shim's `Serialize` / `Deserialize` traits under the composed
//! key path `prefix.field`, so nested derived structs round-trip too.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

/// Derives the shim's `serde::Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = StructShape::parse(input);
    let mut body = String::new();
    for field in &parsed.fields {
        writeln!(
            body,
            "::serde::Serialize::serialize_fields(&self.{field}, \
             &::serde::compose_key(key, \"{field}\"), out);"
        )
        .unwrap();
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_fields(&self, key: &str, out: &mut String) {{\n{body}}}\n\
         }}",
        name = parsed.name
    )
    .parse()
    .expect("serialize impl must be valid Rust")
}

/// Derives the shim's `serde::Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = StructShape::parse(input);
    let mut body = String::new();
    for field in &parsed.fields {
        writeln!(
            body,
            "{field}: ::serde::Deserialize::deserialize_fields(\
             &::serde::compose_key(key, \"{field}\"), map)?,"
        )
        .unwrap();
    }
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize_fields(\
                 key: &str, \
                 map: &::serde::FieldMap<'de>,\
             ) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{\n{body}}})\n\
             }}\n\
         }}",
        name = parsed.name
    )
    .parse()
    .expect("deserialize impl must be valid Rust")
}

struct StructShape {
    name: String,
    fields: Vec<String>,
}

impl StructShape {
    fn parse(input: TokenStream) -> Self {
        let mut iter = input.into_iter();
        let mut name = None;
        for token in iter.by_ref() {
            if matches!(&token, TokenTree::Ident(id) if id.to_string() == "struct") {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde shim derive: expected struct name, got {other:?}"),
                }
                break;
            }
        }
        let name = name.expect("serde shim derive: only structs are supported");

        let mut fields = None;
        for token in iter {
            match token {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    panic!("serde shim derive: generic structs are not supported")
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream()));
                    break;
                }
                TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                    panic!("serde shim derive: tuple structs are not supported")
                }
                _ => {}
            }
        }
        StructShape {
            name,
            fields: fields.expect("serde shim derive: unit structs are not supported"),
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes (`#[...]`, including doc comments).
        while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            iter.next();
            iter.next();
        }
        // Skip visibility (`pub`, `pub(crate)` and friends).
        if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            iter.next();
            if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                iter.next();
            }
        }
        match iter.next() {
            Some(TokenTree::Ident(field)) => {
                fields.push(field.to_string());
                // Skip `: Type` up to the next top-level comma. Angle brackets
                // are counted so commas inside generics don't split fields; the
                // `>` of a `->` (fn-pointer return type) closes nothing.
                let mut angle_depth = 0i32;
                let mut joint_minus = false;
                for token in iter.by_ref() {
                    if let TokenTree::Punct(p) = token {
                        let arrow_tail = p.as_char() == '>' && joint_minus;
                        joint_minus =
                            p.as_char() == '-' && p.spacing() == proc_macro::Spacing::Joint;
                        match p.as_char() {
                            '<' => angle_depth += 1,
                            '>' if !arrow_tail => angle_depth -= 1,
                            ',' if angle_depth == 0 => break,
                            _ => {}
                        }
                    } else {
                        joint_minus = false;
                    }
                }
            }
            None => break,
            Some(other) => panic!("serde shim derive: unexpected token {other} in struct body"),
        }
    }
    fields
}
