//! Integration tests of the derive macros against the serde shim: derive onto
//! real structs (including the shapes that stress the field parser) and check
//! that serialized values round-trip.

use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Flat {
    /// Doc comments are attributes the field parser must skip.
    pub count: u64,
    ratio: f64,
    pub(crate) enabled: bool,
    label: String,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Nested {
    name: String,
    inner: Flat,
    tail: u8,
}

/// Serializes as nothing; exists so a field type can mention `fn(u8) -> u8`.
#[derive(Debug, PartialEq)]
struct Tagged<T>(std::marker::PhantomData<T>);

impl<T> Default for Tagged<T> {
    fn default() -> Self {
        Tagged(std::marker::PhantomData)
    }
}

impl<T> Serialize for Tagged<T> {
    fn serialize_fields(&self, _key: &str, _out: &mut String) {}
}

impl<'de, T> Deserialize<'de> for Tagged<T> {
    fn deserialize_fields(_key: &str, _map: &serde::FieldMap<'de>) -> Result<Self, serde::Error> {
        Ok(Tagged(std::marker::PhantomData))
    }
}

/// A field whose type contains a `->` must not desynchronize the parser: the
/// fields after it still have to be seen.
#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct WithFnPointer {
    before: u32,
    callback: Tagged<fn(u8) -> u8>,
    after: u32,
}

#[test]
fn flat_struct_round_trips() {
    let value = Flat {
        count: 42,
        ratio: 0.5,
        enabled: true,
        label: "hello = world\nsecond line".to_string(),
    };
    let text = value.to_plain();
    assert!(text.contains("count=42"), "unexpected format: {text}");
    assert_eq!(Flat::from_plain(&text).unwrap(), value);
}

#[test]
fn nested_struct_round_trips_with_dotted_keys() {
    let value = Nested {
        name: "n".to_string(),
        inner: Flat {
            count: 1,
            ratio: 2.0,
            enabled: false,
            label: String::new(),
        },
        tail: 9,
    };
    let text = value.to_plain();
    assert!(text.contains("inner.count=1"), "unexpected format: {text}");
    assert_eq!(Nested::from_plain(&text).unwrap(), value);
}

#[test]
fn missing_fields_are_reported_by_name() {
    let error = Flat::from_plain("count=1\nratio=0.5\n").unwrap_err();
    assert!(error.to_string().contains("enabled"), "{error}");
}

#[test]
fn fields_after_a_fn_pointer_type_are_not_swallowed() {
    let value = WithFnPointer {
        before: 7,
        callback: Tagged::default(),
        after: 9,
    };
    let text = value.to_plain();
    assert!(text.contains("after=9"), "field lost by the parser: {text}");
    let parsed = WithFnPointer::from_plain(&text).unwrap();
    assert_eq!(parsed.before, 7);
    assert_eq!(parsed.after, 9);
}
