//! Byzantine adversary model: which nodes lie, how, and for how long.
//!
//! A scenario timeline can *convert* a fraction of the alive population into
//! Byzantine nodes for a window of cycles (see `ScenarioEvent::ByzantineConvert`
//! in `bss-core`). The compiled [`AdversaryModel`] lives here, one crate below
//! the protocol stacks, so both the bootstrapping protocol (leaf-set / prefix
//! attacks) and the NEWSCAST sampler (view flooding) can consult the same
//! state: membership of the adversary set, the active window, and the
//! configured behavior.
//!
//! The model is *consulted during the deterministic plan / message-composition
//! step only*: converted nodes substitute the payload of the messages they were
//! going to send anyway, so the parallel cycle engine's execute waves stay free
//! of adversary state and runs remain bit-identical at any thread count.

use crate::network::NodeIndex;
use bss_util::id::NodeId;

/// What a converted (Byzantine) node does with every message it composes while
/// the adversary window is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryBehavior {
    /// Advertise descriptors whose identifiers are forged — they name the
    /// adversary's own address but carry identifiers that no key holder could
    /// have signed. Pollutes leaf sets and prefix tables network-wide with
    /// unroutable entries and starves the overlay of real information.
    ForgeDescriptors,
    /// Spray sybil-stamped copies of the adversary's own address, carrying
    /// identifiers crafted immediately adjacent to one victim's identifier,
    /// directly at that victim: the classic eclipse attack on its leaf set.
    IdSpray {
        /// Dense index of the victim node (must be `< network_size`;
        /// validated, never clamped).
        target: u32,
    },
    /// Flood every gossip partner with sybil-identified copies of the
    /// adversary's own address so it comes to occupy as many NEWSCAST view
    /// slots as possible — driving its in-degree (and the in-degree Gini
    /// coefficient) up until the adversary is a hub of the sampling overlay.
    HubAttack,
}

impl AdversaryBehavior {
    /// Short machine-readable label (used in scenario descriptions and bench
    /// output).
    pub fn label(&self) -> &'static str {
        match self {
            AdversaryBehavior::ForgeDescriptors => "forge",
            AdversaryBehavior::IdSpray { .. } => "id_spray",
            AdversaryBehavior::HubAttack => "hub",
        }
    }

    /// The eclipse victim, when this behavior has one.
    pub fn target(&self) -> Option<NodeIndex> {
        match self {
            AdversaryBehavior::IdSpray { target } => Some(NodeIndex::new(*target)),
            _ => None,
        }
    }
}

/// The compiled adversary state consulted by the protocol stacks.
///
/// Conversion membership is sticky — a converted node stays marked even after
/// the window closes or the node departs (its slot is never reused, so the
/// mark can never alias a fresh honest node) — but behavior is only *active*
/// while the configured window contains the current cycle. Outside the window
/// converted nodes follow the honest protocol, which is exactly what lets a
/// run measure recovery after an attack ends.
#[derive(Debug, Clone)]
pub struct AdversaryModel {
    start: u64,
    end: u64,
    behavior: AdversaryBehavior,
    converted: Vec<bool>,
    count: usize,
}

impl AdversaryModel {
    /// Creates a model with an empty adversary set for the window
    /// `[start, end)`.
    pub fn new(start: u64, end: u64, behavior: AdversaryBehavior) -> Self {
        AdversaryModel {
            start,
            end,
            behavior,
            converted: Vec::new(),
            count: 0,
        }
    }

    /// The configured behavior.
    pub fn behavior(&self) -> AdversaryBehavior {
        self.behavior
    }

    /// The eclipse victim, when the behavior has one.
    pub fn target(&self) -> Option<NodeIndex> {
        self.behavior.target()
    }

    /// First cycle of the attack window.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Marks `node` as converted (idempotent).
    pub fn note_converted(&mut self, node: NodeIndex) {
        let index = node.as_usize();
        if index >= self.converted.len() {
            self.converted.resize(index + 1, false);
        }
        if !self.converted[index] {
            self.converted[index] = true;
            self.count += 1;
        }
    }

    /// Whether `node` has ever been converted.
    pub fn is_adversary(&self, node: NodeIndex) -> bool {
        self.converted
            .get(node.as_usize())
            .copied()
            .unwrap_or(false)
    }

    /// Whether the behavior is active at `cycle` (the window contains it).
    pub fn active(&self, cycle: u64) -> bool {
        self.start <= cycle && cycle < self.end
    }

    /// Whether `node` should act adversarially at `cycle`.
    pub fn acts_at(&self, node: NodeIndex, cycle: u64) -> bool {
        self.count > 0 && self.active(cycle) && self.is_adversary(node)
    }

    /// Number of nodes ever converted.
    pub fn converted_count(&self) -> usize {
        self.count
    }
}

/// Keyed 64-bit stamp over a descriptor's identity binding (identifier ×
/// address), in the style of a truncated HMAC: the deployment equivalent is a
/// signature over the descriptor by the identifier's key holder. Honest
/// descriptors bind the registry identifier of their address; a forged or
/// sybil-stamped descriptor binds some other identifier and therefore cannot
/// produce a stamp matching the authentic one for that address.
pub fn stamp(key: u64, id: NodeId, address: u64) -> u64 {
    // SplitMix64-style finalizer over the keyed concatenation; quality only
    // needs to be good enough that distinct (id, address) bindings never
    // collide in practice.
    let mut x = key
        ^ id.raw().wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ address.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A forged identifier for `ForgeDescriptors` payloads: deterministic in the
/// sender, cycle and sample position (so the plan pass needs no RNG), and
/// essentially never equal to any genuine registry identifier.
pub fn forged_id(key: u64, sender: NodeIndex, cycle: u64, position: usize) -> NodeId {
    NodeId::new(stamp(
        key ^ 0x5bd1_e995_9d1b_873f,
        NodeId::new(cycle.wrapping_mul(0x2545_f491_4f6c_dd1d)),
        (u64::from(sender.raw()) << 32) | position as u64,
    ))
}

/// A sybil identifier for eclipse sprays: the `position`-th closest possible
/// identifier to the victim's, alternating successor / predecessor side so a
/// burst of sprayed descriptors blankets both halves of the victim's leaf set.
pub fn spray_id(victim: NodeId, position: usize) -> NodeId {
    let offset = (position as u64 / 2) + 1;
    if position % 2 == 0 {
        NodeId::new(victim.raw().wrapping_add(offset))
    } else {
        NodeId::new(victim.raw().wrapping_sub(offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_is_sticky_and_idempotent() {
        let mut model = AdversaryModel::new(2, 10, AdversaryBehavior::ForgeDescriptors);
        assert_eq!(model.converted_count(), 0);
        assert!(!model.is_adversary(NodeIndex::new(3)));
        model.note_converted(NodeIndex::new(3));
        model.note_converted(NodeIndex::new(3));
        model.note_converted(NodeIndex::new(7));
        assert_eq!(model.converted_count(), 2);
        assert!(model.is_adversary(NodeIndex::new(3)));
        assert!(model.is_adversary(NodeIndex::new(7)));
        assert!(!model.is_adversary(NodeIndex::new(4)));
        // Membership survives the window closing; activity does not.
        assert!(model.acts_at(NodeIndex::new(3), 2));
        assert!(model.acts_at(NodeIndex::new(3), 9));
        assert!(!model.acts_at(NodeIndex::new(3), 1));
        assert!(!model.acts_at(NodeIndex::new(3), 10));
        assert!(model.is_adversary(NodeIndex::new(3)));
    }

    #[test]
    fn stamp_binds_id_to_address() {
        let key = 0xfeed_beef;
        let id = NodeId::new(0x1234_5678_9abc_def0);
        let authentic = stamp(key, id, 42);
        assert_eq!(stamp(key, id, 42), authentic, "stamp is deterministic");
        assert_ne!(stamp(key, NodeId::new(id.raw() ^ 1), 42), authentic);
        assert_ne!(stamp(key, id, 43), authentic);
        assert_ne!(stamp(key ^ 1, id, 42), authentic);
    }

    #[test]
    fn spray_ids_blanket_both_sides_of_the_victim() {
        let victim = NodeId::new(1000);
        assert_eq!(spray_id(victim, 0), NodeId::new(1001));
        assert_eq!(spray_id(victim, 1), NodeId::new(999));
        assert_eq!(spray_id(victim, 2), NodeId::new(1002));
        assert_eq!(spray_id(victim, 3), NodeId::new(998));
        // Wrap-around is fine: the ring metric handles it.
        assert_eq!(spray_id(NodeId::MAX, 0), NodeId::new(0));
    }

    #[test]
    fn forged_ids_differ_across_senders_cycles_and_positions() {
        let a = forged_id(1, NodeIndex::new(0), 0, 0);
        assert_ne!(a, forged_id(1, NodeIndex::new(1), 0, 0));
        assert_ne!(a, forged_id(1, NodeIndex::new(0), 1, 0));
        assert_ne!(a, forged_id(1, NodeIndex::new(0), 0, 1));
        assert_eq!(a, forged_id(1, NodeIndex::new(0), 0, 0));
    }
}
