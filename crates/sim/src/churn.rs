//! Membership-change scenarios applied at cycle boundaries.
//!
//! The paper's motivation (§1–2) is exactly these "radical" scenarios: massive
//! joins, massive departures, catastrophic failure, merging and splitting of
//! networks, and continuous churn during bootstrap. A [`ChurnModel`] mutates the
//! [`Network`] registry at the start of a cycle and reports which nodes joined and
//! departed so that protocols can initialise or drop per-node state.

use crate::network::{Network, NodeIndex};
use bss_util::rng::SimRng;
use std::fmt::Debug;

/// The membership changes applied at one cycle boundary.
///
/// # Non-aliasing guarantee
///
/// Within one `apply` call, `joined` and `departed` never contain the same
/// [`NodeIndex`]: the registry hands every joiner a **fresh** index
/// ([`Network::add_node`] always appends; dead slots are never reused), so a
/// node killed this cycle cannot come back as this cycle's joiner under the
/// same index. Protocols rely on this when tearing down per-node state for
/// `departed` and initialising it for `joined` — if an index appeared in both
/// lists the teardown/init order would corrupt the state of whichever event
/// was processed second. [`UniformChurn`] asserts the guarantee on every
/// application.
#[derive(Debug, Default, Clone)]
pub struct ChurnEvents {
    /// Nodes that joined (fresh indices, already alive in the registry).
    pub joined: Vec<NodeIndex>,
    /// Nodes that departed (already marked dead in the registry).
    pub departed: Vec<NodeIndex>,
    /// Alive nodes ordered to re-initialise their protocol state from the
    /// seed set (the [`ReBootstrap`] recovery event). Membership is untouched:
    /// the registry entry, identifier and liveness of these nodes do not
    /// change — only their per-node protocol state is rebuilt.
    pub rebootstrapped: Vec<NodeIndex>,
    /// Alive nodes converted into Byzantine adversaries (the
    /// [`ByzantineConversion`] event). Membership is untouched — the nodes
    /// stay alive with their registry identifiers — but the protocol stacks
    /// mark them in their [`AdversaryModel`](crate::adversary::AdversaryModel)
    /// so subsequent messages they compose are adversarial.
    pub converted: Vec<NodeIndex>,
}

impl ChurnEvents {
    /// No membership change.
    pub fn none() -> Self {
        ChurnEvents::default()
    }

    /// Whether anything changed.
    pub fn is_empty(&self) -> bool {
        self.joined.is_empty()
            && self.departed.is_empty()
            && self.rebootstrapped.is_empty()
            && self.converted.is_empty()
    }
}

/// A membership-change policy invoked once per cycle, before any node executes.
pub trait ChurnModel: Debug + Send {
    /// Applies this cycle's membership changes to `network`.
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents;
}

/// The default: a static membership.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoChurn;

impl ChurnModel for NoChurn {
    fn apply(&mut self, _cycle: u64, _network: &mut Network, _rng: &mut SimRng) -> ChurnEvents {
        ChurnEvents::none()
    }
}

/// Continuous replacement churn: every cycle a fixed fraction of the alive nodes
/// departs and the same number of fresh nodes joins, keeping the network size
/// constant. This matches the churn the paper alludes to in §5 ("The protocol is
/// not sensitive to churn either").
#[derive(Debug, Clone)]
pub struct UniformChurn {
    replacement_fraction: f64,
}

impl UniformChurn {
    /// Creates a model replacing `replacement_fraction` of the alive nodes per
    /// cycle (clamped to `[0, 1]`).
    pub fn new(replacement_fraction: f64) -> Self {
        UniformChurn {
            replacement_fraction: replacement_fraction.clamp(0.0, 1.0),
        }
    }

    /// The per-cycle replacement fraction.
    pub fn replacement_fraction(&self) -> f64 {
        self.replacement_fraction
    }
}

impl ChurnModel for UniformChurn {
    fn apply(&mut self, _cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        let alive: Vec<NodeIndex> = network.alive_indices().collect();
        let victims = ((alive.len() as f64) * self.replacement_fraction).round() as usize;
        if victims == 0 {
            return ChurnEvents::none();
        }
        // Victims are sampled from the pre-join alive set, so the registry
        // length before the joins is the watermark below which every victim
        // index lies.
        let watermark = network.len();
        let departed = rng.sample(&alive, victims);
        for &node in &departed {
            network.kill(node);
        }
        let joined: Vec<NodeIndex> = (0..victims).map(|_| network.add_random_node(rng)).collect();
        // Pin the ChurnEvents non-aliasing guarantee: the registry never
        // reuses slots, so every joiner's index is fresh — it cannot collide
        // with a victim sampled from the pre-join population. If Network ever
        // started recycling dead slots, this would fail loudly instead of
        // silently corrupting protocol per-node state teardown/init.
        assert!(
            joined.iter().all(|j| j.as_usize() >= watermark),
            "churn joiner reused a pre-existing node slot"
        );
        ChurnEvents {
            joined,
            departed,
            rebootstrapped: Vec::new(),
            converted: Vec::new(),
        }
    }
}

/// A one-shot catastrophic failure: at a given cycle a fraction of the alive nodes
/// dies simultaneously. The paper's sampling layer is designed to survive failures
/// of up to 70 % of the nodes (§3); this model lets the bootstrap experiments use
/// the same scenario.
#[derive(Debug, Clone)]
pub struct CatastrophicFailure {
    at_cycle: u64,
    fraction: f64,
    fired: bool,
}

impl CatastrophicFailure {
    /// Creates a failure of `fraction` of the alive nodes at cycle `at_cycle`.
    pub fn new(at_cycle: u64, fraction: f64) -> Self {
        CatastrophicFailure {
            at_cycle,
            fraction: fraction.clamp(0.0, 1.0),
            fired: false,
        }
    }

    /// Whether the failure has already been applied.
    pub fn has_fired(&self) -> bool {
        self.fired
    }
}

impl ChurnModel for CatastrophicFailure {
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        if self.fired || cycle != self.at_cycle {
            return ChurnEvents::none();
        }
        self.fired = true;
        let alive: Vec<NodeIndex> = network.alive_indices().collect();
        let victims = ((alive.len() as f64) * self.fraction).round() as usize;
        let departed = rng.sample(&alive, victims);
        for &node in &departed {
            network.kill(node);
        }
        ChurnEvents {
            joined: Vec::new(),
            departed,
            rebootstrapped: Vec::new(),
            converted: Vec::new(),
        }
    }
}

/// A one-shot massive join: at a given cycle a batch of fresh nodes joins
/// simultaneously (the "flash crowd" / resource-pool-merge scenario of §1).
#[derive(Debug, Clone)]
pub struct MassiveJoin {
    at_cycle: u64,
    count: usize,
    fired: bool,
}

impl MassiveJoin {
    /// Creates a join of `count` new nodes at cycle `at_cycle`.
    pub fn new(at_cycle: u64, count: usize) -> Self {
        MassiveJoin {
            at_cycle,
            count,
            fired: false,
        }
    }
}

impl ChurnModel for MassiveJoin {
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        if self.fired || cycle != self.at_cycle {
            return ChurnEvents::none();
        }
        self.fired = true;
        let joined = (0..self.count)
            .map(|_| network.add_random_node(rng))
            .collect();
        ChurnEvents {
            joined,
            departed: Vec::new(),
            rebootstrapped: Vec::new(),
            converted: Vec::new(),
        }
    }
}

/// A one-shot recovery order: at a given cycle a fraction of the alive nodes
/// re-initialises its protocol state from the peer sampling service, exactly
/// as at start-up (§4's start condition re-applied to survivors). This is the
/// scenario-level counterpart of a catastrophic failure — after a large
/// fraction of the network dies, the survivors' tables are full of stale
/// descriptors, and re-bootstrapping from the (self-healing) sampling layer is
/// how the paper's architecture recovers (§1–2's repeated-bootstrap premise).
///
/// Membership is untouched: no node joins or departs; the affected nodes are
/// reported in [`ChurnEvents::rebootstrapped`].
#[derive(Debug, Clone)]
pub struct ReBootstrap {
    at_cycle: u64,
    fraction: f64,
    fired: bool,
}

impl ReBootstrap {
    /// Creates an order for `fraction` of the alive nodes (clamped to
    /// `[0, 1]`; 1.0 re-bootstraps every survivor) at cycle `at_cycle`.
    pub fn new(at_cycle: u64, fraction: f64) -> Self {
        ReBootstrap {
            at_cycle,
            fraction: fraction.clamp(0.0, 1.0),
            fired: false,
        }
    }

    /// Whether the order has already been applied.
    pub fn has_fired(&self) -> bool {
        self.fired
    }
}

impl ChurnModel for ReBootstrap {
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        if self.fired || cycle != self.at_cycle {
            return ChurnEvents::none();
        }
        self.fired = true;
        let alive: Vec<NodeIndex> = network.alive_indices().collect();
        let count = ((alive.len() as f64) * self.fraction).round() as usize;
        let rebootstrapped = if count >= alive.len() {
            alive // everyone: no sampling draw needed, keep the RNG stream lean
        } else {
            rng.sample(&alive, count)
        };
        ChurnEvents {
            joined: Vec::new(),
            departed: Vec::new(),
            rebootstrapped,
            converted: Vec::new(),
        }
    }
}

/// A one-shot Byzantine conversion: at a given cycle a fraction of the alive
/// nodes turns adversarial. Membership is untouched — converted nodes stay
/// alive under their registry identifiers (an insider attack, not churn) —
/// they are reported in [`ChurnEvents::converted`] so the protocol stacks can
/// mark them in their [`AdversaryModel`](crate::adversary::AdversaryModel).
/// What the converted nodes *do*, and for how long, is the model's business;
/// this event only selects the membership of the adversary set, once, with a
/// single RNG sample (an all-out conversion draws none, like [`ReBootstrap`]).
#[derive(Debug, Clone)]
pub struct ByzantineConversion {
    at_cycle: u64,
    fraction: f64,
    fired: bool,
}

impl ByzantineConversion {
    /// Creates a conversion of `fraction` of the alive nodes (clamped to
    /// `[0, 1]`) at cycle `at_cycle`.
    pub fn new(at_cycle: u64, fraction: f64) -> Self {
        ByzantineConversion {
            at_cycle,
            fraction: fraction.clamp(0.0, 1.0),
            fired: false,
        }
    }

    /// Whether the conversion has already been applied.
    pub fn has_fired(&self) -> bool {
        self.fired
    }
}

impl ChurnModel for ByzantineConversion {
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        if self.fired || cycle != self.at_cycle {
            return ChurnEvents::none();
        }
        self.fired = true;
        let alive: Vec<NodeIndex> = network.alive_indices().collect();
        let count = ((alive.len() as f64) * self.fraction).round() as usize;
        let converted = if count >= alive.len() {
            alive // everyone: no sampling draw needed, keep the RNG stream lean
        } else {
            rng.sample(&alive, count)
        };
        ChurnEvents {
            joined: Vec::new(),
            departed: Vec::new(),
            rebootstrapped: Vec::new(),
            converted,
        }
    }
}

/// Restricts another churn model to a `[start, end)` window of cycles: inside
/// the window every `apply` call is delegated verbatim (consuming exactly the
/// RNG the inner model would consume on its own), outside it nothing happens
/// and no randomness is drawn. This is the runtime form of a scenario churn
/// burst; a whole-run window is byte-identical to the bare inner model.
#[derive(Debug, Clone)]
pub struct WindowedChurn<M> {
    start: u64,
    end: u64,
    inner: M,
}

impl<M: ChurnModel> WindowedChurn<M> {
    /// Wraps `inner`, activating it for cycles in `[start, end)`.
    pub fn new(start: u64, end: u64, inner: M) -> Self {
        WindowedChurn { start, end, inner }
    }

    /// The window as a `[start, end)` pair.
    pub fn window(&self) -> (u64, u64) {
        (self.start, self.end)
    }
}

impl<M: ChurnModel> ChurnModel for WindowedChurn<M> {
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        if cycle >= self.start && cycle < self.end {
            self.inner.apply(cycle, network, rng)
        } else {
            ChurnEvents::none()
        }
    }
}

/// Composes several churn models; each is applied in order every cycle.
///
/// The aggregated [`ChurnEvents`] uphold the non-aliasing guarantee across the
/// whole composition: when a later model kills a node that an earlier model
/// joined *within the same cycle*, that node is reported in **neither** list —
/// from the protocol's perspective it never existed (its registry slot stays
/// dead, it is simply never initialised). Without this reconciliation the
/// engine would tear the node down before initialising it, leaving protocol
/// state behind for a dead node.
#[derive(Debug, Default)]
pub struct CompositeChurn {
    models: Vec<Box<dyn ChurnModel>>,
}

impl CompositeChurn {
    /// Creates an empty composite (equivalent to [`NoChurn`]).
    pub fn new() -> Self {
        CompositeChurn { models: Vec::new() }
    }

    /// Adds a model to the composition (builder style).
    #[must_use]
    pub fn with(mut self, model: Box<dyn ChurnModel>) -> Self {
        self.models.push(model);
        self
    }

    /// Number of composed models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the composite is empty.
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }
}

impl ChurnModel for CompositeChurn {
    fn apply(&mut self, cycle: u64, network: &mut Network, rng: &mut SimRng) -> ChurnEvents {
        // Every joiner of this composite application gets a fresh slot at or
        // above the current registry length, so the watermark cleanly
        // separates pre-existing nodes from intra-cycle joiners.
        let watermark = network.len();
        let mut events = ChurnEvents::none();
        for model in &mut self.models {
            let mut e = model.apply(cycle, network, rng);
            // A departure at or above the watermark is an intra-cycle joiner
            // killed by a later model: report it in neither list.
            e.departed.retain(|node| node.as_usize() < watermark);
            events.joined.append(&mut e.joined);
            events.departed.append(&mut e.departed);
            events.rebootstrapped.append(&mut e.rebootstrapped);
            events.converted.append(&mut e.converted);
        }
        events.joined.retain(|&node| network.is_alive(node));
        // A re-bootstrap order for a node a later model killed this same cycle
        // is void (there is no state left to rebuild), and one for a node that
        // joined this cycle is redundant (a joiner initialises fresh anyway).
        events
            .rebootstrapped
            .retain(|&node| network.is_alive(node) && node.as_usize() < watermark);
        // Same reconciliation for conversions: a node a later model killed this
        // cycle is gone (converting a corpse would double-count it in attack
        // metrics), and a same-cycle joiner cannot have been selected by the
        // conversion's pre-join alive sample — drop both defensively so the
        // converted list always names pre-existing survivors. Two conversions
        // firing the same cycle can sample overlapping nodes; converting twice
        // is converting once, so duplicates collapse (sorted order — the
        // consumers' per-node hooks are order-insensitive).
        events
            .converted
            .retain(|&node| network.is_alive(node) && node.as_usize() < watermark);
        events.converted.sort_unstable();
        events.converted.dedup();
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(size: usize, seed: u64) -> (Network, SimRng) {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        (network, rng)
    }

    #[test]
    fn no_churn_changes_nothing() {
        let (mut net, mut rng) = network(10, 1);
        let events = NoChurn.apply(0, &mut net, &mut rng);
        assert!(events.is_empty());
        assert_eq!(net.alive_count(), 10);
    }

    #[test]
    fn uniform_churn_keeps_size_constant() {
        let (mut net, mut rng) = network(100, 2);
        let mut churn = UniformChurn::new(0.05);
        assert_eq!(churn.replacement_fraction(), 0.05);
        for cycle in 0..10 {
            let events = churn.apply(cycle, &mut net, &mut rng);
            assert_eq!(events.joined.len(), 5);
            assert_eq!(events.departed.len(), 5);
            assert_eq!(net.alive_count(), 100);
        }
        // Registry grows because departed nodes keep their entries.
        assert_eq!(net.len(), 150);
    }

    #[test]
    fn churn_events_never_alias_joiners_with_victims() {
        // Regression for the slot-reuse hazard: if the registry recycled dead
        // indices, a node could be reported both departed and joined within
        // one cycle and protocols would tear down freshly initialised state.
        // Drive heavy replacement churn long enough that thousands of dead
        // slots exist, and check the guarantee cycle by cycle.
        let (mut net, mut rng) = network(200, 7);
        let mut churn = UniformChurn::new(0.25);
        for cycle in 0..50 {
            let before_len = net.len();
            let events = churn.apply(cycle, &mut net, &mut rng);
            let departed: std::collections::HashSet<NodeIndex> =
                events.departed.iter().copied().collect();
            for &joiner in &events.joined {
                assert!(
                    !departed.contains(&joiner),
                    "cycle {cycle}: {joiner} reported as both departed and joined"
                );
                assert!(
                    joiner.as_usize() >= before_len,
                    "cycle {cycle}: joiner {joiner} did not get a fresh slot"
                );
                assert!(net.is_alive(joiner));
            }
            for &victim in &events.departed {
                assert!(!net.is_alive(victim));
            }
        }
        assert_eq!(net.alive_count(), 200);
        assert_eq!(net.len(), 200 + 50 * 50, "every joiner appended a slot");
    }

    #[test]
    fn uniform_churn_with_zero_fraction_is_noop() {
        let (mut net, mut rng) = network(50, 3);
        let mut churn = UniformChurn::new(0.0);
        assert!(churn.apply(0, &mut net, &mut rng).is_empty());
        // Tiny fraction rounding to zero nodes is also a no-op.
        let mut tiny = UniformChurn::new(0.001);
        assert!(tiny.apply(0, &mut net, &mut rng).is_empty());
    }

    #[test]
    fn catastrophic_failure_fires_exactly_once() {
        let (mut net, mut rng) = network(200, 4);
        let mut failure = CatastrophicFailure::new(3, 0.7);
        assert!(!failure.has_fired());
        for cycle in 0..3 {
            assert!(failure.apply(cycle, &mut net, &mut rng).is_empty());
        }
        let events = failure.apply(3, &mut net, &mut rng);
        assert!(failure.has_fired());
        assert_eq!(events.departed.len(), 140);
        assert_eq!(net.alive_count(), 60);
        // A repeat of the same cycle number does not fire again.
        assert!(failure.apply(3, &mut net, &mut rng).is_empty());
        assert!(failure.apply(4, &mut net, &mut rng).is_empty());
    }

    #[test]
    fn massive_join_adds_requested_nodes_once() {
        let (mut net, mut rng) = network(10, 5);
        let mut join = MassiveJoin::new(1, 90);
        assert!(join.apply(0, &mut net, &mut rng).is_empty());
        let events = join.apply(1, &mut net, &mut rng);
        assert_eq!(events.joined.len(), 90);
        assert_eq!(net.alive_count(), 100);
        assert!(join.apply(1, &mut net, &mut rng).is_empty());
        for &node in &events.joined {
            assert!(net.is_alive(node));
        }
    }

    #[test]
    fn rebootstrap_fires_once_and_touches_no_membership() {
        let (mut net, mut rng) = network(100, 11);
        let mut order = ReBootstrap::new(4, 0.5);
        assert!(!order.has_fired());
        for cycle in 0..4 {
            assert!(order.apply(cycle, &mut net, &mut rng).is_empty());
        }
        let events = order.apply(4, &mut net, &mut rng);
        assert!(order.has_fired());
        assert_eq!(events.rebootstrapped.len(), 50);
        assert!(events.joined.is_empty() && events.departed.is_empty());
        assert_eq!(net.alive_count(), 100, "membership is untouched");
        for &node in &events.rebootstrapped {
            assert!(net.is_alive(node));
        }
        assert!(order.apply(4, &mut net, &mut rng).is_empty());
        assert!(order.apply(5, &mut net, &mut rng).is_empty());

        // Fraction 1.0 selects every survivor, in index order, drawing no RNG.
        let (mut net, mut rng) = network(10, 12);
        net.kill(NodeIndex::new(3));
        let fingerprint = rng.clone();
        let all = ReBootstrap::new(0, 1.0).apply(0, &mut net, &mut rng);
        assert_eq!(rng, fingerprint, "full re-bootstrap draws no randomness");
        assert_eq!(all.rebootstrapped.len(), 9);
        assert!(!all.rebootstrapped.contains(&NodeIndex::new(3)));
    }

    #[test]
    fn composite_voids_rebootstrap_orders_for_same_cycle_victims_and_joiners() {
        // ReBootstrap(all) runs first, then a failure kills half, then a join
        // adds fresh nodes. Reported re-bootstrap orders must cover exactly
        // the pre-existing survivors: orders for same-cycle victims are void,
        // and same-cycle joiners initialise fresh anyway.
        let (mut net, mut rng) = network(20, 13);
        let mut composite = CompositeChurn::new()
            .with(Box::new(ReBootstrap::new(0, 1.0)))
            .with(Box::new(CatastrophicFailure::new(0, 0.5)))
            .with(Box::new(MassiveJoin::new(0, 7)));
        let events = composite.apply(0, &mut net, &mut rng);
        assert_eq!(events.departed.len(), 10);
        assert_eq!(events.joined.len(), 7);
        assert_eq!(events.rebootstrapped.len(), 10, "the surviving originals");
        for &node in &events.rebootstrapped {
            assert!(net.is_alive(node));
            assert!(node.as_usize() < 20, "orders never cover fresh joiners");
            assert!(!events.departed.contains(&node));
        }
    }

    #[test]
    fn byzantine_conversion_fires_once_and_touches_no_membership() {
        let (mut net, mut rng) = network(100, 17);
        let mut conversion = ByzantineConversion::new(3, 0.2);
        assert!(!conversion.has_fired());
        for cycle in 0..3 {
            assert!(conversion.apply(cycle, &mut net, &mut rng).is_empty());
        }
        let events = conversion.apply(3, &mut net, &mut rng);
        assert!(conversion.has_fired());
        assert_eq!(events.converted.len(), 20);
        assert!(events.joined.is_empty() && events.departed.is_empty());
        assert!(events.rebootstrapped.is_empty());
        assert_eq!(net.alive_count(), 100, "membership is untouched");
        for &node in &events.converted {
            assert!(net.is_alive(node));
        }
        assert!(conversion.apply(3, &mut net, &mut rng).is_empty());
        assert!(conversion.apply(4, &mut net, &mut rng).is_empty());

        // Fraction 1.0 converts every survivor, in index order, drawing no RNG.
        let (mut net, mut rng) = network(10, 18);
        net.kill(NodeIndex::new(2));
        let fingerprint = rng.clone();
        let all = ByzantineConversion::new(0, 1.0).apply(0, &mut net, &mut rng);
        assert_eq!(rng, fingerprint, "full conversion draws no randomness");
        assert_eq!(all.converted.len(), 9);
        assert!(!all.converted.contains(&NodeIndex::new(2)));
    }

    #[test]
    fn composite_voids_conversions_for_same_cycle_victims_and_joiners() {
        // Convert everyone, then kill half, then add joiners: the reported
        // conversions must cover exactly the pre-existing survivors — never a
        // same-cycle corpse, never a fresh joiner.
        let (mut net, mut rng) = network(20, 19);
        let mut composite = CompositeChurn::new()
            .with(Box::new(ByzantineConversion::new(0, 1.0)))
            .with(Box::new(CatastrophicFailure::new(0, 0.5)))
            .with(Box::new(MassiveJoin::new(0, 7)));
        let events = composite.apply(0, &mut net, &mut rng);
        assert_eq!(events.departed.len(), 10);
        assert_eq!(events.joined.len(), 7);
        assert_eq!(events.converted.len(), 10, "the surviving originals");
        for &node in &events.converted {
            assert!(net.is_alive(node));
            assert!(node.as_usize() < 20, "conversions never cover joiners");
            assert!(!events.departed.contains(&node));
        }
    }

    #[test]
    fn windowed_churn_only_fires_inside_its_window() {
        let (mut net, mut rng) = network(100, 8);
        let mut churn = WindowedChurn::new(2, 4, UniformChurn::new(0.1));
        assert_eq!(churn.window(), (2, 4));
        for cycle in [0u64, 1] {
            let fingerprint = rng.clone();
            assert!(churn.apply(cycle, &mut net, &mut rng).is_empty());
            assert_eq!(rng, fingerprint, "inactive window must not draw RNG");
        }
        assert_eq!(churn.apply(2, &mut net, &mut rng).joined.len(), 10);
        assert_eq!(churn.apply(3, &mut net, &mut rng).joined.len(), 10);
        assert!(
            churn.apply(4, &mut net, &mut rng).is_empty(),
            "end exclusive"
        );
        assert_eq!(net.alive_count(), 100);
    }

    #[test]
    fn whole_run_window_matches_the_bare_model() {
        // The scenario compatibility path relies on WindowedChurn(0, MAX)
        // replaying UniformChurn exactly, cycle by cycle.
        let (mut net_a, mut rng_a) = network(60, 9);
        let (mut net_b, mut rng_b) = network(60, 9);
        let mut bare = UniformChurn::new(0.05);
        let mut windowed = WindowedChurn::new(0, u64::MAX, UniformChurn::new(0.05));
        for cycle in 0..10 {
            let a = bare.apply(cycle, &mut net_a, &mut rng_a);
            let b = windowed.apply(cycle, &mut net_b, &mut rng_b);
            assert_eq!(a.joined, b.joined);
            assert_eq!(a.departed, b.departed);
        }
        assert_eq!(rng_a, rng_b);
    }

    #[test]
    fn composite_applies_all_models() {
        let (mut net, mut rng) = network(20, 6);
        let mut composite = CompositeChurn::new()
            .with(Box::new(MassiveJoin::new(0, 5)))
            .with(Box::new(CatastrophicFailure::new(0, 0.5)));
        assert_eq!(composite.len(), 2);
        assert!(!composite.is_empty());
        let events = composite.apply(0, &mut net, &mut rng);
        // The failure fires after the join added nodes: half of 25 = 12 or 13
        // victims. Victims that were this same cycle's joiners are reported in
        // neither list (they never existed from the protocol's perspective),
        // so the reported lists cover exactly the surviving joiners and the
        // pre-existing victims.
        let victims = 25 - net.alive_count();
        assert!(
            victims == 12 || victims == 13,
            "unexpected kill count {victims}"
        );
        let killed_joiners = victims - events.departed.len();
        assert_eq!(events.joined.len(), 5 - killed_joiners);
        for &joiner in &events.joined {
            assert!(net.is_alive(joiner));
        }
        for &victim in &events.departed {
            assert!(!net.is_alive(victim));
            assert!(victim.as_usize() < 20, "reported victims pre-existed");
        }

        let empty = CompositeChurn::new();
        assert!(empty.is_empty());
    }
}
