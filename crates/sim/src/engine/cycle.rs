//! The cycle-driven simulation engine.
//!
//! This is the execution model under which all of the paper's results were
//! produced (PeerSim's cycle-driven mode). Time advances in discrete cycles; in
//! every cycle each alive node executes its protocol step exactly once, and the
//! per-cycle execution order is re-randomised, which models the nodes' random start
//! phases within the interval Δ (§5: "We start the bootstrapping protocol at each
//! node at a different random time within an interval of length Δ").

use crate::churn::{ChurnEvents, ChurnModel, NoChurn};
use crate::network::{Network, NodeIndex};
use crate::pool::WorkerPool;
use crate::transport::{ReliableTransport, Transport};
use bss_util::rng::SimRng;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// Mutable state shared by the engine and the protocol during a run: the node
/// registry, the random number generator and the transport.
#[derive(Debug)]
pub struct EngineContext {
    /// The global node registry.
    pub network: Network,
    /// The deterministic random number generator driving every stochastic choice.
    pub rng: SimRng,
    /// The message delivery policy.
    pub transport: Box<dyn Transport>,
}

impl EngineContext {
    /// Creates a context with a [`ReliableTransport`].
    pub fn new(network: Network, rng: SimRng) -> Self {
        EngineContext {
            network,
            rng,
            transport: Box::new(ReliableTransport::new()),
        }
    }

    /// Asks the transport whether a message from `from` to `to` is delivered.
    pub fn deliver(&mut self, from: NodeIndex, to: NodeIndex) -> bool {
        self.transport.should_deliver(from, to, &mut self.rng)
    }
}

/// A protocol that can be driven by the [`CycleEngine`].
///
/// Only [`execute_node`](CycleProtocol::execute_node) is mandatory; the remaining
/// hooks have empty default implementations.
pub trait CycleProtocol {
    /// Called once at the start of every cycle, before any node executes.
    fn begin_cycle(&mut self, _cycle: u64, _ctx: &mut EngineContext) {}

    /// Called once per alive node per cycle, in a random order.
    fn execute_node(&mut self, node: NodeIndex, cycle: u64, ctx: &mut EngineContext);

    /// Called once at the end of every cycle, after all nodes executed.
    fn end_cycle(&mut self, _cycle: u64, _ctx: &mut EngineContext) {}

    /// Called when churn adds a node to the network.
    fn node_joined(&mut self, _node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {}

    /// Called when churn removes a node from the network.
    fn node_departed(&mut self, _node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {}

    /// Called when a scenario orders an alive node to re-initialise its
    /// protocol state from the seed set (the `ReBootstrap` recovery event).
    /// Membership is unchanged; the default does nothing.
    fn node_rebootstrapped(&mut self, _node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {}

    /// Called when a scenario converts an alive node into a Byzantine
    /// adversary (the `ByzantineConvert` event). Membership is unchanged;
    /// protocols that model adversaries mark the node in their
    /// [`AdversaryModel`](crate::adversary::AdversaryModel). The default does
    /// nothing (honest protocols simply ignore conversions).
    fn node_converted(&mut self, _node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {}
}

/// What [`ParallelCycleProtocol::plan_node`] decided for one node.
#[derive(Debug)]
pub enum NodePlan<P> {
    /// Nothing to execute for this node this cycle (all effects, if any,
    /// already happened during planning).
    Idle,
    /// Deferred work. `peer` names the *other* node whose state the work will
    /// read or write, if any; the planned node itself is always involved.
    Work {
        /// The second node touched by the work (`None` when the work only
        /// involves the planned node's own state).
        peer: Option<NodeIndex>,
        /// The protocol-defined description of the deferred work.
        plan: P,
    },
}

/// One entry of a wave handed to [`ParallelCycleProtocol::execute_wave`], in
/// planning order.
#[derive(Debug)]
pub struct PlannedWork<P> {
    /// The node the plan was made for.
    pub node: NodeIndex,
    /// The protocol-defined description of the deferred work.
    pub plan: P,
    /// `false`: this item's node set is disjoint from every other
    /// non-deferred item in the wave — it may execute concurrently with them.
    /// `true`: it conflicts with an earlier item and must execute after all
    /// non-deferred items, in list order relative to other deferred items.
    pub deferred: bool,
}

/// A [`CycleProtocol`] whose per-node work can be split into a sequential
/// *planning* phase and a parallelisable *execution* phase.
///
/// The contract that makes [`CycleEngine::run_parallel_with_observer`]
/// bit-for-bit equivalent to the sequential engine at any thread count:
///
/// * [`plan_node`](ParallelCycleProtocol::plan_node) performs **all** RNG
///   draws and all reads of mutable cross-node state that the sequential
///   `execute_node` would perform before its heavy computation, in the same
///   order. The engine calls it sequentially, in the cycle's shuffled order.
/// * The deferred work described by the returned plan reads and writes only
///   the state of the planned node and of the reported `peer`, and consumes
///   no RNG.
/// * [`execute_wave`](ParallelCycleProtocol::execute_wave) runs the wave's
///   work — concurrently for non-deferred items — and returns one outcome per
///   item in list order.
/// * [`commit_outcome`](ParallelCycleProtocol::commit_outcome) applies an
///   outcome's order-sensitive side effects (global counters, dirty lists);
///   the engine replays outcomes strictly in planning order.
pub trait ParallelCycleProtocol: CycleProtocol {
    /// The deferred-work description produced by planning one node.
    type Plan: Send;
    /// The result of executing one plan, fed back to
    /// [`commit_outcome`](ParallelCycleProtocol::commit_outcome).
    type Outcome: Send;

    /// Plans one node's cycle action, consuming the RNG stream exactly as the
    /// sequential `execute_node` would.
    fn plan_node(
        &mut self,
        node: NodeIndex,
        cycle: u64,
        ctx: &mut EngineContext,
    ) -> NodePlan<Self::Plan>;

    /// Executes a wave of plans, appending one outcome per item (in item
    /// order) to `outcomes`. Non-deferred items touch pairwise-disjoint node
    /// sets and may run on the persistent worker `pool`; deferred items run
    /// after all non-deferred ones, in order.
    fn execute_wave(
        &mut self,
        wave: &mut Vec<PlannedWork<Self::Plan>>,
        pool: &mut WorkerPool,
        outcomes: &mut Vec<Self::Outcome>,
    );

    /// Applies one outcome's side effects. Called in planning order.
    fn commit_outcome(&mut self, outcome: Self::Outcome, ctx: &mut EngineContext);
}

/// Accumulated wall time per engine phase, enabled with
/// [`CycleEngine::enable_profiling`] and read back with
/// [`CycleEngine::phase_profile`].
///
/// The four phases partition a cycle: `plan` covers the sequential scan
/// (churn, begin/end hooks, RNG draws and wave scheduling), `execute` the
/// deferred per-node computation (the part the worker pool parallelises),
/// `commit` the in-order outcome replay, and `measure` the observer callback
/// (convergence oracles, metric emission). On the sequential engine the whole
/// per-node step lands in `execute`, scheduling overhead in `plan`, and
/// `commit` stays empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Sequential planning: churn, cycle hooks, RNG and wave scheduling.
    pub plan: Duration,
    /// Deferred per-node computation (parallelised across the worker pool).
    pub execute: Duration,
    /// In-planning-order outcome replay.
    pub commit: Duration,
    /// Observer callbacks (oracle measurement, metric emission).
    pub measure: Duration,
    /// Number of cycles the durations above accumulate over.
    pub cycles: u64,
}

impl PhaseProfile {
    /// Total profiled wall time across all four phases.
    pub fn total(&self) -> Duration {
        self.plan + self.execute + self.commit + self.measure
    }
}

/// The cycle-driven engine.
///
/// # Example
///
/// ```rust
/// use bss_sim::engine::cycle::{CycleEngine, CycleProtocol, EngineContext};
/// use bss_sim::network::{Network, NodeIndex};
/// use bss_util::rng::SimRng;
/// use std::ops::ControlFlow;
///
/// struct Nothing;
/// impl CycleProtocol for Nothing {
///     fn execute_node(&mut self, _n: NodeIndex, _c: u64, _ctx: &mut EngineContext) {}
/// }
///
/// let mut rng = SimRng::seed_from(0);
/// let network = Network::with_random_ids(8, &mut rng);
/// let mut engine = CycleEngine::new(network, rng);
/// let mut protocol = Nothing;
/// // Stop early from the observer after three cycles.
/// let completed = engine.run_with_observer(&mut protocol, 100, |_p, _ctx, cycle| {
///     if cycle >= 2 { ControlFlow::Break(()) } else { ControlFlow::Continue(()) }
/// });
/// assert_eq!(completed, 3);
/// ```
#[derive(Debug)]
pub struct CycleEngine {
    context: EngineContext,
    churn: Box<dyn ChurnModel>,
    current_cycle: u64,
    /// Reusable per-cycle execution-order buffer; avoids one O(n) allocation
    /// per cycle on the hot path.
    order_scratch: Vec<NodeIndex>,
    /// Persistent worker pool for the parallel engine; created lazily on the
    /// first parallel run and reused (workers stay alive) across runs.
    pool: Option<WorkerPool>,
    /// Per-phase wall-time accumulator; `None` until profiling is enabled.
    profiler: Option<PhaseProfile>,
}

impl CycleEngine {
    /// Creates an engine over `network` with a reliable transport and no churn.
    pub fn new(network: Network, rng: SimRng) -> Self {
        CycleEngine {
            context: EngineContext::new(network, rng),
            churn: Box::new(NoChurn),
            current_cycle: 0,
            order_scratch: Vec::new(),
            pool: None,
            profiler: None,
        }
    }

    /// Starts accumulating per-phase wall time into a [`PhaseProfile`]
    /// readable via [`CycleEngine::phase_profile`]. Idempotent: calling it
    /// again keeps the accumulated numbers.
    pub fn enable_profiling(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(PhaseProfile::default());
        }
    }

    /// The per-phase profile accumulated so far, if profiling is enabled.
    pub fn phase_profile(&self) -> Option<&PhaseProfile> {
        self.profiler.as_ref()
    }

    /// Replaces the transport (builder style).
    #[must_use]
    pub fn with_transport(mut self, transport: Box<dyn Transport>) -> Self {
        self.context.transport = transport;
        self
    }

    /// Replaces the churn model (builder style).
    #[must_use]
    pub fn with_churn(mut self, churn: Box<dyn ChurnModel>) -> Self {
        self.churn = churn;
        self
    }

    /// Shared access to the engine context (network, RNG, transport).
    pub fn context(&self) -> &EngineContext {
        &self.context
    }

    /// Exclusive access to the engine context.
    pub fn context_mut(&mut self) -> &mut EngineContext {
        &mut self.context
    }

    /// The index of the next cycle to execute (equivalently, the number of cycles
    /// executed so far).
    pub fn current_cycle(&self) -> u64 {
        self.current_cycle
    }

    /// Runs `protocol` for exactly `cycles` cycles. Returns the number of cycles
    /// executed (always `cycles`).
    pub fn run<P: CycleProtocol>(&mut self, protocol: &mut P, cycles: u64) -> u64 {
        self.run_with_observer(protocol, cycles, |_, _, _| ControlFlow::Continue(()))
    }

    /// Runs `protocol` for at most `max_cycles` cycles, invoking `observer` after
    /// every cycle. The observer can stop the run early by returning
    /// [`ControlFlow::Break`]. Returns the number of cycles executed.
    pub fn run_with_observer<P, F>(
        &mut self,
        protocol: &mut P,
        max_cycles: u64,
        mut observer: F,
    ) -> u64
    where
        P: CycleProtocol,
        F: FnMut(&mut P, &mut EngineContext, u64) -> ControlFlow<()>,
    {
        let mut executed = 0;
        for _ in 0..max_cycles {
            let cycle = self.current_cycle;
            let cycle_start = Instant::now();
            self.context.transport.advance_to_cycle(cycle);
            self.apply_churn(protocol, cycle);
            protocol.begin_cycle(cycle, &mut self.context);

            // Fresh random execution order every cycle: this is the cycle-driven
            // equivalent of each node waking up at a random phase inside Δ. The
            // order buffer is engine-owned scratch, reused across cycles.
            self.order_scratch.clear();
            self.order_scratch
                .extend(self.context.network.alive_indices());
            self.context.rng.shuffle(&mut self.order_scratch);
            let node_loop_start = Instant::now();
            for position in 0..self.order_scratch.len() {
                let node = self.order_scratch[position];
                // A node scheduled earlier in the cycle may since have been removed
                // by protocol-driven actions; re-check liveness.
                if self.context.network.is_alive(node) {
                    protocol.execute_node(node, cycle, &mut self.context);
                }
            }
            let node_loop = node_loop_start.elapsed();

            protocol.end_cycle(cycle, &mut self.context);
            self.current_cycle += 1;
            executed += 1;
            if let Some(profile) = self.profiler.as_mut() {
                profile.execute += node_loop;
                profile.plan += cycle_start.elapsed().saturating_sub(node_loop);
                profile.cycles += 1;
            }
            let measure_start = Instant::now();
            let flow = observer(protocol, &mut self.context, cycle);
            if let Some(profile) = self.profiler.as_mut() {
                profile.measure += measure_start.elapsed();
            }
            if flow.is_break() {
                break;
            }
        }
        executed
    }

    /// Runs `protocol` for exactly `cycles` cycles on `threads` worker threads.
    /// See [`CycleEngine::run_parallel_with_observer`].
    pub fn run_parallel<P: ParallelCycleProtocol>(
        &mut self,
        protocol: &mut P,
        cycles: u64,
        threads: usize,
    ) -> u64 {
        self.run_parallel_with_observer(protocol, cycles, threads, |_, _, _| {
            ControlFlow::Continue(())
        })
    }

    /// Parallel equivalent of [`CycleEngine::run_with_observer`]: executes the
    /// independent per-node computations of each cycle on up to `threads`
    /// worker threads while keeping the run bit-for-bit identical to the
    /// sequential engine at any thread count.
    ///
    /// How: the cycle's shuffled order is scanned sequentially and each node is
    /// *planned* ([`ParallelCycleProtocol::plan_node`] — all RNG consumption
    /// and cross-node reads happen here, on the caller thread, in order). The
    /// deferred work accumulates into a wave; a wave is flushed — executed,
    /// then committed in planning order — whenever the scan reaches a node
    /// whose state a pending plan would modify (planning it earlier would read
    /// stale state). Within a wave, items whose node sets overlap an earlier
    /// item are marked `deferred` and execute sequentially after the disjoint
    /// majority, preserving the sequential interleaving exactly.
    ///
    /// `threads <= 1` falls back to [`CycleEngine::run_with_observer`].
    pub fn run_parallel_with_observer<P, F>(
        &mut self,
        protocol: &mut P,
        max_cycles: u64,
        threads: usize,
        mut observer: F,
    ) -> u64
    where
        P: ParallelCycleProtocol,
        F: FnMut(&mut P, &mut EngineContext, u64) -> ControlFlow<()>,
    {
        if threads <= 1 {
            // The sequential engine also honours profiling, with a coarser
            // split: the whole node step lands in `execute` (planning is not
            // separable from execution there) and the remainder in `plan`.
            // Keeping one thread on this path makes profiled and unprofiled
            // runs of the same configuration directly comparable.
            return self.run_with_observer(protocol, max_cycles, observer);
        }
        // The persistent pool outlives individual runs; recreate it only when
        // the requested thread count changes.
        if self.pool.as_ref().map_or(true, |p| p.threads() != threads) {
            self.pool = Some(WorkerPool::new(threads));
        }
        // Reused across cycles and waves: the pending wave, its outcomes, the
        // claimed-node flags and the list of set flags (for O(wave) clearing).
        let mut wave: Vec<PlannedWork<P::Plan>> = Vec::new();
        let mut outcomes: Vec<P::Outcome> = Vec::new();
        let mut claimed: Vec<bool> = Vec::new();
        let mut claimed_list: Vec<NodeIndex> = Vec::new();

        let mut executed = 0;
        for _ in 0..max_cycles {
            let cycle = self.current_cycle;
            let cycle_start = Instant::now();
            let mut flushed = Duration::ZERO;
            self.context.transport.advance_to_cycle(cycle);
            self.apply_churn(protocol, cycle);
            protocol.begin_cycle(cycle, &mut self.context);

            self.order_scratch.clear();
            self.order_scratch
                .extend(self.context.network.alive_indices());
            self.context.rng.shuffle(&mut self.order_scratch);

            claimed.resize(self.context.network.len(), false);
            debug_assert!(claimed_list.is_empty() && wave.is_empty());
            for position in 0..self.order_scratch.len() {
                let node = self.order_scratch[position];
                if !self.context.network.is_alive(node) {
                    continue;
                }
                if claimed[node.as_usize()] {
                    // A pending plan will modify this node's state; planning it
                    // now would read the wrong (pre-wave) state. Flush first.
                    Self::flush_wave(
                        protocol,
                        &mut self.context,
                        &mut wave,
                        &mut outcomes,
                        self.pool.as_mut().expect("pool created above"),
                        &mut self.profiler,
                        &mut flushed,
                    );
                    for claimed_node in claimed_list.drain(..) {
                        claimed[claimed_node.as_usize()] = false;
                    }
                }
                match protocol.plan_node(node, cycle, &mut self.context) {
                    NodePlan::Idle => {}
                    NodePlan::Work { peer, plan } => {
                        let conflict =
                            claimed[node.as_usize()] || peer.is_some_and(|p| claimed[p.as_usize()]);
                        if !claimed[node.as_usize()] {
                            claimed[node.as_usize()] = true;
                            claimed_list.push(node);
                        }
                        if let Some(p) = peer {
                            if !claimed[p.as_usize()] {
                                claimed[p.as_usize()] = true;
                                claimed_list.push(p);
                            }
                        }
                        wave.push(PlannedWork {
                            node,
                            plan,
                            deferred: conflict,
                        });
                    }
                }
            }
            Self::flush_wave(
                protocol,
                &mut self.context,
                &mut wave,
                &mut outcomes,
                self.pool.as_mut().expect("pool created above"),
                &mut self.profiler,
                &mut flushed,
            );
            for claimed_node in claimed_list.drain(..) {
                claimed[claimed_node.as_usize()] = false;
            }

            protocol.end_cycle(cycle, &mut self.context);
            self.current_cycle += 1;
            executed += 1;
            if let Some(profile) = self.profiler.as_mut() {
                // Everything this cycle spent outside execute/commit flushes is
                // the sequential planning scan (plus churn and cycle hooks).
                profile.plan += cycle_start.elapsed().saturating_sub(flushed);
                profile.cycles += 1;
            }
            let measure_start = Instant::now();
            let flow = observer(protocol, &mut self.context, cycle);
            if let Some(profile) = self.profiler.as_mut() {
                profile.measure += measure_start.elapsed();
            }
            if flow.is_break() {
                break;
            }
        }
        executed
    }

    /// Executes and commits a pending wave (no-op when empty). `flushed`
    /// accumulates the wall time spent here so the caller can attribute the
    /// remainder of the cycle to the planning phase.
    fn flush_wave<P: ParallelCycleProtocol>(
        protocol: &mut P,
        context: &mut EngineContext,
        wave: &mut Vec<PlannedWork<P::Plan>>,
        outcomes: &mut Vec<P::Outcome>,
        pool: &mut WorkerPool,
        profile: &mut Option<PhaseProfile>,
        flushed: &mut Duration,
    ) {
        if wave.is_empty() {
            return;
        }
        outcomes.clear();
        let execute_start = Instant::now();
        protocol.execute_wave(wave, pool, outcomes);
        let execute_elapsed = execute_start.elapsed();
        debug_assert_eq!(outcomes.len(), wave.len());
        wave.clear();
        let commit_start = Instant::now();
        for outcome in outcomes.drain(..) {
            protocol.commit_outcome(outcome, context);
        }
        let commit_elapsed = commit_start.elapsed();
        if let Some(profile) = profile.as_mut() {
            profile.execute += execute_elapsed;
            profile.commit += commit_elapsed;
        }
        *flushed += execute_elapsed + commit_elapsed;
    }

    fn apply_churn<P: CycleProtocol>(&mut self, protocol: &mut P, cycle: u64) {
        let ChurnEvents {
            joined,
            departed,
            rebootstrapped,
            converted,
        } = self
            .churn
            .apply(cycle, &mut self.context.network, &mut self.context.rng);
        for node in departed {
            protocol.node_departed(node, cycle, &mut self.context);
        }
        for node in joined {
            protocol.node_joined(node, cycle, &mut self.context);
        }
        for node in rebootstrapped {
            protocol.node_rebootstrapped(node, cycle, &mut self.context);
        }
        for node in converted {
            protocol.node_converted(node, cycle, &mut self.context);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::churn::{CatastrophicFailure, UniformChurn};
    use crate::transport::DropTransport;

    /// Records which nodes executed in which cycle, plus join/leave notifications.
    #[derive(Default)]
    struct Recorder {
        executions: Vec<(u64, NodeIndex)>,
        joined: Vec<NodeIndex>,
        departed: Vec<NodeIndex>,
        begin_calls: u64,
        end_calls: u64,
    }

    impl CycleProtocol for Recorder {
        fn begin_cycle(&mut self, _cycle: u64, _ctx: &mut EngineContext) {
            self.begin_calls += 1;
        }
        fn execute_node(&mut self, node: NodeIndex, cycle: u64, _ctx: &mut EngineContext) {
            self.executions.push((cycle, node));
        }
        fn end_cycle(&mut self, _cycle: u64, _ctx: &mut EngineContext) {
            self.end_calls += 1;
        }
        fn node_joined(&mut self, node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {
            self.joined.push(node);
        }
        fn node_departed(&mut self, node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {
            self.departed.push(node);
        }
    }

    fn engine(size: usize, seed: u64) -> CycleEngine {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(size, &mut rng);
        CycleEngine::new(network, rng)
    }

    #[test]
    fn every_alive_node_executes_once_per_cycle() {
        let mut eng = engine(20, 1);
        let mut protocol = Recorder::default();
        let executed = eng.run(&mut protocol, 5);
        assert_eq!(executed, 5);
        assert_eq!(eng.current_cycle(), 5);
        assert_eq!(protocol.executions.len(), 20 * 5);
        assert_eq!(protocol.begin_calls, 5);
        assert_eq!(protocol.end_calls, 5);
        for cycle in 0..5u64 {
            let mut nodes: Vec<_> = protocol
                .executions
                .iter()
                .filter(|(c, _)| *c == cycle)
                .map(|(_, n)| *n)
                .collect();
            nodes.sort();
            nodes.dedup();
            assert_eq!(nodes.len(), 20, "cycle {cycle} missed some node");
        }
    }

    #[test]
    fn execution_order_is_shuffled_between_cycles() {
        let mut eng = engine(50, 2);
        let mut protocol = Recorder::default();
        eng.run(&mut protocol, 2);
        let cycle0: Vec<_> = protocol
            .executions
            .iter()
            .filter(|(c, _)| *c == 0)
            .map(|(_, n)| *n)
            .collect();
        let cycle1: Vec<_> = protocol
            .executions
            .iter()
            .filter(|(c, _)| *c == 1)
            .map(|(_, n)| *n)
            .collect();
        assert_ne!(cycle0, cycle1, "order should differ between cycles");
    }

    #[test]
    fn runs_are_reproducible_from_the_seed() {
        let mut first = Recorder::default();
        let mut second = Recorder::default();
        engine(30, 7).run(&mut first, 4);
        engine(30, 7).run(&mut second, 4);
        assert_eq!(first.executions, second.executions);
    }

    #[test]
    fn observer_can_stop_the_run_early() {
        let mut eng = engine(10, 3);
        let mut protocol = Recorder::default();
        let executed = eng.run_with_observer(&mut protocol, 100, |_p, _ctx, cycle| {
            if cycle >= 4 {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        assert_eq!(executed, 5);
        assert_eq!(eng.current_cycle(), 5);
    }

    #[test]
    fn churn_hooks_are_invoked() {
        let mut rng = SimRng::seed_from(4);
        let network = Network::with_random_ids(40, &mut rng);
        let mut eng = CycleEngine::new(network, rng).with_churn(Box::new(UniformChurn::new(0.1)));
        let mut protocol = Recorder::default();
        eng.run(&mut protocol, 5);
        assert!(
            !protocol.departed.is_empty(),
            "uniform churn should remove nodes"
        );
        assert!(
            !protocol.joined.is_empty(),
            "uniform churn should add nodes"
        );
        // Network size stays roughly constant under replacement churn.
        assert_eq!(eng.context().network.alive_count(), 40);
    }

    #[test]
    fn catastrophic_failure_removes_requested_fraction() {
        let mut rng = SimRng::seed_from(5);
        let network = Network::with_random_ids(100, &mut rng);
        let mut eng =
            CycleEngine::new(network, rng).with_churn(Box::new(CatastrophicFailure::new(2, 0.7)));
        let mut protocol = Recorder::default();
        eng.run(&mut protocol, 5);
        assert_eq!(protocol.departed.len(), 70);
        assert_eq!(eng.context().network.alive_count(), 30);
        // Dead nodes stop executing.
        let last_cycle_executions = protocol.executions.iter().filter(|(c, _)| *c == 4).count();
        assert_eq!(last_cycle_executions, 30);
    }

    #[test]
    fn transport_is_reachable_through_the_context() {
        let mut rng = SimRng::seed_from(6);
        let network = Network::with_random_ids(4, &mut rng);
        let mut eng =
            CycleEngine::new(network, rng).with_transport(Box::new(DropTransport::new(1.0)));
        assert!(!eng
            .context_mut()
            .deliver(NodeIndex::new(0), NodeIndex::new(1)));
        assert_eq!(eng.context().transport.messages_dropped(), 1);
    }
}
