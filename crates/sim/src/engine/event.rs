//! The discrete-event simulation engine.
//!
//! The cycle-driven engine executes request/response exchanges atomically within a
//! cycle, which is the model the paper evaluates. The event-driven engine relaxes
//! that: messages are scheduled with a per-message latency drawn from the
//! transport, nodes wake up on timers rather than in lock-step, and replies can
//! arrive cycles after their request was sent. It is used by the reproduction to
//! confirm that the protocol's behaviour is not an artifact of the synchronous
//! cycle abstraction.

use crate::engine::cycle::EngineContext;
use crate::network::{Network, NodeIndex};
use crate::transport::Transport;
use bss_util::rng::SimRng;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt::Debug;

/// A protocol driven by the [`EventEngine`].
pub trait EventProtocol {
    /// The message type exchanged between nodes.
    type Message: Debug;

    /// Called once per node when the simulation starts, in index order.
    fn on_start(&mut self, node: NodeIndex, ctx: &mut EventContext<'_, Self::Message>);

    /// Called when a message addressed to `node` is delivered.
    fn on_message(
        &mut self,
        node: NodeIndex,
        from: NodeIndex,
        message: Self::Message,
        ctx: &mut EventContext<'_, Self::Message>,
    );

    /// Called when a timer set by `node` fires.
    fn on_timer(&mut self, node: NodeIndex, timer: u64, ctx: &mut EventContext<'_, Self::Message>);
}

/// What the engine schedules.
#[derive(Debug)]
enum Payload<M> {
    Message { from: NodeIndex, body: M },
    Timer { id: u64 },
}

#[derive(Debug)]
struct Scheduled<M> {
    at: u64,
    seq: u64,
    to: NodeIndex,
    payload: Payload<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The engine-side interface handed to protocol callbacks: read the clock and the
/// network, send messages, set timers.
///
/// The full [`EngineContext`] (network registry, RNG and transport) is exposed
/// through [`EventContext::engine`], which is what lets protocols written
/// against the cycle engine's context — peer samplers in particular — run
/// unchanged under the event engine.
#[derive(Debug)]
pub struct EventContext<'a, M> {
    now: u64,
    node_count: usize,
    engine: &'a mut EngineContext,
    outbox: Vec<(NodeIndex, NodeIndex, M)>,
    timers: Vec<(NodeIndex, u64, u64)>,
}

impl<'a, M> EventContext<'a, M> {
    /// Current simulation time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of nodes registered when the simulation started.
    pub fn initial_node_count(&self) -> usize {
        self.node_count
    }

    /// The shared engine context: node registry, RNG and transport. Handing
    /// out the same type the cycle engine uses means cycle-oriented helpers
    /// (samplers, convergence oracles) work inside event callbacks too.
    pub fn engine(&mut self) -> &mut EngineContext {
        self.engine
    }

    /// Read access to the node registry.
    pub fn network(&self) -> &Network {
        &self.engine.network
    }

    /// Write access to the node registry (protocols may add or kill nodes).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.engine.network
    }

    /// The deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.engine.rng
    }

    /// Queues a message from `from` to `to`. Delivery (and loss) is decided by the
    /// engine's transport when the callback returns; the engine's sent counter is
    /// incremented at that hand-off — not here — so "sent" means the same thing
    /// in both engines: *offered to the transport* (see
    /// [`EventEngine::messages_sent`]).
    pub fn send(&mut self, from: NodeIndex, to: NodeIndex, message: M) {
        self.outbox.push((from, to, message));
    }

    /// Schedules `timer` to fire at `node` after `delay_millis`.
    pub fn set_timer(&mut self, node: NodeIndex, delay_millis: u64, timer: u64) {
        self.timers.push((node, delay_millis, timer));
    }
}

/// A discrete-event scheduler over a [`Network`], a [`Transport`] and a protocol.
#[derive(Debug)]
pub struct EventEngine<M> {
    context: EngineContext,
    queue: BinaryHeap<Scheduled<M>>,
    now: u64,
    seq: u64,
    delivered: u64,
    sent: u64,
    started: bool,
}

impl<M: Debug> EventEngine<M> {
    /// Creates an engine with a reliable, 1 ms transport.
    pub fn new(network: Network, rng: SimRng) -> Self {
        EventEngine {
            context: EngineContext::new(network, rng),
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            delivered: 0,
            sent: 0,
            started: false,
        }
    }

    /// Replaces the transport (builder style).
    #[must_use]
    pub fn with_transport(mut self, transport: Box<dyn Transport>) -> Self {
        self.context.transport = transport;
        self
    }

    /// Shared access to the engine context (network, RNG, transport) — the
    /// same type the cycle engine exposes, so measurement helpers work on
    /// either engine.
    pub fn context(&self) -> &EngineContext {
        &self.context
    }

    /// Exclusive access to the engine context (for scenario scripting between
    /// run slices: applying churn, advancing transport windows).
    pub fn context_mut(&mut self) -> &mut EngineContext {
        &mut self.context
    }

    /// Current simulation time in milliseconds.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of messages handed to the transport so far (counted at the
    /// hand-off, *before* the transport's loss decision). This matches the
    /// cycle engine's accounting, where `TrafficStats` counts `requests_sent`
    /// and `answers_sent` at the same hand-off point — under both engines,
    /// `messages_sent == transport.messages_offered()` when the protocol is
    /// the only transport user. It used to be incremented inside
    /// [`EventContext::send`], which double-counted queued-but-never-offered
    /// messages relative to the cycle engine whenever an engine discarded its
    /// outbox (and made "sent" mean "queued" in one engine but "offered" in
    /// the other).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Number of messages actually delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.delivered
    }

    /// Read access to the transport (for checking its drop statistics against
    /// the engine's own counters).
    pub fn transport(&self) -> &dyn Transport {
        self.context.transport.as_ref()
    }

    /// Read access to the node registry.
    pub fn network(&self) -> &Network {
        &self.context.network
    }

    /// Write access to the node registry (for scenario scripting between runs).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.context.network
    }

    /// Number of events (messages and timers) currently queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Cancels every queued event addressed to a node that is dead in the
    /// registry — pending exchange timers and in-flight answers alike — and
    /// returns how many were removed. Scenario drivers call this right after
    /// killing nodes (catastrophic failure, churn): a dead node must generate
    /// zero traffic from the moment of its failure, and its timer chain must
    /// not linger in the queue. (The pop loop also skips events for dead
    /// recipients as a defence in depth, but that leaves the queue holding a
    /// dead entry per victim until its due time; explicit cancellation keeps
    /// the queue an honest picture of the live network.)
    pub fn cancel_dead(&mut self) -> usize {
        let before = self.queue.len();
        let network = &self.context.network;
        self.queue.retain(|event| network.is_alive(event.to));
        before - self.queue.len()
    }

    /// Runs the start phase now — one `on_start` callback per alive node — if
    /// it has not run yet. [`EventEngine::run_until`] does this automatically
    /// on its first invocation; scenario drivers call it explicitly *before*
    /// applying cycle-0 membership events, so that joiners added at cycle 0
    /// (started individually via [`EventEngine::start_node`]) are not started
    /// a second time by the deferred start phase.
    pub fn start<P>(&mut self, protocol: &mut P)
    where
        P: EventProtocol<Message = M>,
    {
        if self.started {
            return;
        }
        self.started = true;
        let start_nodes: Vec<NodeIndex> = self.context.network.alive_indices().collect();
        for node in start_nodes {
            self.start_node(protocol, node);
        }
    }

    /// Runs `node`'s `on_start` callback at the current simulation time and
    /// applies its effects (queued messages, timers). The first
    /// [`EventEngine::run_until`] call does this automatically for every node
    /// alive at that point; call it explicitly for nodes that join *during*
    /// the run (scenario joins) so they can schedule their first timers.
    pub fn start_node<P>(&mut self, protocol: &mut P, node: NodeIndex)
    where
        P: EventProtocol<Message = M>,
    {
        let mut effects = Effects::default();
        self.with_context(
            &mut effects,
            |ctx, p: &mut P| {
                p.on_start(node, ctx);
            },
            protocol,
        );
        self.apply_effects(&mut effects);
    }

    /// Runs the protocol until the event queue drains or the clock passes
    /// `end_time_millis`, whichever comes first. Returns the number of events
    /// processed.
    ///
    /// The first call triggers the start phase (an `on_start` callback per
    /// alive node); later calls simply resume the queue, so a driver can run
    /// the simulation in slices — one per cycle Δ — and script scenario events
    /// (churn, partitions) between them.
    pub fn run_until<P>(&mut self, protocol: &mut P, end_time_millis: u64) -> u64
    where
        P: EventProtocol<Message = M>,
    {
        self.start(protocol);

        let mut effects = Effects::default();
        let mut processed = 0;
        while let Some(event) = self.queue.pop() {
            if event.at > end_time_millis {
                // Put it back conceptually; we simply stop (the queue resumes
                // on the next run_until slice).
                self.queue.push(event);
                break;
            }
            self.now = event.at;
            processed += 1;
            if !self.context.network.is_alive(event.to) {
                continue; // Messages and timers for dead nodes are silently dropped.
            }
            match event.payload {
                Payload::Message { from, body } => {
                    self.delivered += 1;
                    self.with_context(
                        &mut effects,
                        |ctx, p: &mut P| {
                            p.on_message(event.to, from, body, ctx);
                        },
                        protocol,
                    );
                }
                Payload::Timer { id } => {
                    self.with_context(
                        &mut effects,
                        |ctx, p: &mut P| {
                            p.on_timer(event.to, id, ctx);
                        },
                        protocol,
                    );
                }
            }
            self.apply_effects(&mut effects);
        }
        // The slice ends on the requested horizon even when the queue drained
        // earlier, so per-cycle drivers can map `now` back to a cycle index.
        self.now = self.now.max(end_time_millis);
        processed
    }

    fn with_context<P, F>(&mut self, effects: &mut Effects<M>, f: F, protocol: &mut P)
    where
        F: FnOnce(&mut EventContext<'_, M>, &mut P),
    {
        let node_count = self.context.network.len();
        let mut ctx = EventContext {
            now: self.now,
            node_count,
            engine: &mut self.context,
            outbox: Vec::new(),
            timers: Vec::new(),
        };
        f(&mut ctx, protocol);
        effects.outbox = ctx.outbox;
        effects.timers = ctx.timers;
    }

    fn apply_effects(&mut self, effects: &mut Effects<M>) {
        for (from, to, body) in effects.outbox.drain(..) {
            // "Sent" is counted at the transport hand-off, mirroring the cycle
            // engine's TrafficStats semantics.
            self.sent += 1;
            let context = &mut self.context;
            if context.transport.should_deliver(from, to, &mut context.rng) {
                let latency = context.transport.latency_millis(from, to, &mut context.rng);
                self.seq += 1;
                self.queue.push(Scheduled {
                    at: self.now + latency.max(1),
                    seq: self.seq,
                    to,
                    payload: Payload::Message { from, body },
                });
            }
        }
        for (node, delay, id) in effects.timers.drain(..) {
            self.seq += 1;
            self.queue.push(Scheduled {
                at: self.now + delay.max(1),
                seq: self.seq,
                to: node,
                payload: Payload::Timer { id },
            });
        }
    }
}

#[derive(Debug)]
struct Effects<M> {
    outbox: Vec<(NodeIndex, NodeIndex, M)>,
    timers: Vec<(NodeIndex, u64, u64)>,
}

impl<M> Default for Effects<M> {
    fn default() -> Self {
        Effects {
            outbox: Vec::new(),
            timers: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{DropTransport, ReliableTransport, UniformLatencyTransport};

    /// A ping-pong protocol: node 0 pings node 1, each pong triggers another ping,
    /// bounded by a hop counter in the message.
    struct PingPong {
        received: Vec<(NodeIndex, u32)>,
    }

    impl EventProtocol for PingPong {
        type Message = u32;

        fn on_start(&mut self, node: NodeIndex, ctx: &mut EventContext<'_, u32>) {
            if node == NodeIndex::new(0) {
                ctx.send(node, NodeIndex::new(1), 8);
            }
        }

        fn on_message(
            &mut self,
            node: NodeIndex,
            from: NodeIndex,
            message: u32,
            ctx: &mut EventContext<'_, u32>,
        ) {
            self.received.push((node, message));
            if message > 0 {
                ctx.send(node, from, message - 1);
            }
        }

        fn on_timer(&mut self, _node: NodeIndex, _timer: u64, _ctx: &mut EventContext<'_, u32>) {}
    }

    /// A protocol that reschedules itself with a periodic timer and counts firings.
    struct PeriodicTimer {
        fired: Vec<(NodeIndex, u64)>,
    }

    impl EventProtocol for PeriodicTimer {
        type Message = ();

        fn on_start(&mut self, node: NodeIndex, ctx: &mut EventContext<'_, ()>) {
            ctx.set_timer(node, 10, 1);
        }

        fn on_message(
            &mut self,
            _n: NodeIndex,
            _f: NodeIndex,
            _m: (),
            _ctx: &mut EventContext<'_, ()>,
        ) {
        }

        fn on_timer(&mut self, node: NodeIndex, timer: u64, ctx: &mut EventContext<'_, ()>) {
            self.fired.push((node, ctx.now()));
            ctx.set_timer(node, 10, timer);
        }
    }

    fn small_engine<M: Debug>(nodes: usize, seed: u64) -> EventEngine<M> {
        let mut rng = SimRng::seed_from(seed);
        let network = Network::with_random_ids(nodes, &mut rng);
        EventEngine::new(network, rng)
    }

    #[test]
    fn ping_pong_exchanges_the_expected_number_of_messages() {
        let mut engine = small_engine(2, 1);
        let mut protocol = PingPong {
            received: Vec::new(),
        };
        let processed = engine.run_until(&mut protocol, 1_000_000);
        // 9 messages total (hops 8..=0), all delivered.
        assert_eq!(protocol.received.len(), 9);
        assert_eq!(engine.messages_sent(), 9);
        assert_eq!(engine.messages_delivered(), 9);
        assert_eq!(processed, 9);
        // Alternating receivers.
        assert_eq!(protocol.received[0].0, NodeIndex::new(1));
        assert_eq!(protocol.received[1].0, NodeIndex::new(0));
    }

    #[test]
    fn drop_transport_silences_the_conversation() {
        let mut engine: EventEngine<u32> =
            small_engine::<u32>(2, 2).with_transport(Box::new(DropTransport::new(1.0)));
        let mut protocol = PingPong {
            received: Vec::new(),
        };
        engine.run_until(&mut protocol, 1_000_000);
        assert!(protocol.received.is_empty());
        assert_eq!(engine.messages_sent(), 1);
        assert_eq!(engine.messages_delivered(), 0);
    }

    #[test]
    fn timers_fire_periodically_until_the_horizon() {
        let mut engine: EventEngine<()> = small_engine(3, 3);
        let mut protocol = PeriodicTimer { fired: Vec::new() };
        engine.run_until(&mut protocol, 100);
        // Each of the 3 nodes fires at t = 10, 20, ..., 100 -> 10 firings each.
        assert_eq!(protocol.fired.len(), 30);
        assert!(protocol.fired.iter().all(|&(_, t)| t <= 100 && t % 10 == 0));
        assert_eq!(engine.now(), 100);
    }

    #[test]
    fn sent_counter_agrees_with_the_transport_under_loss() {
        // Unified semantics: "sent" is what was offered to the transport, in
        // both engines. With a lossy transport the event engine must report
        // sent == transport.offered and delivered == offered - dropped once
        // the queue drains (nothing in flight, no dead recipients).
        let mut engine: EventEngine<u32> =
            small_engine::<u32>(2, 8).with_transport(Box::new(DropTransport::new(0.4)));
        let mut protocol = PingPong {
            received: Vec::new(),
        };
        engine.run_until(&mut protocol, 1_000_000);
        assert_eq!(
            engine.messages_sent(),
            engine.transport().messages_offered()
        );
        assert_eq!(
            engine.messages_delivered(),
            engine.transport().messages_offered() - engine.transport().messages_dropped()
        );
        // The conversation ends at the first drop, so exactly one message was
        // dropped and every earlier one was delivered.
        assert_eq!(engine.transport().messages_dropped(), 1);
        assert_eq!(protocol.received.len() as u64, engine.messages_delivered());
    }

    #[test]
    fn cancel_dead_purges_the_queue_and_silences_victims() {
        let mut engine: EventEngine<()> = small_engine(4, 9);
        let mut protocol = PeriodicTimer { fired: Vec::new() };
        engine.run_until(&mut protocol, 25);
        assert_eq!(engine.pending_events(), 4, "one pending timer per node");
        // Two nodes die mid-run; cancellation removes exactly their timers.
        engine.network_mut().kill(NodeIndex::new(1));
        engine.network_mut().kill(NodeIndex::new(2));
        assert_eq!(engine.cancel_dead(), 2);
        assert_eq!(engine.pending_events(), 2);
        assert_eq!(engine.cancel_dead(), 0, "idempotent");
        let before = protocol.fired.len();
        engine.run_until(&mut protocol, 60);
        let survivors_fired = protocol.fired[before..]
            .iter()
            .filter(|&&(node, _)| node == NodeIndex::new(0) || node == NodeIndex::new(3))
            .count();
        assert_eq!(
            protocol.fired.len() - before,
            survivors_fired,
            "dead nodes generate zero events after cancellation"
        );
        assert!(survivors_fired > 0);
    }

    #[test]
    fn messages_to_dead_nodes_are_dropped() {
        let mut engine = small_engine(2, 4);
        engine.network_mut().kill(NodeIndex::new(1));
        let mut protocol = PingPong {
            received: Vec::new(),
        };
        engine.run_until(&mut protocol, 1_000);
        assert!(protocol.received.is_empty(), "dead node must not receive");
        assert_eq!(engine.network().alive_count(), 1);
    }

    #[test]
    fn latency_orders_events_deterministically() {
        let mut engine: EventEngine<u32> = small_engine::<u32>(2, 5).with_transport(Box::new(
            UniformLatencyTransport::new(ReliableTransport::new(), 5, 50),
        ));
        let mut protocol = PingPong {
            received: Vec::new(),
        };
        engine.run_until(&mut protocol, 10_000);
        assert_eq!(protocol.received.len(), 9);
        // Re-running with the same seed reproduces the same trace.
        let mut engine2: EventEngine<u32> = small_engine::<u32>(2, 5).with_transport(Box::new(
            UniformLatencyTransport::new(ReliableTransport::new(), 5, 50),
        ));
        let mut protocol2 = PingPong {
            received: Vec::new(),
        };
        engine2.run_until(&mut protocol2, 10_000);
        assert_eq!(protocol.received, protocol2.received);
        assert_eq!(engine.now(), engine2.now());
    }

    #[test]
    fn run_until_can_be_sliced_without_restarting() {
        // Two half-horizon slices must equal one full run: the start phase only
        // fires once, and the queue resumes where the first slice stopped.
        let mut sliced: EventEngine<()> = small_engine(3, 3);
        let mut sliced_protocol = PeriodicTimer { fired: Vec::new() };
        sliced.run_until(&mut sliced_protocol, 50);
        assert_eq!(sliced.now(), 50);
        sliced.run_until(&mut sliced_protocol, 100);

        let mut whole: EventEngine<()> = small_engine(3, 3);
        let mut whole_protocol = PeriodicTimer { fired: Vec::new() };
        whole.run_until(&mut whole_protocol, 100);
        assert_eq!(sliced_protocol.fired, whole_protocol.fired);
        assert_eq!(sliced.now(), whole.now());
    }

    #[test]
    fn late_joiners_start_when_asked() {
        let mut engine: EventEngine<()> = small_engine(2, 7);
        let mut protocol = PeriodicTimer { fired: Vec::new() };
        engine.run_until(&mut protocol, 50);
        assert_eq!(protocol.fired.len(), 10, "two nodes, five firings each");
        // A node joins mid-run; its timers only begin once start_node is called.
        let joiner = {
            let context = engine.context_mut();
            context.network.add_random_node(&mut context.rng)
        };
        engine.start_node(&mut protocol, joiner);
        engine.run_until(&mut protocol, 100);
        let join_firings = protocol.fired.iter().filter(|&&(n, _)| n == joiner).count();
        assert_eq!(join_firings, 5, "joiner fires from t=60 to t=100");
    }

    #[test]
    fn run_stops_at_the_requested_horizon() {
        let mut engine: EventEngine<()> = small_engine(1, 6);
        let mut protocol = PeriodicTimer { fired: Vec::new() };
        let processed = engine.run_until(&mut protocol, 35);
        assert_eq!(processed, 3, "only timers at 10, 20, 30 fit in the horizon");
        assert!(engine.now() <= 35);
    }
}
