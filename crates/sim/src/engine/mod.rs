//! Simulation engines.
//!
//! Two execution models are provided, mirroring PeerSim:
//!
//! * [`cycle`] — the cycle-driven engine used for all of the paper's experiments:
//!   time advances in discrete cycles of length Δ; within a cycle every alive node
//!   acts exactly once, in a fresh random order (modelling the random start phases
//!   of §5), and a request/response exchange completes within the cycle.
//! * [`event`] — a discrete-event engine with per-message latencies, useful for
//!   checking that the protocol is not an artifact of the synchronous cycle model.

pub mod cycle;
pub mod event;
