//! # bss-sim — a peer-to-peer simulation engine (PeerSim equivalent)
//!
//! The paper evaluates the bootstrapping service on PeerSim, a cycle-driven
//! peer-to-peer simulator. This crate is a from-scratch Rust substitute providing
//! the same execution model plus an event-driven engine for latency realism:
//!
//! * [`network`] — the global node registry: identifiers, alive/dead status,
//!   dense [`NodeIndex`](network::NodeIndex) addresses and descriptor creation.
//! * [`transport`] — message delivery models: reliable, uniform drop (the paper's
//!   20 % loss experiment), latency distributions and network partitions.
//! * [`link`] — per-`(src, dst)` latency and loss: the [`LinkModel`](link::LinkModel)
//!   trait with trivial constant/uniform impls (byte-compatible with the legacy
//!   global models) and a distance-dependent WAN model over a node placement,
//!   plus [`LinkTransport`](link::LinkTransport) composing a link model with the
//!   scripted timeline and phase-windowed regional outages / slow links.
//! * [`engine`] — the [`cycle`](engine::cycle) engine (each node acts once per
//!   cycle, in a random order, exchanging request/response pairs synchronously,
//!   exactly like PeerSim's cycle-driven mode) and the [`event`](engine::event)
//!   engine (a discrete-event scheduler with per-message latency).
//! * [`churn`] — join/leave/catastrophic-failure scenarios applied at cycle
//!   boundaries.
//! * [`adversary`] — the Byzantine adversary model: which nodes were converted,
//!   the active attack window, and the configured behavior (descriptor forgery,
//!   eclipse sprays, hub attacks), consulted at message-composition time.
//! * [`observer`] — periodic measurement hooks and control-flow helpers.
//! * [`pool`] — the persistent worker pool behind the parallel cycle engine:
//!   long-lived threads fed over channels, so a million-cycle run pays the
//!   thread-spawn cost once instead of once per wave.
//!
//! # Example: a trivial cycle-driven protocol
//!
//! ```rust
//! use bss_sim::engine::cycle::{CycleEngine, CycleProtocol, EngineContext};
//! use bss_sim::network::{Network, NodeIndex};
//! use bss_util::rng::SimRng;
//!
//! /// Counts how many times every node was scheduled.
//! struct Counter {
//!     executions: Vec<u64>,
//! }
//!
//! impl CycleProtocol for Counter {
//!     fn execute_node(&mut self, node: NodeIndex, _cycle: u64, _ctx: &mut EngineContext) {
//!         self.executions[node.as_usize()] += 1;
//!     }
//! }
//!
//! let mut rng = SimRng::seed_from(1);
//! let network = Network::with_random_ids(16, &mut rng);
//! let mut engine = CycleEngine::new(network, rng);
//! let mut protocol = Counter { executions: vec![0; 16] };
//! engine.run(&mut protocol, 10);
//! assert!(protocol.executions.iter().all(|&count| count == 10));
//! ```

// `deny` instead of `forbid`: the worker pool needs one audited lifetime
// transmute (see `pool`); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod churn;
pub mod engine;
pub mod link;
pub mod network;
pub mod observer;
pub mod pool;
pub mod transport;

pub use adversary::{AdversaryBehavior, AdversaryModel};
pub use engine::cycle::{CycleEngine, CycleProtocol, EngineContext, PhaseProfile};
pub use engine::event::{EventEngine, EventProtocol};
pub use link::{ConstantLink, LinkModel, LinkTransport, UniformLink, WanLink, WanParams};
pub use network::{Network, NodeIndex};
pub use pool::WorkerPool;
pub use transport::{DropTransport, PartitionTransport, ReliableTransport, Transport};
