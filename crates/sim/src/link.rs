//! Per-link latency and loss models: the topology layer of the transport stack.
//!
//! Historically the event engine drew every message's latency from one global
//! distribution ([`UniformLatencyTransport`](crate::transport::UniformLatencyTransport))
//! and the cycle engine ignored latency entirely. A [`LinkModel`] instead
//! answers per `(src, dst)` link, which lets a WAN model derive latency from
//! coordinate distance ([`bss_util::coords`]) and lets scenario events target
//! whole regions. [`LinkTransport`] stitches a link model onto the scripted
//! [`TimelineTransport`] so both engines consult the same object.
//!
//! # Determinism contract
//!
//! The trivial models are drop-in replacements for the legacy transports and
//! replay their **exact** RNG streams:
//!
//! * [`ConstantLink`] draws nothing, like `UniformLatencyTransport` with
//!   `min == max`;
//! * [`UniformLink`] draws exactly one `range_u64(min, max + 1)` per delivered
//!   message, like `UniformLatencyTransport` with `min < max`;
//! * [`WanLink`] draws **nothing** from the engine stream — its jitter is a
//!   pure hash of `(seed, src, dst)` — so per-link latency is a deterministic
//!   function of the pair, independent of message order.
//!
//! A [`LinkTransport`] with no regional windows and a zero-loss link model
//! delegates its delivery decision verbatim to the inner timeline, which is
//! what keeps the committed goldens byte-identical with topology off.

use crate::network::NodeIndex;
use crate::transport::{TimelineTransport, Transport};
use bss_util::config::InvalidParams;
use bss_util::coords::Placement;
use bss_util::rng::SimRng;
use std::fmt::Debug;
use std::sync::Arc;

/// Salt mixed into the seed of [`WanLink`]'s per-pair jitter hash (spells
/// `"linkjit!"`), keeping it disjoint from every other derived stream.
pub const LINK_JITTER_SALT: u64 = 0x6c69_6e6b_6a69_7421;

/// Parameters of the distance-dependent WAN latency model.
///
/// Latency of a link is `base_millis + distance × millis_per_unit + jitter`,
/// where `distance` is the Euclidean distance between the endpoints'
/// coordinates and `jitter` is a per-`(src, dst)` hash draw in
/// `[0, jitter_millis]`. The hash is ordered, so `a → b` and `b → a` generally
/// differ — links are asymmetric, as in heterogeneous-link architectures.
/// Messages crossing a region boundary are additionally dropped with
/// probability `inter_region_loss`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanParams {
    /// Fixed per-link cost in milliseconds (propagation floor).
    pub base_millis: u64,
    /// Milliseconds added per coordinate distance unit.
    pub millis_per_unit: f64,
    /// Upper bound (inclusive) of the deterministic per-pair jitter, ms.
    pub jitter_millis: u64,
    /// Drop probability for messages whose endpoints lie in different regions.
    pub inter_region_loss: f64,
}

impl Default for WanParams {
    /// 5 ms floor, 0.05 ms per unit, 3 ms jitter, lossless.
    fn default() -> Self {
        WanParams {
            base_millis: 5,
            millis_per_unit: 0.05,
            jitter_millis: 3,
            inter_region_loss: 0.0,
        }
    }
}

impl WanParams {
    /// Rejects non-finite or negative rates and out-of-unit loss with the
    /// typed [`InvalidParams::OutOfRange`].
    pub fn validate(&self) -> Result<(), InvalidParams> {
        if !self.millis_per_unit.is_finite() || self.millis_per_unit < 0.0 {
            return Err(InvalidParams::OutOfRange {
                field: "wan millis_per_unit",
                value: self.millis_per_unit,
                min: 0.0,
                max: f64::MAX,
            });
        }
        if !self.inter_region_loss.is_finite() || !(0.0..=1.0).contains(&self.inter_region_loss) {
            return Err(InvalidParams::OutOfRange {
                field: "wan inter_region_loss",
                value: self.inter_region_loss,
                min: 0.0,
                max: 1.0,
            });
        }
        Ok(())
    }
}

/// A per-`(src, dst)` latency and loss model.
///
/// Implementations must be deterministic: latency may either consume a
/// documented number of draws from the engine RNG (the trivial models, for
/// stream compatibility) or none at all (the WAN model).
pub trait LinkModel: Debug + Send {
    /// Latency, in milliseconds, of a delivered message on this link.
    fn latency_millis(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> u64;

    /// Structural loss probability of this link (on top of whatever the
    /// scripted timeline decides). The default is lossless.
    fn link_loss(&self, _from: NodeIndex, _to: NodeIndex) -> f64 {
        0.0
    }

    /// Inclusive `(min, max)` bounds every latency this model can return.
    fn bounds(&self) -> (u64, u64);
}

/// Constant latency on every link. Draws nothing: byte-compatible with the
/// legacy `UniformLatencyTransport` when `min == max`.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLink {
    millis: u64,
}

impl ConstantLink {
    /// A link model answering `millis` for every pair.
    pub fn new(millis: u64) -> Self {
        ConstantLink { millis }
    }
}

impl LinkModel for ConstantLink {
    fn latency_millis(&mut self, _from: NodeIndex, _to: NodeIndex, _rng: &mut SimRng) -> u64 {
        self.millis
    }

    fn bounds(&self) -> (u64, u64) {
        (self.millis, self.millis)
    }
}

/// Uniformly random latency in `[min, max]`, one draw per delivered message —
/// the exact RNG stream of the legacy `UniformLatencyTransport`.
#[derive(Debug, Clone, Copy)]
pub struct UniformLink {
    min_millis: u64,
    max_millis: u64,
}

impl UniformLink {
    /// A link model drawing uniformly from `[min_millis, max_millis]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_millis > max_millis` (validated ranges never reach
    /// here; the panic mirrors `UniformLatencyTransport::new`).
    pub fn new(min_millis: u64, max_millis: u64) -> Self {
        assert!(min_millis <= max_millis, "latency range is inverted");
        UniformLink {
            min_millis,
            max_millis,
        }
    }
}

impl LinkModel for UniformLink {
    fn latency_millis(&mut self, _from: NodeIndex, _to: NodeIndex, rng: &mut SimRng) -> u64 {
        if self.min_millis == self.max_millis {
            self.min_millis
        } else {
            rng.range_u64(self.min_millis, self.max_millis + 1)
        }
    }

    fn bounds(&self) -> (u64, u64) {
        (self.min_millis, self.max_millis)
    }
}

/// SplitMix64 finalizer: the bijective mixer behind the WAN jitter hash.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Distance-dependent WAN latency over a node [`Placement`].
///
/// See [`WanParams`] for the formula. Latency draws **nothing** from the
/// engine RNG: the jitter term is a pure hash of `(seed, src, dst)`, so the
/// latency of a link is a deterministic function of the pair — a property the
/// test suite pins with a property test.
#[derive(Debug, Clone)]
pub struct WanLink {
    placement: Arc<Placement>,
    params: WanParams,
    seed: u64,
}

impl WanLink {
    /// A WAN link model over `placement`, seeded with the experiment seed.
    pub fn new(placement: Arc<Placement>, params: WanParams, seed: u64) -> Self {
        WanLink {
            placement,
            params,
            seed,
        }
    }

    /// The placement this model measures distances on.
    pub fn placement(&self) -> &Arc<Placement> {
        &self.placement
    }

    /// Latency of the ordered link `from → to` (pure function; `&self`).
    pub fn link_latency(&self, from: NodeIndex, to: NodeIndex) -> u64 {
        let distance = self.placement.distance(from.as_usize(), to.as_usize());
        let propagation = (distance * self.params.millis_per_unit).round() as u64;
        let jitter = if self.params.jitter_millis == 0 {
            0
        } else {
            let pair = (u64::from(from.raw()) << 32) | u64::from(to.raw());
            mix(self.seed ^ LINK_JITTER_SALT ^ pair) % (self.params.jitter_millis + 1)
        };
        (self.params.base_millis + propagation + jitter).max(1)
    }
}

impl LinkModel for WanLink {
    fn latency_millis(&mut self, from: NodeIndex, to: NodeIndex, _rng: &mut SimRng) -> u64 {
        self.link_latency(from, to)
    }

    fn link_loss(&self, from: NodeIndex, to: NodeIndex) -> f64 {
        if self.placement.region(from.as_usize()) != self.placement.region(to.as_usize()) {
            self.params.inter_region_loss
        } else {
            0.0
        }
    }

    fn bounds(&self) -> (u64, u64) {
        let max_propagation =
            (self.placement.spec().max_distance() * self.params.millis_per_unit).round() as u64;
        let min = self.params.base_millis.max(1);
        let max = (self.params.base_millis + max_propagation + self.params.jitter_millis).max(1);
        (min, max)
    }
}

/// The full per-link transport: a scripted [`TimelineTransport`] (loss and
/// partition windows) composed with a [`LinkModel`] and phase-windowed
/// regional effects (outages, slow links).
///
/// Delivery order per message: the inner timeline decides first (preserving
/// the legacy RNG stream), then active regional outages flip one coin per
/// matching window, then the link model's structural loss flips one coin.
/// Latency is the link model's answer, scaled by every active slow-link
/// window that matches the link, floored at 1 ms.
#[derive(Debug)]
pub struct LinkTransport {
    inner: TimelineTransport,
    link: Box<dyn LinkModel>,
    placement: Option<Arc<Placement>>,
    /// `(start, end, region, loss)` outage windows, `[start, end)` in cycles.
    outage_windows: Vec<(u64, u64, u32, f64)>,
    /// `(start, end, region, factor)` slow-link windows; `region == None`
    /// slows every link.
    slow_windows: Vec<(u64, u64, Option<u32>, f64)>,
    cycle: u64,
    extra_dropped: u64,
}

impl LinkTransport {
    /// Wraps `inner` with a link model; no regional windows, no placement.
    pub fn new(inner: TimelineTransport, link: Box<dyn LinkModel>) -> Self {
        LinkTransport {
            inner,
            link,
            placement: None,
            outage_windows: Vec::new(),
            slow_windows: Vec::new(),
            cycle: 0,
            extra_dropped: 0,
        }
    }

    /// Attaches the node placement regional windows consult. Builder style.
    #[must_use]
    pub fn with_placement(mut self, placement: Arc<Placement>) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Adds a regional outage: while the current cycle lies in `[start, end)`,
    /// every message with an endpoint in `region` is dropped independently
    /// with probability `loss`. Builder style.
    #[must_use]
    pub fn with_outage_window(mut self, start: u64, end: u64, region: u32, loss: f64) -> Self {
        self.outage_windows
            .push((start, end, region, loss.clamp(0.0, 1.0)));
        self
    }

    /// Adds a slow-link window: while active, the latency of every matching
    /// link (an endpoint in `region`, or all links when `region` is `None`)
    /// is multiplied by `factor`. Builder style.
    #[must_use]
    pub fn with_slow_window(
        mut self,
        start: u64,
        end: u64,
        region: Option<u32>,
        factor: f64,
    ) -> Self {
        self.slow_windows.push((start, end, region, factor));
        self
    }

    /// Region of a node under the attached placement (0 when none).
    fn region(&self, node: NodeIndex) -> u32 {
        self.placement
            .as_ref()
            .map_or(0, |p| p.region(node.as_usize()))
    }

    /// True when window `region` touches the `from → to` link.
    fn touches(&self, region: u32, from: NodeIndex, to: NodeIndex) -> bool {
        self.region(from) == region || self.region(to) == region
    }

    /// Combined slow-link factor active on this link at the current cycle.
    fn slow_factor(&self, from: NodeIndex, to: NodeIndex) -> f64 {
        let mut factor = 1.0;
        for &(start, end, region, window_factor) in &self.slow_windows {
            if self.cycle >= start && self.cycle < end {
                let matches = match region {
                    None => true,
                    Some(r) => self.touches(r, from, to),
                };
                if matches {
                    factor *= window_factor;
                }
            }
        }
        factor
    }
}

impl Transport for LinkTransport {
    fn should_deliver(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> bool {
        // The scripted timeline decides first so that, with no regional
        // windows and a lossless link model, this transport consumes exactly
        // the legacy RNG stream.
        if !self.inner.should_deliver(from, to, rng) {
            return false;
        }
        for index in 0..self.outage_windows.len() {
            let (start, end, region, loss) = self.outage_windows[index];
            if self.cycle >= start
                && self.cycle < end
                && loss > 0.0
                && self.touches(region, from, to)
                && rng.chance(loss)
            {
                self.extra_dropped += 1;
                return false;
            }
        }
        let structural = self.link.link_loss(from, to);
        if structural > 0.0 && rng.chance(structural) {
            self.extra_dropped += 1;
            return false;
        }
        true
    }

    fn advance_to_cycle(&mut self, cycle: u64) {
        self.cycle = cycle;
        self.inner.advance_to_cycle(cycle);
    }

    fn latency_millis(&mut self, from: NodeIndex, to: NodeIndex, rng: &mut SimRng) -> u64 {
        let base = self.link.latency_millis(from, to, rng);
        let factor = self.slow_factor(from, to);
        if factor == 1.0 {
            base
        } else {
            ((base as f64) * factor).round() as u64
        }
        .max(1)
    }

    fn messages_offered(&self) -> u64 {
        self.inner.messages_offered()
    }

    fn messages_dropped(&self) -> u64 {
        self.inner.messages_dropped() + self.extra_dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::UniformLatencyTransport;
    use bss_util::coords::PlacementSpec;

    fn idx(i: u32) -> NodeIndex {
        NodeIndex::new(i)
    }

    fn dumbbell() -> Arc<Placement> {
        Arc::new(
            PlacementSpec::Dumbbell {
                separation: 500.0,
                spread: 20.0,
            }
            .generate(16, 7),
        )
    }

    #[test]
    fn trivial_links_replay_the_uniform_latency_transport_stream() {
        // ConstantLink and UniformLink must consume exactly the draws the
        // legacy UniformLatencyTransport consumed — this equivalence is what
        // keeps event-engine goldens byte-identical after the refactor.
        for (min, max) in [(5, 5), (10, 50)] {
            let timeline = || TimelineTransport::new().with_loss_window(2, 4, 0.5);
            let mut legacy = UniformLatencyTransport::new(timeline(), min, max);
            let link: Box<dyn LinkModel> = if min == max {
                Box::new(ConstantLink::new(min))
            } else {
                Box::new(UniformLink::new(min, max))
            };
            let mut refit = LinkTransport::new(timeline(), link);
            let mut rng_a = SimRng::seed_from(42);
            let mut rng_b = SimRng::seed_from(42);
            for message in 0..600u64 {
                let cycle = message / 100;
                legacy.advance_to_cycle(cycle);
                refit.advance_to_cycle(cycle);
                let (from, to) = (idx((message % 7) as u32), idx((message % 5 + 7) as u32));
                let a = legacy.should_deliver(from, to, &mut rng_a);
                let b = refit.should_deliver(from, to, &mut rng_b);
                assert_eq!(a, b);
                if a {
                    assert_eq!(
                        legacy.latency_millis(from, to, &mut rng_a),
                        refit.latency_millis(from, to, &mut rng_b)
                    );
                }
            }
            assert_eq!(rng_a, rng_b, "streams diverged for range [{min}, {max}]");
            assert_eq!(legacy.messages_offered(), refit.messages_offered());
            assert_eq!(legacy.messages_dropped(), refit.messages_dropped());
        }
    }

    #[test]
    fn wan_latency_is_deterministic_and_draws_nothing() {
        let placement = dumbbell();
        let mut wan = WanLink::new(placement, WanParams::default(), 99);
        let mut rng = SimRng::seed_from(1);
        let fingerprint = rng.clone();
        let first = wan.latency_millis(idx(0), idx(1), &mut rng);
        let second = wan.latency_millis(idx(0), idx(1), &mut rng);
        assert_eq!(first, second);
        assert_eq!(rng, fingerprint, "WAN latency must not consume engine RNG");
    }

    #[test]
    fn wan_latency_is_asymmetric_but_bounded() {
        let placement = dumbbell();
        let params = WanParams {
            jitter_millis: 10,
            ..WanParams::default()
        };
        let wan = WanLink::new(placement, params, 3);
        let (min, max) = wan.bounds();
        let mut saw_asymmetry = false;
        for a in 0..16u32 {
            for b in 0..16u32 {
                let forward = wan.link_latency(idx(a), idx(b));
                assert!((min..=max).contains(&forward));
                if a != b && forward != wan.link_latency(idx(b), idx(a)) {
                    saw_asymmetry = true;
                }
            }
        }
        assert!(saw_asymmetry, "ordered jitter should split some pair");
    }

    #[test]
    fn wan_cross_region_links_cost_more_than_local_ones() {
        let placement = dumbbell();
        let wan = WanLink::new(placement, WanParams::default(), 5);
        // Dumbbell: even indices are region 0, odd are region 1.
        let local = wan.link_latency(idx(0), idx(2));
        let cross = wan.link_latency(idx(0), idx(1));
        assert!(
            cross > local,
            "separation 500 must dominate: local {local}, cross {cross}"
        );
    }

    #[test]
    fn wan_inter_region_loss_applies_only_across_regions() {
        let placement = dumbbell();
        let params = WanParams {
            inter_region_loss: 0.25,
            ..WanParams::default()
        };
        let wan = WanLink::new(placement, params, 1);
        assert_eq!(wan.link_loss(idx(0), idx(2)), 0.0);
        assert_eq!(wan.link_loss(idx(0), idx(1)), 0.25);
    }

    #[test]
    fn outage_window_drops_only_matching_region_and_window() {
        let placement = dumbbell();
        let mut transport =
            LinkTransport::new(TimelineTransport::new(), Box::new(ConstantLink::new(1)))
                .with_placement(placement)
                .with_outage_window(5, 10, 1, 1.0);
        let mut rng = SimRng::seed_from(2);
        // Outside the window: everything flows, no coins flipped.
        let fingerprint = rng.clone();
        assert!(transport.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(rng, fingerprint);
        // Inside: region-1 traffic dies (certain loss draws no surviving
        // stream guarantees — loss 1.0 still flips the coin, as chance()
        // always draws), region-0-local traffic survives untouched.
        transport.advance_to_cycle(5);
        assert!(!transport.should_deliver(idx(0), idx(1), &mut rng));
        assert!(!transport.should_deliver(idx(1), idx(3), &mut rng));
        let quiet = rng.clone();
        assert!(transport.should_deliver(idx(0), idx(2), &mut rng));
        assert_eq!(rng, quiet, "region-0 traffic must not flip outage coins");
        // Past the window: region 1 recovers.
        transport.advance_to_cycle(10);
        assert!(transport.should_deliver(idx(0), idx(1), &mut rng));
        assert_eq!(transport.messages_dropped(), 2);
    }

    #[test]
    fn slow_window_scales_latency_and_heals() {
        let placement = dumbbell();
        let mut transport =
            LinkTransport::new(TimelineTransport::new(), Box::new(ConstantLink::new(10)))
                .with_placement(placement)
                .with_slow_window(3, 6, Some(1), 2.5)
                .with_slow_window(0, u64::MAX, None, 1.0);
        let mut rng = SimRng::seed_from(3);
        assert_eq!(transport.latency_millis(idx(0), idx(1), &mut rng), 10);
        transport.advance_to_cycle(3);
        assert_eq!(transport.latency_millis(idx(0), idx(1), &mut rng), 25);
        assert_eq!(
            transport.latency_millis(idx(0), idx(2), &mut rng),
            10,
            "region-0-local links are unaffected"
        );
        transport.advance_to_cycle(6);
        assert_eq!(transport.latency_millis(idx(0), idx(1), &mut rng), 10);
    }

    #[test]
    fn wan_params_validation_is_typed() {
        let bad_rate = WanParams {
            millis_per_unit: -1.0,
            ..WanParams::default()
        };
        assert!(matches!(
            bad_rate.validate(),
            Err(InvalidParams::OutOfRange {
                field: "wan millis_per_unit",
                ..
            })
        ));
        let bad_loss = WanParams {
            inter_region_loss: 1.5,
            ..WanParams::default()
        };
        assert!(matches!(
            bad_loss.validate(),
            Err(InvalidParams::OutOfRange {
                field: "wan inter_region_loss",
                ..
            })
        ));
        assert_eq!(WanParams::default().validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn uniform_link_rejects_inverted_range() {
        UniformLink::new(10, 5);
    }
}
