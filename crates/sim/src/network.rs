//! The global node registry of a simulated network.
//!
//! A [`Network`] assigns each simulated node a dense [`NodeIndex`] (its "address"
//! inside the simulator), a unique [`NodeId`] and an alive/dead flag. Protocols
//! never inspect the registry directly for routing decisions — they only learn
//! about other nodes through descriptors they receive — but the registry is what
//! churn models mutate and what the convergence oracle reads to decide what the
//! *perfect* tables would be.

use bss_util::coords::Placement;
use bss_util::descriptor::{Descriptor, PackedDescriptor};
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Dense index identifying a node inside the simulator. Acts as the descriptor
/// address type for all simulated protocols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeIndex(u32);

impl NodeIndex {
    /// Creates an index from its raw value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        NodeIndex(raw)
    }

    /// The raw index value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for direct vector indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for NodeIndex {
    fn from(raw: u32) -> Self {
        NodeIndex(raw)
    }
}

/// A simulated node's registry entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    id: NodeId,
    alive: bool,
}

/// The registry of all nodes that ever existed in a simulation.
///
/// Nodes are never removed from the registry: a departed node keeps its index and
/// identifier but is marked dead, so stale descriptors pointing at it can still be
/// recognised. New joiners receive fresh indices.
#[derive(Clone, Debug)]
pub struct Network {
    entries: Vec<Entry>,
    by_id: HashMap<NodeId, NodeIndex>,
    alive_count: usize,
    /// Fenwick (binary indexed) tree over the alive flags, 1-based. Supports
    /// O(log n) rank ("how many alive nodes have a smaller index?") and select
    /// ("which index is the k-th alive node?") queries, which is what lets
    /// [`Network::sample_alive_excluding`] draw uniform samples without
    /// materialising the alive set.
    alive_tree: Vec<u32>,
    /// Optional WAN node placement (coordinates + regions). `None` means the
    /// network is homogeneous — the historical behaviour. Generated outside
    /// the main RNG stream, so attaching one never perturbs a run.
    placement: Option<Arc<Placement>>,
}

impl Network {
    /// Creates a network of `size` alive nodes with distinct, uniformly random
    /// identifiers drawn from `rng`.
    pub fn with_random_ids(size: usize, rng: &mut SimRng) -> Self {
        let ids = rng.distinct_u64(size);
        Self::from_ids(ids.into_iter().map(NodeId::new))
    }

    /// Creates a network from an explicit list of identifiers (all alive).
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are not pairwise distinct.
    pub fn from_ids(ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut network = Network::empty();
        for id in ids {
            network.add_node(id);
        }
        network
    }

    /// Creates an empty network.
    pub fn empty() -> Self {
        Network {
            entries: Vec::new(),
            by_id: HashMap::new(),
            alive_count: 0,
            alive_tree: vec![0],
            placement: None,
        }
    }

    /// Attaches a node placement: coordinates and region ids keyed by raw
    /// node index. Measurement and traffic layers use it for per-region
    /// series and proximity metrics; link models hold their own handle.
    pub fn set_placement(&mut self, placement: Arc<Placement>) {
        self.placement = Some(placement);
    }

    /// The attached node placement, if any.
    pub fn placement(&self) -> Option<&Arc<Placement>> {
        self.placement.as_ref()
    }

    /// Adds a new alive node with the given identifier and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same identifier already exists.
    pub fn add_node(&mut self, id: NodeId) -> NodeIndex {
        assert!(
            !self.by_id.contains_key(&id),
            "duplicate node identifier {id}"
        );
        let index = NodeIndex::new(self.entries.len() as u32);
        self.entries.push(Entry { id, alive: true });
        self.by_id.insert(id, index);
        self.alive_count += 1;
        self.alive_tree_push(1);
        index
    }

    /// Adds a new alive node with a random (previously unused) identifier.
    pub fn add_random_node(&mut self, rng: &mut SimRng) -> NodeIndex {
        loop {
            let id = NodeId::new(rng.next_u64());
            if !self.by_id.contains_key(&id) {
                return self.add_node(id);
            }
        }
    }

    /// Total number of registry entries (alive and dead).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The identifier of a node.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn id(&self, node: NodeIndex) -> NodeId {
        self.entries[node.as_usize()].id
    }

    /// Whether a node is currently alive.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.entries[node.as_usize()].alive
    }

    /// Looks up a node by identifier (whether alive or dead).
    pub fn index_of(&self, id: NodeId) -> Option<NodeIndex> {
        self.by_id.get(&id).copied()
    }

    /// Marks a node dead. Returns `true` if the node was alive.
    pub fn kill(&mut self, node: NodeIndex) -> bool {
        let entry = &mut self.entries[node.as_usize()];
        if entry.alive {
            entry.alive = false;
            self.alive_count -= 1;
            self.alive_tree_update(node.as_usize(), -1);
            true
        } else {
            false
        }
    }

    /// Marks a node alive again (a rejoin with the same identifier). Returns `true`
    /// if the node was dead.
    pub fn revive(&mut self, node: NodeIndex) -> bool {
        let entry = &mut self.entries[node.as_usize()];
        if !entry.alive {
            entry.alive = true;
            self.alive_count += 1;
            self.alive_tree_update(node.as_usize(), 1);
            true
        } else {
            false
        }
    }

    /// Iterates over all indices, alive or dead.
    pub fn all_indices(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        (0..self.entries.len() as u32).map(NodeIndex::new)
    }

    /// Iterates over the indices of alive nodes.
    pub fn alive_indices(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| NodeIndex::new(i as u32))
    }

    /// Collects the identifiers of alive nodes.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| e.id)
            .collect()
    }

    /// Picks a uniformly random alive node, or `None` when none is alive.
    pub fn random_alive(&self, rng: &mut SimRng) -> Option<NodeIndex> {
        if self.alive_count == 0 {
            return None;
        }
        // Rejection sampling over the dense index space; the alive fraction in our
        // scenarios is large enough that this terminates quickly. Fall back to a
        // linear scan if the registry is mostly dead.
        if self.alive_count * 4 >= self.entries.len() {
            loop {
                let candidate = NodeIndex::new(rng.index(self.entries.len()) as u32);
                if self.is_alive(candidate) {
                    return Some(candidate);
                }
            }
        }
        let alive: Vec<NodeIndex> = self.alive_indices().collect();
        alive.get(rng.index(alive.len())).copied()
    }

    /// Builds the descriptor of a node with the supplied freshness timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn descriptor(&self, node: NodeIndex, timestamp: u64) -> Descriptor<NodeIndex> {
        Descriptor::new(self.id(node), node, timestamp)
    }

    /// Packs a simulator descriptor into its eight-byte form. The identifier
    /// is dropped — it is recoverable from the registry because every
    /// simulated descriptor is built via [`Network::descriptor`], so its
    /// identifier always equals the registry identifier of its address.
    #[inline]
    pub fn pack(descriptor: &Descriptor<NodeIndex>) -> PackedDescriptor {
        PackedDescriptor::new(descriptor.address().raw(), descriptor.timestamp())
    }

    /// Expands a packed descriptor back to the full form using the registry's
    /// identifier for its address.
    ///
    /// # Panics
    ///
    /// Panics if the packed address is out of range.
    #[inline]
    pub fn unpack(&self, packed: PackedDescriptor) -> Descriptor<NodeIndex> {
        let node = NodeIndex::new(packed.address());
        Descriptor::new(self.id(node), node, packed.timestamp())
    }

    /// Synchronises a dense identifier arena (`index -> identifier`) with the
    /// registry, extending `arena` with the entries added since the last call.
    /// Registry indices are stable and identifiers immutable, so an
    /// incremental extension is exact; a stale arena longer than the registry
    /// (a harness reusing protocol state against a fresh network) is rebuilt
    /// from scratch.
    pub fn sync_id_arena(&self, arena: &mut Vec<NodeId>) {
        if arena.len() > self.entries.len() {
            arena.clear();
        }
        arena.extend(self.entries[arena.len()..].iter().map(|e| e.id));
    }

    /// Draws up to `count` distinct, uniformly random alive nodes other than
    /// `exclude`, without materialising the alive set.
    ///
    /// This is the simulator's sampling hot path: the naive implementation
    /// (collect the alive indices, partial-Fisher–Yates over them) is O(n) per
    /// call and dominates large-network runs. This method produces the *exact*
    /// same node sequence while consuming the *exact* same `rng` stream — the
    /// partial Fisher–Yates runs over a sparse overlay of displaced positions,
    /// and positions are resolved to node indices through the Fenwick tree in
    /// O(log n) — so seeded traces are byte-identical to the naive version.
    pub fn sample_alive_excluding(
        &self,
        exclude: NodeIndex,
        count: usize,
        rng: &mut SimRng,
    ) -> Vec<NodeIndex> {
        let excluded_alive = exclude.as_usize() < self.entries.len() && self.is_alive(exclude);
        let available = self.alive_count - usize::from(excluded_alive);
        let requested = count.min(available);
        if requested == 0 {
            return Vec::new();
        }
        if requested >= available {
            // Mirrors SimRng::sample's whole-slice shuffle fallback.
            let mut all: Vec<NodeIndex> = self
                .alive_indices()
                .filter(|&candidate| candidate != exclude)
                .collect();
            rng.shuffle(&mut all);
            return all;
        }
        let exclude_rank = if excluded_alive {
            self.alive_rank_below(exclude.as_usize())
        } else {
            usize::MAX
        };
        // Sparse partial Fisher–Yates: positions below `requested` live in a
        // dense array (they are read every iteration), displaced positions at
        // or above it in a small spill list (later entries shadow earlier
        // ones). Together they represent the virtual index array `0..available`
        // without materialising it.
        let mut dense: Vec<usize> = (0..requested).collect();
        let mut spill: Vec<(usize, usize)> = Vec::with_capacity(requested);
        let mut out = Vec::with_capacity(requested);
        for i in 0..requested {
            let j = i + rng.index(available - i);
            let picked = if j < requested {
                dense[j]
            } else {
                spill
                    .iter()
                    .rev()
                    .find(|&&(key, _)| key == j)
                    .map(|&(_, value)| value)
                    .unwrap_or(j)
            };
            let at_i = dense[i];
            if j < requested {
                dense[j] = at_i;
            } else {
                spill.push((j, at_i));
            }
            // Position -> global alive rank, skipping the excluded node.
            let rank = if excluded_alive && picked >= exclude_rank {
                picked + 1
            } else {
                picked
            };
            out.push(self.kth_alive(rank));
        }
        out
    }

    /// Number of alive nodes with an index strictly smaller than `index`.
    fn alive_rank_below(&self, index: usize) -> usize {
        if self.alive_count == self.entries.len() {
            return index; // nobody ever died: ranks are identities
        }
        let mut i = index;
        let mut sum = 0usize;
        while i > 0 {
            sum += self.alive_tree[i] as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// The index of the `k`-th alive node (0-based, ascending index order).
    ///
    /// # Panics
    ///
    /// Panics (with an out-of-range index) if fewer than `k + 1` nodes are alive.
    fn kth_alive(&self, k: usize) -> NodeIndex {
        let n = self.entries.len();
        if self.alive_count == n {
            assert!(k < n, "rank {k} exceeds the alive population");
            return NodeIndex::new(k as u32); // nobody ever died
        }
        let mut position = 0usize;
        let mut remaining = k + 1;
        let mut step = n.next_power_of_two();
        while step > 0 {
            let next = position + step;
            if next <= n && (self.alive_tree[next] as usize) < remaining {
                position = next;
                remaining -= self.alive_tree[next] as usize;
            }
            step >>= 1;
        }
        assert!(position < n, "rank {k} exceeds the alive population");
        NodeIndex::new(position as u32)
    }

    /// Appends a new Fenwick slot holding `value` (the alive flag of the node
    /// that was just pushed onto `entries`).
    fn alive_tree_push(&mut self, value: u32) {
        // 1-based position of the new element; its tree node covers the range
        // (p - lowbit(p), p], i.e. the new element plus a suffix of the prefix.
        let p = self.entries.len();
        let low = p - (p & p.wrapping_neg());
        let covered = self.alive_rank_below(p - 1) - self.alive_rank_below(low);
        self.alive_tree.push(covered as u32 + value);
    }

    fn alive_tree_update(&mut self, index: usize, delta: i32) {
        let n = self.entries.len();
        let mut i = index + 1;
        while i <= n {
            self.alive_tree[i] = (self.alive_tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_with_random_ids_is_reproducible() {
        let mut rng_a = SimRng::seed_from(5);
        let mut rng_b = SimRng::seed_from(5);
        let a = Network::with_random_ids(100, &mut rng_a);
        let b = Network::with_random_ids(100, &mut rng_b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.alive_count(), 100);
        for idx in a.all_indices() {
            assert_eq!(a.id(idx), b.id(idx));
        }
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let mut rng = SimRng::seed_from(6);
        let network = Network::with_random_ids(500, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for idx in network.all_indices() {
            let id = network.id(idx);
            assert!(seen.insert(id));
            assert_eq!(network.index_of(id), Some(idx));
        }
        assert_eq!(
            network.index_of(NodeId::new(0)).is_some(),
            seen.contains(&NodeId::new(0))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_are_rejected() {
        let mut network = Network::empty();
        network.add_node(NodeId::new(7));
        network.add_node(NodeId::new(7));
    }

    #[test]
    fn kill_and_revive_update_counts() {
        let network_ids = [1u64, 2, 3].map(NodeId::new);
        let mut network = Network::from_ids(network_ids);
        let victim = NodeIndex::new(1);
        assert!(network.kill(victim));
        assert!(!network.kill(victim), "killing twice reports false");
        assert!(!network.is_alive(victim));
        assert_eq!(network.alive_count(), 2);
        assert_eq!(network.alive_ids().len(), 2);
        assert!(network.revive(victim));
        assert!(!network.revive(victim));
        assert_eq!(network.alive_count(), 3);
    }

    #[test]
    fn alive_indices_skips_dead_nodes() {
        let mut network = Network::from_ids([10u64, 20, 30, 40].map(NodeId::new));
        network.kill(NodeIndex::new(0));
        network.kill(NodeIndex::new(2));
        let alive: Vec<_> = network.alive_indices().collect();
        assert_eq!(alive, vec![NodeIndex::new(1), NodeIndex::new(3)]);
        assert_eq!(network.all_indices().count(), 4);
    }

    #[test]
    fn random_alive_only_returns_living_nodes() {
        let mut rng = SimRng::seed_from(9);
        let mut network = Network::with_random_ids(50, &mut rng);
        for idx in 0..45u32 {
            network.kill(NodeIndex::new(idx));
        }
        for _ in 0..200 {
            let picked = network.random_alive(&mut rng).unwrap();
            assert!(network.is_alive(picked));
            assert!(picked.raw() >= 45);
        }
    }

    #[test]
    fn random_alive_on_dead_network_is_none() {
        let mut rng = SimRng::seed_from(10);
        let mut network = Network::with_random_ids(3, &mut rng);
        for idx in network.all_indices().collect::<Vec<_>>() {
            network.kill(idx);
        }
        assert!(network.random_alive(&mut rng).is_none());
        assert!(Network::empty().random_alive(&mut rng).is_none());
    }

    #[test]
    fn descriptor_carries_id_address_and_timestamp() {
        let network = Network::from_ids([NodeId::new(99)]);
        let d = network.descriptor(NodeIndex::new(0), 12);
        assert_eq!(d.id(), NodeId::new(99));
        assert_eq!(d.address(), NodeIndex::new(0));
        assert_eq!(d.timestamp(), 12);
    }

    #[test]
    fn add_random_node_avoids_collisions() {
        let mut rng = SimRng::seed_from(11);
        let mut network = Network::with_random_ids(10, &mut rng);
        let before = network.len();
        let idx = network.add_random_node(&mut rng);
        assert_eq!(network.len(), before + 1);
        assert!(network.is_alive(idx));
    }

    #[test]
    fn node_index_display_and_conversions() {
        let idx: NodeIndex = 3u32.into();
        assert_eq!(idx.to_string(), "#3");
        assert_eq!(idx.raw(), 3);
        assert_eq!(idx.as_usize(), 3);
    }

    #[test]
    fn sample_alive_excluding_replays_the_naive_sampler_exactly() {
        // The Fenwick-backed fast path must consume the same RNG stream and
        // return the same nodes as "collect the alive set, partial
        // Fisher–Yates over it" — that is what keeps seeded traces
        // byte-identical after the hot-path optimisation.
        let mut seed_rng = SimRng::seed_from(77);
        let mut network = Network::with_random_ids(200, &mut seed_rng);
        for raw in [3u32, 50, 51, 52, 120, 199] {
            network.kill(NodeIndex::new(raw));
        }
        network.revive(NodeIndex::new(51));
        for (exclude, count) in [(0u32, 10), (51, 25), (3, 7), (199, 1), (10, 500)] {
            let exclude = NodeIndex::new(exclude);
            let mut fast_rng = SimRng::seed_from(1000 + u64::from(exclude.raw()));
            let mut naive_rng = fast_rng.clone();
            let fast = network.sample_alive_excluding(exclude, count, &mut fast_rng);
            let alive: Vec<NodeIndex> = network
                .alive_indices()
                .filter(|&candidate| candidate != exclude)
                .collect();
            let naive = naive_rng.sample(&alive, count.min(alive.len()));
            assert_eq!(fast, naive, "exclude {exclude} count {count}");
            assert_eq!(fast_rng, naive_rng, "RNG streams diverged");
        }
    }

    #[test]
    fn sample_alive_excluding_handles_tiny_populations() {
        let mut network = Network::from_ids([1u64, 2].map(NodeId::new));
        let mut rng = SimRng::seed_from(5);
        assert_eq!(
            network.sample_alive_excluding(NodeIndex::new(0), 4, &mut rng),
            vec![NodeIndex::new(1)]
        );
        network.kill(NodeIndex::new(1));
        assert!(network
            .sample_alive_excluding(NodeIndex::new(0), 4, &mut rng)
            .is_empty());
    }

    #[test]
    fn empty_network_reports_empty() {
        let network = Network::empty();
        assert!(network.is_empty());
        assert_eq!(network.len(), 0);
        assert_eq!(network.alive_count(), 0);
    }
}
