//! The global node registry of a simulated network.
//!
//! A [`Network`] assigns each simulated node a dense [`NodeIndex`] (its "address"
//! inside the simulator), a unique [`NodeId`] and an alive/dead flag. Protocols
//! never inspect the registry directly for routing decisions — they only learn
//! about other nodes through descriptors they receive — but the registry is what
//! churn models mutate and what the convergence oracle reads to decide what the
//! *perfect* tables would be.

use bss_util::descriptor::Descriptor;
use bss_util::id::NodeId;
use bss_util::rng::SimRng;
use std::collections::HashMap;
use std::fmt;

/// Dense index identifying a node inside the simulator. Acts as the descriptor
/// address type for all simulated protocols.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeIndex(u32);

impl NodeIndex {
    /// Creates an index from its raw value.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        NodeIndex(raw)
    }

    /// The raw index value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The index as a `usize`, for direct vector indexing.
    #[inline]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for NodeIndex {
    fn from(raw: u32) -> Self {
        NodeIndex(raw)
    }
}

/// A simulated node's registry entry.
#[derive(Clone, Copy, Debug)]
struct Entry {
    id: NodeId,
    alive: bool,
}

/// The registry of all nodes that ever existed in a simulation.
///
/// Nodes are never removed from the registry: a departed node keeps its index and
/// identifier but is marked dead, so stale descriptors pointing at it can still be
/// recognised. New joiners receive fresh indices.
#[derive(Clone, Debug)]
pub struct Network {
    entries: Vec<Entry>,
    by_id: HashMap<NodeId, NodeIndex>,
    alive_count: usize,
}

impl Network {
    /// Creates a network of `size` alive nodes with distinct, uniformly random
    /// identifiers drawn from `rng`.
    pub fn with_random_ids(size: usize, rng: &mut SimRng) -> Self {
        let ids = rng.distinct_u64(size);
        Self::from_ids(ids.into_iter().map(NodeId::new))
    }

    /// Creates a network from an explicit list of identifiers (all alive).
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are not pairwise distinct.
    pub fn from_ids(ids: impl IntoIterator<Item = NodeId>) -> Self {
        let mut network = Network {
            entries: Vec::new(),
            by_id: HashMap::new(),
            alive_count: 0,
        };
        for id in ids {
            network.add_node(id);
        }
        network
    }

    /// Creates an empty network.
    pub fn empty() -> Self {
        Network {
            entries: Vec::new(),
            by_id: HashMap::new(),
            alive_count: 0,
        }
    }

    /// Adds a new alive node with the given identifier and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same identifier already exists.
    pub fn add_node(&mut self, id: NodeId) -> NodeIndex {
        assert!(
            !self.by_id.contains_key(&id),
            "duplicate node identifier {id}"
        );
        let index = NodeIndex::new(self.entries.len() as u32);
        self.entries.push(Entry { id, alive: true });
        self.by_id.insert(id, index);
        self.alive_count += 1;
        index
    }

    /// Adds a new alive node with a random (previously unused) identifier.
    pub fn add_random_node(&mut self, rng: &mut SimRng) -> NodeIndex {
        loop {
            let id = NodeId::new(rng.next_u64());
            if !self.by_id.contains_key(&id) {
                return self.add_node(id);
            }
        }
    }

    /// Total number of registry entries (alive and dead).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    /// The identifier of a node.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn id(&self, node: NodeIndex) -> NodeId {
        self.entries[node.as_usize()].id
    }

    /// Whether a node is currently alive.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[inline]
    pub fn is_alive(&self, node: NodeIndex) -> bool {
        self.entries[node.as_usize()].alive
    }

    /// Looks up a node by identifier (whether alive or dead).
    pub fn index_of(&self, id: NodeId) -> Option<NodeIndex> {
        self.by_id.get(&id).copied()
    }

    /// Marks a node dead. Returns `true` if the node was alive.
    pub fn kill(&mut self, node: NodeIndex) -> bool {
        let entry = &mut self.entries[node.as_usize()];
        if entry.alive {
            entry.alive = false;
            self.alive_count -= 1;
            true
        } else {
            false
        }
    }

    /// Marks a node alive again (a rejoin with the same identifier). Returns `true`
    /// if the node was dead.
    pub fn revive(&mut self, node: NodeIndex) -> bool {
        let entry = &mut self.entries[node.as_usize()];
        if !entry.alive {
            entry.alive = true;
            self.alive_count += 1;
            true
        } else {
            false
        }
    }

    /// Iterates over all indices, alive or dead.
    pub fn all_indices(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        (0..self.entries.len() as u32).map(NodeIndex::new)
    }

    /// Iterates over the indices of alive nodes.
    pub fn alive_indices(&self) -> impl Iterator<Item = NodeIndex> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| NodeIndex::new(i as u32))
    }

    /// Collects the identifiers of alive nodes.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        self.entries
            .iter()
            .filter(|e| e.alive)
            .map(|e| e.id)
            .collect()
    }

    /// Picks a uniformly random alive node, or `None` when none is alive.
    pub fn random_alive(&self, rng: &mut SimRng) -> Option<NodeIndex> {
        if self.alive_count == 0 {
            return None;
        }
        // Rejection sampling over the dense index space; the alive fraction in our
        // scenarios is large enough that this terminates quickly. Fall back to a
        // linear scan if the registry is mostly dead.
        if self.alive_count * 4 >= self.entries.len() {
            loop {
                let candidate = NodeIndex::new(rng.index(self.entries.len()) as u32);
                if self.is_alive(candidate) {
                    return Some(candidate);
                }
            }
        }
        let alive: Vec<NodeIndex> = self.alive_indices().collect();
        alive.get(rng.index(alive.len())).copied()
    }

    /// Builds the descriptor of a node with the supplied freshness timestamp.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn descriptor(&self, node: NodeIndex, timestamp: u64) -> Descriptor<NodeIndex> {
        Descriptor::new(self.id(node), node, timestamp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_with_random_ids_is_reproducible() {
        let mut rng_a = SimRng::seed_from(5);
        let mut rng_b = SimRng::seed_from(5);
        let a = Network::with_random_ids(100, &mut rng_a);
        let b = Network::with_random_ids(100, &mut rng_b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.alive_count(), 100);
        for idx in a.all_indices() {
            assert_eq!(a.id(idx), b.id(idx));
        }
    }

    #[test]
    fn ids_are_unique_and_lookup_works() {
        let mut rng = SimRng::seed_from(6);
        let network = Network::with_random_ids(500, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for idx in network.all_indices() {
            let id = network.id(idx);
            assert!(seen.insert(id));
            assert_eq!(network.index_of(id), Some(idx));
        }
        assert_eq!(
            network.index_of(NodeId::new(0)).is_some(),
            seen.contains(&NodeId::new(0))
        );
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_ids_are_rejected() {
        let mut network = Network::empty();
        network.add_node(NodeId::new(7));
        network.add_node(NodeId::new(7));
    }

    #[test]
    fn kill_and_revive_update_counts() {
        let network_ids = [1u64, 2, 3].map(NodeId::new);
        let mut network = Network::from_ids(network_ids);
        let victim = NodeIndex::new(1);
        assert!(network.kill(victim));
        assert!(!network.kill(victim), "killing twice reports false");
        assert!(!network.is_alive(victim));
        assert_eq!(network.alive_count(), 2);
        assert_eq!(network.alive_ids().len(), 2);
        assert!(network.revive(victim));
        assert!(!network.revive(victim));
        assert_eq!(network.alive_count(), 3);
    }

    #[test]
    fn alive_indices_skips_dead_nodes() {
        let mut network = Network::from_ids([10u64, 20, 30, 40].map(NodeId::new));
        network.kill(NodeIndex::new(0));
        network.kill(NodeIndex::new(2));
        let alive: Vec<_> = network.alive_indices().collect();
        assert_eq!(alive, vec![NodeIndex::new(1), NodeIndex::new(3)]);
        assert_eq!(network.all_indices().count(), 4);
    }

    #[test]
    fn random_alive_only_returns_living_nodes() {
        let mut rng = SimRng::seed_from(9);
        let mut network = Network::with_random_ids(50, &mut rng);
        for idx in 0..45u32 {
            network.kill(NodeIndex::new(idx));
        }
        for _ in 0..200 {
            let picked = network.random_alive(&mut rng).unwrap();
            assert!(network.is_alive(picked));
            assert!(picked.raw() >= 45);
        }
    }

    #[test]
    fn random_alive_on_dead_network_is_none() {
        let mut rng = SimRng::seed_from(10);
        let mut network = Network::with_random_ids(3, &mut rng);
        for idx in network.all_indices().collect::<Vec<_>>() {
            network.kill(idx);
        }
        assert!(network.random_alive(&mut rng).is_none());
        assert!(Network::empty().random_alive(&mut rng).is_none());
    }

    #[test]
    fn descriptor_carries_id_address_and_timestamp() {
        let network = Network::from_ids([NodeId::new(99)]);
        let d = network.descriptor(NodeIndex::new(0), 12);
        assert_eq!(d.id(), NodeId::new(99));
        assert_eq!(d.address(), NodeIndex::new(0));
        assert_eq!(d.timestamp(), 12);
    }

    #[test]
    fn add_random_node_avoids_collisions() {
        let mut rng = SimRng::seed_from(11);
        let mut network = Network::with_random_ids(10, &mut rng);
        let before = network.len();
        let idx = network.add_random_node(&mut rng);
        assert_eq!(network.len(), before + 1);
        assert!(network.is_alive(idx));
    }

    #[test]
    fn node_index_display_and_conversions() {
        let idx: NodeIndex = 3u32.into();
        assert_eq!(idx.to_string(), "#3");
        assert_eq!(idx.raw(), 3);
        assert_eq!(idx.as_usize(), 3);
    }

    #[test]
    fn empty_network_reports_empty() {
        let network = Network::empty();
        assert!(network.is_empty());
        assert_eq!(network.len(), 0);
        assert_eq!(network.alive_count(), 0);
    }
}
