//! Measurement helpers for simulation runs.
//!
//! The experiment harness needs to record one or more metrics at the end of every
//! cycle and stop the run as soon as a convergence condition holds (the paper runs
//! "until the perfect leaf sets and prefix tables are found at all nodes").
//! [`MetricRecorder`] collects named [`Series`]; [`StopCondition`] expresses common
//! termination rules.

use bss_util::stats::Series;
use std::collections::BTreeMap;
use std::fmt;

/// Collects named per-cycle metric series during a run.
///
/// # Example
///
/// ```rust
/// use bss_sim::observer::MetricRecorder;
///
/// let mut recorder = MetricRecorder::new();
/// recorder.record(0, "missing_leafset", 1.0);
/// recorder.record(0, "missing_prefix", 1.0);
/// recorder.record(1, "missing_leafset", 0.25);
/// assert_eq!(recorder.series("missing_leafset").unwrap().len(), 2);
/// assert!(recorder.series("unknown").is_none());
/// ```
#[derive(Debug, Default, Clone)]
pub struct MetricRecorder {
    series: BTreeMap<String, Series>,
}

impl MetricRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        MetricRecorder::default()
    }

    /// Appends `value` for `metric` at `cycle`.
    pub fn record(&mut self, cycle: u64, metric: &str, value: f64) {
        self.series
            .entry(metric.to_owned())
            .or_insert_with(|| Series::new(metric))
            .push(cycle, value);
    }

    /// The series recorded under `metric`, if any.
    pub fn series(&self, metric: &str) -> Option<&Series> {
        self.series.get(metric)
    }

    /// Consumes the recorder and returns the series recorded under `metric`, if any.
    pub fn into_series(mut self, metric: &str) -> Option<Series> {
        self.series.remove(metric)
    }

    /// Iterates over all recorded series in metric-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Names of all recorded metrics.
    pub fn metric_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }
}

impl fmt::Display for MetricRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, series) in &self.series {
            writeln!(
                f,
                "{name}: {} points, last = {:?}",
                series.len(),
                series.final_value()
            )?;
        }
        Ok(())
    }
}

/// A termination rule evaluated after every cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopCondition {
    /// Never stop early; run the full cycle budget.
    FixedCycles,
    /// Stop as soon as the observed metric reaches zero (perfect convergence, the
    /// paper's termination rule).
    WhenZero,
    /// Stop as soon as the observed metric drops to or below the threshold.
    AtOrBelow(f64),
}

impl StopCondition {
    /// Whether a run observing `value` should stop now.
    pub fn satisfied(self, value: f64) -> bool {
        match self {
            StopCondition::FixedCycles => false,
            StopCondition::WhenZero => value <= 0.0,
            StopCondition::AtOrBelow(threshold) => value <= threshold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_groups_by_metric_name() {
        let mut r = MetricRecorder::new();
        assert!(r.is_empty());
        r.record(0, "a", 1.0);
        r.record(1, "a", 0.5);
        r.record(0, "b", 3.0);
        assert!(!r.is_empty());
        assert_eq!(r.series("a").unwrap().len(), 2);
        assert_eq!(r.series("b").unwrap().len(), 1);
        assert_eq!(r.metric_names(), vec!["a", "b"]);
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.series("a").unwrap().value_at(1), Some(0.5));
        let series = r.clone().into_series("a").unwrap();
        assert_eq!(series.name(), "a");
        assert!(r.clone().into_series("zzz").is_none());
    }

    #[test]
    fn display_lists_metrics() {
        let mut r = MetricRecorder::new();
        r.record(0, "missing", 0.75);
        let text = r.to_string();
        assert!(text.contains("missing"));
        assert!(text.contains("1 points"));
    }

    #[test]
    fn stop_conditions() {
        assert!(!StopCondition::FixedCycles.satisfied(0.0));
        assert!(StopCondition::WhenZero.satisfied(0.0));
        assert!(!StopCondition::WhenZero.satisfied(1e-9));
        assert!(StopCondition::AtOrBelow(0.01).satisfied(0.005));
        assert!(!StopCondition::AtOrBelow(0.01).satisfied(0.02));
    }
}
