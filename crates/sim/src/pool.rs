//! A persistent worker pool for the parallel cycle engine.
//!
//! The first parallel engine spawned a fresh `thread::scope` per wave, which
//! put two thread spawns and two joins on the critical path of every wave —
//! measurable once a million-node cycle runs hundreds of waves. This pool
//! spawns its workers once and feeds them closures over channels; a wave
//! costs two channel sends per busy worker instead of a spawn/join pair.
//!
//! # Borrowed closures and why the one `unsafe` block is sound
//!
//! [`WorkerPool::run`] accepts closures that borrow the caller's stack
//! (`Task<'scope>`), exactly like `std::thread::scope`. Channels require
//! `'static` payloads, so the closure's lifetime is erased with a transmute
//! before dispatch. Soundness rests on `run` being a completion barrier:
//!
//! * every dispatched task is acknowledged by its worker after it finishes
//!   (or panics — tasks run under `catch_unwind`), and
//! * `run` does not return — and does not *unwind* — until it has collected
//!   one acknowledgement per dispatched task ([`AckGuard`] drains them even
//!   while propagating a panic from the caller-executed task).
//!
//! Therefore no erased closure can outlive the borrows it captures: the
//! frames it borrows from are alive for the whole of `run`, and the closure
//! is gone (executed and dropped worker-side) before `run` ends.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// A unit of work submitted to the pool: a closure that may borrow the
/// caller's stack for `'scope`, as with `std::thread::scope`.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

/// The same closure with its borrow lifetime erased so it can cross a
/// channel. Only ever constructed inside [`WorkerPool::run`], which
/// guarantees the closure finishes before the borrows expire.
type ErasedTask = Box<dyn FnOnce() + Send + 'static>;

/// A worker's report for one finished task: `None` for normal completion,
/// `Some(payload)` if the task panicked (the payload is re-thrown by `run`).
type Ack = Option<Box<dyn std::any::Any + Send>>;

struct Worker {
    sender: Sender<ErasedTask>,
    handle: Option<JoinHandle<()>>,
}

/// A pool of `threads - 1` long-lived worker threads plus the calling thread.
///
/// Created once per engine and reused across every wave of every cycle. With
/// `threads <= 1` no workers are spawned and [`WorkerPool::run`] executes all
/// tasks inline, so single-threaded callers pay nothing.
pub struct WorkerPool {
    threads: usize,
    workers: Vec<Worker>,
    ack_receiver: Receiver<Ack>,
}

impl WorkerPool {
    /// Creates a pool sized for `threads` total executors: the calling thread
    /// plus `threads - 1` spawned workers.
    pub fn new(threads: usize) -> WorkerPool {
        let (ack_sender, ack_receiver) = channel::<Ack>();
        let workers = (1..threads.max(1))
            .map(|_| {
                let (sender, receiver) = channel::<ErasedTask>();
                let acks = ack_sender.clone();
                let handle = std::thread::spawn(move || {
                    for task in receiver {
                        let outcome = catch_unwind(AssertUnwindSafe(task)).err();
                        if acks.send(outcome).is_err() {
                            break;
                        }
                    }
                });
                Worker {
                    sender,
                    handle: Some(handle),
                }
            })
            .collect();
        WorkerPool {
            threads: threads.max(1),
            workers,
            ack_receiver,
        }
    }

    /// Total executor count (workers plus the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every task to completion before returning, using the calling
    /// thread plus the pool's workers. Tasks may borrow the caller's stack.
    ///
    /// If any task panics, the first panic payload is re-thrown — but only
    /// after every dispatched task has finished, preserving the barrier.
    pub fn run(&mut self, mut tasks: Vec<Task<'_>>) {
        if self.workers.is_empty() || tasks.len() <= 1 {
            for task in tasks.drain(..) {
                task();
            }
            return;
        }

        // Keep one task back for the calling thread so it contributes work
        // instead of idling on the acknowledgement channel.
        let inline = tasks.pop();
        let dispatched = tasks.len();
        for (slot, task) in tasks.drain(..).enumerate() {
            let erased = erase::erase_task(task);
            let worker = &self.workers[slot % self.workers.len()];
            worker
                .sender
                .send(erased)
                .expect("worker thread terminated while the pool is alive");
        }

        // The guard drains exactly `dispatched` acknowledgements on drop, so
        // even if the inline task panics, `run`'s frame stays on the stack
        // until every borrowed closure has finished worker-side.
        let mut guard = AckGuard {
            receiver: &self.ack_receiver,
            pending: dispatched,
            panic: None,
        };
        if let Some(task) = inline {
            task();
        }
        guard.drain();
        if let Some(payload) = guard.panic.take() {
            drop(guard);
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for worker in &mut self.workers {
            // Dropping the sender closes the channel; the worker's `for` loop
            // ends and the thread exits.
            let (closed, _) = channel::<ErasedTask>();
            worker.sender = closed;
        }
        for worker in &mut self.workers {
            if let Some(handle) = worker.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, formatter: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        formatter
            .debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Collects one acknowledgement per dispatched task, including during unwind.
struct AckGuard<'pool> {
    receiver: &'pool Receiver<Ack>,
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl AckGuard<'_> {
    fn drain(&mut self) {
        while self.pending > 0 {
            match self.receiver.recv() {
                Ok(ack) => {
                    self.pending -= 1;
                    if self.panic.is_none() {
                        self.panic = ack;
                    }
                }
                // A worker died without acknowledging. Its thread is gone, so
                // it no longer touches borrowed state; stop waiting.
                Err(_) => break,
            }
        }
    }
}

impl Drop for AckGuard<'_> {
    fn drop(&mut self) {
        self.drain();
    }
}

/// The single `unsafe` operation in the crate, quarantined with its safety
/// argument. See the module documentation for the full reasoning.
mod erase {
    #[allow(unsafe_code)]
    pub(super) fn erase_task(task: super::Task<'_>) -> super::ErasedTask {
        // SAFETY: the erased closure is sent to a pool worker, executed, and
        // dropped before `WorkerPool::run` returns or unwinds (the `AckGuard`
        // blocks until the worker acknowledges completion). The borrows
        // captured for `'scope` are therefore live for the closure's entire
        // existence, which is exactly the guarantee `'static` is standing in
        // for across the channel.
        unsafe { std::mem::transmute::<super::Task<'_>, super::ErasedTask>(task) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn single_threaded_pool_runs_inline() {
        let mut pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let counter = AtomicU64::new(0);
        let tasks: Vec<Task<'_>> = (0..8)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn parallel_pool_completes_all_borrowed_tasks() {
        let mut pool = WorkerPool::new(4);
        let mut results = vec![0u64; 64];
        let tasks: Vec<Task<'_>> = results
            .iter_mut()
            .enumerate()
            .map(|(index, slot)| {
                Box::new(move || {
                    *slot = (index as u64 + 1) * 3;
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        for (index, &value) in results.iter().enumerate() {
            assert_eq!(value, (index as u64 + 1) * 3);
        }
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        let mut pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        for _ in 0..50 {
            let tasks: Vec<Task<'_>> = (0..5)
                .map(|_| {
                    Box::new(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    }) as Task<'_>
                })
                .collect();
            pool.run(tasks);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 250);
    }

    #[test]
    fn worker_panic_propagates_after_the_barrier() {
        let mut pool = WorkerPool::new(2);
        let counter = AtomicU64::new(0);
        let tasks: Vec<Task<'_>> = vec![
            Box::new(|| panic!("worker task exploded")),
            Box::new(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            }),
        ];
        let outcome = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(outcome.is_err(), "panic must propagate to the caller");
        // The pool survives a panicking task and keeps working.
        let tasks: Vec<Task<'_>> = (0..4)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert!(counter.load(Ordering::Relaxed) >= 4);
    }
}
